//! Hardware memory-protection baselines: SEC-DED ECC and TMR, compared with
//! clipped activations on a small trained CNN.
//!
//! The paper's introduction argues ECC and modular redundancy are too
//! expensive for DNN memories. This example makes the trade-off concrete:
//! it measures accuracy under fault for each scheme *and* prints what each
//! costs in stored memory.
//!
//! ```sh
//! cargo run --release --example hw_protection
//! ```

use ftclipact::core::{profile_network, EvalSet};
use ftclipact::fault::{
    derive_seed, inject_with_protection, DoubleErrorPolicy, FaultModel, InjectionTarget, ProtectionScheme,
    SecDed,
};
use ftclipact::nn::{OptimizerKind, Trainer};
use ftclipact::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // ---- SEC-DED on a single word, step by step ----------------------
    println!("SEC-DED walkthrough on one weight word (0.0625f32):");
    let word = 0.0625f32.to_bits();
    let code = SecDed::encode(word);
    println!("  data 0x{word:08X} encodes to 39-bit codeword 0x{code:010X}");
    let hit = code ^ (1 << 30); // exponent MSB of the embedded data
    let (decoded, status) = SecDed::decode(hit);
    println!("  after an exponent-MSB flip the decoder reports {status:?} and returns 0x{decoded:08X}");
    assert_eq!(decoded, word);

    // ---- train a small model -----------------------------------------
    let data = SynthCifar::builder()
        .seed(31)
        .train_size(600)
        .val_size(150)
        .test_size(300)
        .noise_std(0.3)
        .build();
    let mut net = ftclipact::models::alexnet_cifar(0.0625, 10, 77);
    println!("\ntraining {} …", net.summary());
    Trainer::builder()
        .epochs(6)
        .batch_size(32)
        .optimizer(OptimizerKind::Sgd { momentum: 0.9, weight_decay: 5e-4 })
        .verbose(true)
        .build()
        .fit(&mut net, data.train().images(), data.train().labels(), None);

    let eval = EvalSet::from_dataset(data.test(), 64);
    println!("clean accuracy: {:.3}\n", eval.accuracy(&net));

    // clipped variant (thresholds = profiled ACT_max)
    let profiles = profile_network(&net, data.val().images(), 64, 16);
    let thresholds: Vec<f32> = profiles.iter().map(|p| p.act_max.max(f32::MIN_POSITIVE)).collect();
    let mut clipped = net.clone();
    clipped.convert_to_clipped(&thresholds);

    // ---- compare schemes at growing fault rates -----------------------
    let rates = [1e-5f64, 1e-4, 1e-3];
    let reps = 5usize;
    let schemes: [(&str, ProtectionScheme, bool); 4] = [
        ("unprotected", ProtectionScheme::None, false),
        ("clipped", ProtectionScheme::None, true),
        ("sec-ded", ProtectionScheme::SecDed(DoubleErrorPolicy::ZeroWord), false),
        ("tmr", ProtectionScheme::Tmr, false),
    ];
    println!("{:<12} {:>7} {:>9} {:>9} {:>9}", "scheme", "mem+%", "1e-5", "1e-4", "1e-3");
    for (name, scheme, use_clipped) in schemes {
        let base = if use_clipped { &clipped } else { &net };
        let mut target = base.clone();
        let mut row = Vec::new();
        for (i, &rate) in rates.iter().enumerate() {
            let mut acc = 0.0;
            for rep in 0..reps {
                let mut rng = StdRng::seed_from_u64(derive_seed(7, i, rep));
                let handle = inject_with_protection(
                    &mut target,
                    InjectionTarget::AllWeights,
                    FaultModel::BitFlip,
                    rate,
                    scheme,
                    &mut rng,
                );
                acc += eval.accuracy(&target);
                handle.undo(&mut target);
            }
            row.push(acc / reps as f64);
        }
        println!(
            "{:<12} {:>7.1} {:>9.3} {:>9.3} {:>9.3}",
            name,
            scheme.memory_overhead_percent(),
            row[0],
            row[1],
            row[2]
        );
    }
    println!("\nclipping needs no extra memory; ECC pays 21.9% and TMR 200% for their correction");
}
