//! Declarative experiments: build custom [`ExperimentSpec`]s in code, run a
//! batch of them under one shared thread/cache budget, and round-trip one
//! through its JSON spec-file form.
//!
//! ```sh
//! cargo run --release --example spec_batch
//! ```
//!
//! The same batch from the command line (spec file with an array works too):
//!
//! ```sh
//! ftclip run specs.json --quick
//! ```

use ftclip_bench::{
    DataSpec, ExperimentSpec, Procedure, Protection, RateGrid, RunSettings, Runner, WorkloadSpec,
};
use ftclipact::models::ZooArch;

fn main() {
    // a tiny dataset + untrained model keeps the example fast; drop these
    // two overrides (or start from a preset via `ftclip_bench::preset`) for
    // real paper-scale experiments
    let data = DataSpec {
        train_size: 32,
        val_size: 32,
        test_size: 128,
        ..DataSpec::default()
    };
    let mut workload = WorkloadSpec::default_for(ZooArch::AlexNet);
    workload.width_mult = 0.05;
    workload.epochs = 0;

    // three experiments: a model-size report plus the same campaign on the
    // unprotected and the ACT_max-clipped network
    let sizes = ExperimentSpec::builder(Procedure::ModelSizes, "batch_model_sizes")
        .build()
        .expect("valid spec");
    let unprotected = ExperimentSpec::builder(Procedure::CampaignSummary, "batch_unprotected")
        .workload(workload.clone())
        .data(data.clone())
        .eval_size(64)
        .repetitions(3)
        .rates(RateGrid::Absolute(vec![1e-4, 1e-3]))
        .build()
        .expect("valid spec");
    let clipped = ExperimentSpec::builder(Procedure::CampaignSummary, "batch_clipped")
        .workload(workload)
        .data(data)
        .eval_size(64)
        .repetitions(3)
        .rates(RateGrid::Absolute(vec![1e-4, 1e-3]))
        .protection(Protection::ClippedActMax)
        .build()
        .expect("valid spec");

    // specs are serializable: this JSON is exactly what `ftclip run x.json`
    // accepts, and the fingerprint survives the round trip
    let json = unprotected.to_json();
    let back = ExperimentSpec::from_json(&json).expect("round trip");
    assert_eq!(back.fingerprint().key(), unprotected.fingerprint().key());
    println!("spec file form of '{}':\n{json}\n", unprotected.name);

    // one Runner executes the batch: shared model zoo, shared campaign
    // cache, one FTCLIP_THREADS budget across experiments × campaign cells
    // × eval shards — bit-identical to running the specs one by one
    let settings = RunSettings {
        out_dir: std::path::PathBuf::from("results"),
        ..RunSettings::default()
    };
    let runner = Runner::new(settings);
    let outcomes = runner.run_batch(&[sizes, unprotected, clipped]).expect("batch runs");
    for outcome in &outcomes {
        println!(
            "── {} ({} table(s), shape checks {}) ──",
            outcome.name,
            outcome.tables.len(),
            if outcome.passed() { "passed" } else { "FAILED" }
        );
        print!("{}", outcome.report);
        println!();
    }
}
