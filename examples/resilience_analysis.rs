//! Per-layer resilience analysis (the paper's §III study at example scale).
//!
//! Injects faults into one layer at a time and reports (a) the fault rate at
//! which each layer's accuracy collapses and (b) how the maximum activation
//! value explodes when exponent bits flip — the two observations that
//! motivate clipped activations.
//!
//! ```sh
//! cargo run --release --example resilience_analysis
//! ```

use ftclipact::core::EvalSet;
use ftclipact::fault::{Campaign, CampaignConfig, FaultModel, Injection, InjectionTarget, MemoryMap};
use ftclipact::nn::{OptimizerKind, Trainer};
use ftclipact::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let data = SynthCifar::builder()
        .seed(11)
        .train_size(600)
        .val_size(150)
        .test_size(300)
        .noise_std(0.3)
        .build();

    // A miniature AlexNet keeps the example fast while preserving depth.
    let mut net = ftclipact::models::alexnet_cifar(0.0625, 10, 5);
    println!("{}", net.summary());
    println!("\ntraining …");
    Trainer::builder()
        .epochs(6)
        .batch_size(32)
        .optimizer(OptimizerKind::Sgd { momentum: 0.9, weight_decay: 5e-4 })
        .verbose(true)
        .build()
        .fit(&mut net, data.train().images(), data.train().labels(), None);

    let eval = EvalSet::from_dataset(data.test(), 64);
    println!("\nclean accuracy: {:.3}", eval.accuracy(&net));

    // ---- per-layer fault sensitivity --------------------------------
    let names = net.computational_names();
    let indices = net.computational_indices();
    let rates = vec![1e-6, 1e-5, 1e-4, 1e-3];
    println!("\nper-layer mean accuracy under single-layer bit flips:");
    print!("{:<10} {:>10}", "layer", "bits");
    for r in &rates {
        print!(" {:>9.0e}", r);
    }
    println!();
    for (name, &layer) in names.iter().zip(&indices) {
        let map = MemoryMap::build(&net, InjectionTarget::Layer(layer));
        let campaign = Campaign::new(CampaignConfig {
            fault_rates: rates.clone(),
            repetitions: 4,
            seed: 1000 + layer as u64,
            model: FaultModel::BitFlip,
            target: InjectionTarget::Layer(layer),
            stopping: None,
        });
        let result = campaign.run(&mut net, |n: &Sequential| eval.accuracy(n));
        print!("{:<10} {:>10}", name, map.total_bits());
        for m in result.mean_accuracies() {
            print!(" {:>9.3}", m);
        }
        println!();
    }

    // ---- activation explosion under a targeted MSB flip -------------
    println!("\ntargeted exponent-MSB flip in CONV-1, observed ACT_max downstream:");
    let conv1 = net.layer_index_by_name("CONV-1").expect("CONV-1 exists");
    let x = data.test().images().slice_batch(0..16);
    let (_, clean_records) = net.forward_recording(&x);
    let injection = Injection::sample(
        &net,
        InjectionTarget::Layer(conv1),
        FaultModel::StuckAt1,
        0.0,
        &mut StdRng::seed_from_u64(0),
    );
    drop(injection); // rate 0: sample() kept for API symmetry; use explicit fault below
    let explicit =
        Injection::from_faults(FaultModel::StuckAt1, vec![(conv1, ftclipact::nn::ParamKind::Weight, 0, 30)]);
    let handle = explicit.apply(&mut net);
    let (_, faulty_records) = net.forward_recording(&x);
    handle.undo(&mut net);
    println!("{:<8} {:>14} {:>14}", "layer", "clean ACT_max", "faulty ACT_max");
    for (i, (c, f)) in clean_records.iter().zip(&faulty_records).enumerate().take(6) {
        println!("{:<8} {:>14.3e} {:>14.3e}", i, c.output.max(), f.output.max());
    }
    println!("\nthe fault multiplies activations by ~1e38 — exactly what clipping intercepts");
}
