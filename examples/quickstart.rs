//! Quickstart: train a small CNN, corrupt its weight memory, and watch
//! clipped activations absorb the damage.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ftclipact::core::{profile_network, EvalSet};
use ftclipact::fault::{Campaign, CampaignConfig, FaultModel, InjectionTarget};
use ftclipact::nn::{Layer, OptimizerKind, Sequential, Trainer};
use ftclipact::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. A small synthetic CIFAR-style dataset and a small CNN.
    // ------------------------------------------------------------------
    let data = SynthCifar::builder()
        .seed(7)
        .train_size(800)
        .val_size(200)
        .test_size(400)
        .noise_std(0.3)
        .build();

    let mut net = Sequential::new(vec![
        Layer::conv2d(3, 12, 3, 1, 1, 1),
        Layer::relu(),
        Layer::MaxPool2d(ftclipact::nn::MaxPool2d::new(2, 2)),
        Layer::conv2d(12, 24, 3, 1, 1, 2),
        Layer::relu(),
        Layer::MaxPool2d(ftclipact::nn::MaxPool2d::new(2, 2)),
        Layer::flatten(),
        Layer::linear(24 * 8 * 8, 64, 3),
        Layer::relu(),
        Layer::linear(64, 10, 4),
    ]);
    println!("{}", net.summary());

    println!("\ntraining …");
    let trainer = Trainer::builder()
        .epochs(6)
        .batch_size(32)
        .optimizer(OptimizerKind::Sgd { momentum: 0.9, weight_decay: 5e-4 })
        .seed(1)
        .verbose(true)
        .build();
    trainer.fit(
        &mut net,
        data.train().images(),
        data.train().labels(),
        Some((data.val().images(), data.val().labels())),
    );

    let eval = EvalSet::from_dataset(data.test(), 64);
    let clean = eval.accuracy(&net);
    println!("\nclean test accuracy: {clean:.3}");

    // ------------------------------------------------------------------
    // 2. Corrupt the weight memory: random bit flips at growing rates.
    // ------------------------------------------------------------------
    let rates = vec![1e-6, 1e-5, 1e-4];
    let campaign = Campaign::new(CampaignConfig {
        fault_rates: rates.clone(),
        repetitions: 5,
        seed: 99,
        model: FaultModel::BitFlip,
        target: InjectionTarget::AllWeights,
        stopping: None,
    });
    let unprotected = campaign.run(&mut net, |n: &Sequential| eval.accuracy(n));

    // ------------------------------------------------------------------
    // 3. FT-ClipAct Step 1+2: profile ACT_max, clip every activation.
    // ------------------------------------------------------------------
    let profiles = profile_network(&net, data.val().images(), 64, 32);
    let thresholds: Vec<f32> = profiles.iter().map(|p| p.act_max.max(f32::MIN_POSITIVE)).collect();
    println!("\nprofiled ACT_max per activation site: {thresholds:?}");
    let mut clipped = net.clone();
    clipped.convert_to_clipped(&thresholds);
    let protected = campaign.run(&mut clipped, |n: &Sequential| eval.accuracy(n));

    // ------------------------------------------------------------------
    // 4. Compare.
    // ------------------------------------------------------------------
    println!("\n{:<12} {:>12} {:>12}", "fault_rate", "unprotected", "clipped");
    for (i, rate) in rates.iter().enumerate() {
        println!(
            "{:<12.0e} {:>12.3} {:>12.3}",
            rate,
            unprotected.mean_accuracies()[i],
            protected.mean_accuracies()[i]
        );
    }
    let auc_u = ftclipact::core::campaign_auc(&unprotected);
    let auc_p = ftclipact::core::campaign_auc(&protected);
    println!(
        "\nAUC: unprotected {auc_u:.3}, clipped {auc_p:.3} ({:+.1}%)",
        (auc_p - auc_u) / auc_u * 100.0
    );
}
