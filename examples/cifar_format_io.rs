//! Working with the real CIFAR-10 binary format.
//!
//! The experiments in this repository run on the synthetic generator, but
//! the loader speaks the actual CIFAR-10 binary layout. This example
//! round-trips a synthetic dataset through that format — exactly what you
//! would do in reverse to run the experiments on the real dataset: drop
//! `data_batch_*.bin` + `test_batch.bin` into a directory and call
//! `load_cifar10`.
//!
//! ```sh
//! cargo run --release --example cifar_format_io
//! ```

use ftclipact::data::{load_cifar10, write_cifar10_batch, SynthCifar};

fn main() {
    let dir = std::env::temp_dir().join("ftclip-cifar-example");
    std::fs::create_dir_all(&dir).expect("create temp dir");

    // generate synthetic data and export it in CIFAR-10 binary layout
    let data = SynthCifar::builder()
        .seed(3)
        .train_size(250)
        .val_size(50)
        .test_size(100)
        .build();
    println!("exporting synthetic data to CIFAR-10 binary format in {} …", dir.display());
    let (chunk, _) = data.train().split_at(50);
    for i in 1..=5 {
        write_cifar10_batch(&chunk, dir.join(format!("data_batch_{i}.bin"))).expect("write batch");
    }
    write_cifar10_batch(data.test(), dir.join("test_batch.bin")).expect("write test batch");

    // load it back with the real-format loader
    let (train, test) = load_cifar10(&dir).expect("load cifar-10 layout");
    println!(
        "loaded: {} train images, {} test images, {} classes",
        train.len(),
        test.len(),
        train.num_classes()
    );
    println!("train class histogram: {:?}", train.class_histogram());
    println!("pixel range: [{:.3}, {:.3}]", train.images().min(), train.images().max());

    // 8-bit quantization is the only loss in the roundtrip
    let max_err = data
        .test()
        .images()
        .data()
        .iter()
        .zip(test.images().data())
        .map(|(&a, &b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("max roundtrip error vs original floats: {max_err:.5} (8-bit quantization bound ≈ 0.0079)");

    std::fs::remove_dir_all(&dir).ok();
    println!("\nto use the real dataset: untar cifar-10-binary.tar.gz and point load_cifar10 at it");
}
