//! The complete FT-ClipAct hardening pipeline on a trained model:
//! Step 1 profiling → Step 2 clipped conversion → Step 3 Algorithm 1
//! threshold fine-tuning, then a before/after resilience comparison.
//!
//! ```sh
//! cargo run --release --example harden_pipeline
//! ```

use ftclipact::core::{
    campaign_auc, AucConfig, Comparison, EvalSet, Methodology, ProfileConfig, TunerConfig,
};
use ftclipact::fault::{Campaign, CampaignConfig, FaultModel, InjectionTarget};
use ftclipact::nn::{OptimizerKind, Trainer};
use ftclipact::prelude::*;

fn main() {
    let data = SynthCifar::builder()
        .seed(23)
        .train_size(600)
        .val_size(300)
        .test_size(300)
        .noise_std(0.3)
        .build();

    let mut net = ftclipact::models::alexnet_cifar(0.0625, 10, 17);
    println!("training {} …", net.summary());
    Trainer::builder()
        .epochs(6)
        .batch_size(32)
        .optimizer(OptimizerKind::Sgd { momentum: 0.9, weight_decay: 5e-4 })
        .verbose(true)
        .build()
        .fit(&mut net, data.train().images(), data.train().labels(), None);

    let unprotected = net.clone();

    // ---- the methodology --------------------------------------------
    let methodology = Methodology::new(
        ProfileConfig { subset_size: 128, seed: 3, batch_size: 64, bins: 32 },
        TunerConfig {
            max_iterations: 2,
            min_iterations: 1,
            delta: 0.01,
            auc: AucConfig {
                fault_rates: vec![1e-6, 1e-5, 1e-4],
                repetitions: 2,
                seed: 5,
                model: FaultModel::BitFlip,
                target: InjectionTarget::AllWeights,
            },
        },
    );
    println!("\nhardening (profile → clip → tune) …");
    let report = methodology.harden(&mut net, data.val());
    println!("\n{:<10} {:>12} {:>12}", "site", "ACT_max", "tuned T");
    for layer in &report.per_layer {
        println!("{:<10} {:>12.4} {:>12.4}", layer.feeds_from, layer.act_max, layer.outcome.threshold);
    }

    // ---- before/after comparison on the test split -------------------
    let eval = EvalSet::from_dataset(data.test(), 64);
    let campaign = Campaign::new(CampaignConfig {
        fault_rates: vec![1e-6, 5e-6, 1e-5, 5e-5, 1e-4],
        repetitions: 6,
        seed: 77,
        model: FaultModel::BitFlip,
        target: InjectionTarget::AllWeights,
        stopping: None,
    });
    println!("\nevaluating resilience (clipped vs unprotected) …");
    let protected_result = campaign.run(&mut net, |n: &Sequential| eval.accuracy(n));
    let mut unprotected_net = unprotected;
    let unprotected_result = campaign.run(&mut unprotected_net, |n: &Sequential| eval.accuracy(n));

    let cmp = Comparison::new(&protected_result, &unprotected_result);
    println!("\n{}", cmp.to_table());
    println!(
        "AUC improvement: {:+.1}% (clipped {:.3} vs unprotected {:.3})",
        cmp.auc_improvement_percent(),
        campaign_auc(&protected_result),
        campaign_auc(&unprotected_result)
    );
}
