//! Exploring the fault models: why a single exponent-MSB bit decides
//! between "harmless" and "catastrophic", and how transient flips compare
//! to permanent stuck-at faults.
//!
//! ```sh
//! cargo run --release --example custom_fault_models
//! ```

use ftclipact::fault::{FaultModel, Injection, InjectionTarget, MemoryMap, Summary};
use ftclipact::nn::{Layer, ParamKind, Sequential};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // ---- bit anatomy of an IEEE-754 weight ---------------------------
    println!("anatomy of a corrupted f32 weight (value 0.01):\n");
    println!("{:<6} {:>16} {:>16} {:>16}", "bit", "bit-flip", "stuck-at-0", "stuck-at-1");
    for bit in [0u8, 15, 23, 26, 29, 30, 31] {
        println!(
            "{:<6} {:>16.4e} {:>16.4e} {:>16.4e}",
            bit,
            FaultModel::BitFlip.apply(0.01, bit),
            FaultModel::StuckAt0.apply(0.01, bit),
            FaultModel::StuckAt1.apply(0.01, bit),
        );
    }
    println!("\nbit 30 (exponent MSB) flips 0.01 to ~1.08e36 — the paper's key mechanism\n");

    // ---- memory map exploration --------------------------------------
    let net = Sequential::new(vec![
        Layer::conv2d(3, 8, 3, 1, 1, 1),
        Layer::relu(),
        Layer::flatten(),
        Layer::linear(8 * 16, 10, 2),
    ]);
    for target in [InjectionTarget::AllWeights, InjectionTarget::AllParams, InjectionTarget::Biases] {
        let map = MemoryMap::build(&net, target);
        println!(
            "target {:<12} → {:>6} words ({} bits) across {} regions",
            target.to_string(),
            map.total_words(),
            map.total_bits(),
            map.regions().len()
        );
    }

    // ---- sampled fault statistics -------------------------------------
    println!("\nsampled fault counts at rate 1e-3 over the all-weights space:");
    let mut counts = Vec::new();
    for rep in 0..200 {
        let mut rng = StdRng::seed_from_u64(rep);
        let inj = Injection::sample(&net, InjectionTarget::AllWeights, FaultModel::BitFlip, 1e-3, &mut rng);
        counts.push(inj.fault_count() as f64);
    }
    let summary = Summary::from_samples(&counts).expect("non-empty");
    let map = MemoryMap::build(&net, InjectionTarget::AllWeights);
    println!("expected {:.1}, measured {}", map.total_bits() as f64 * 1e-3, summary);

    // ---- which parameters do sampled faults hit? ----------------------
    let mut rng = StdRng::seed_from_u64(42);
    let inj = Injection::sample(&net, InjectionTarget::AllWeights, FaultModel::BitFlip, 5e-3, &mut rng);
    let mut conv_hits = 0;
    let mut fc_hits = 0;
    for &(layer, kind, _, _) in inj.faults() {
        assert_eq!(kind, ParamKind::Weight);
        if layer == 0 {
            conv_hits += 1;
        } else {
            fc_hits += 1;
        }
    }
    println!(
        "\none draw at 5e-3: {} faults — {} in CONV-1 (216 words), {} in FC-1 (1280 words)",
        inj.fault_count(),
        conv_hits,
        fc_hits
    );
    println!("larger layers soak up proportionally more faults, which is why the paper's\nper-layer analysis (Fig. 3) sweeps each layer separately");
}
