//! The [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// is just a deterministic function of the runner's RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
}

/// Type-erased strategy case, as stored by [`Union`].
pub struct UnionCase<T>(Box<dyn Fn(&mut StdRng) -> T>);

/// A uniform choice between several strategies with the same value type
/// (what [`crate::prop_oneof!`] builds).
pub struct Union<T> {
    cases: Vec<UnionCase<T>>,
}

impl<T> Union<T> {
    /// Creates a union from its cases.
    ///
    /// # Panics
    ///
    /// Panics if `cases` is empty.
    pub fn new(cases: Vec<UnionCase<T>>) -> Self {
        assert!(!cases.is_empty(), "prop_oneof! needs at least one case");
        Union { cases }
    }

    /// Boxes one strategy as a union case.
    pub fn case<S>(strategy: S) -> UnionCase<T>
    where
        S: Strategy<Value = T> + 'static,
    {
        UnionCase(Box::new(move |rng| strategy.generate(rng)))
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.cases.len());
        (self.cases[idx].0)(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (1usize..5).generate(&mut r);
            assert!((1..5).contains(&v));
            let f = (-2.0f32..2.0).generate(&mut r);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = rng();
        let s = (1usize..4).prop_flat_map(|n| (0..n).prop_map(move |k| (n, k)));
        for _ in 0..100 {
            let (n, k) = s.generate(&mut r);
            assert!(k < n && n < 4);
        }
    }

    #[test]
    fn just_clones() {
        assert_eq!(Just(vec![1, 2]).generate(&mut rng()), vec![1, 2]);
    }

    #[test]
    fn union_draws_every_case() {
        let u = crate::prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut seen = [false; 3];
        let mut r = rng();
        for _ in 0..200 {
            seen[u.generate(&mut r) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
