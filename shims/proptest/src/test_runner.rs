//! Runner configuration and per-case error type.

/// Per-test configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of passing cases required for the test to succeed.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should be re-drawn.
    Reject(String),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// A failing case with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected case with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}
