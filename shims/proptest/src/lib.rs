//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no registry access, so this shim reimplements
//! the subset of proptest the workspace's property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, implemented
//!   for ranges, tuples and [`strategy::Just`];
//! * [`collection::vec`] for sized/ranged element vectors;
//! * [`arbitrary::any`] for primitive full-range values;
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assert_ne!`] and [`prop_assume!`] macros;
//! * [`test_runner::Config`] (a.k.a. `ProptestConfig`) with `with_cases`.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! values via the assertion message only), and generation is driven by a
//! fixed per-test seed derived from the test name, so runs are fully
//! deterministic. Case count can be overridden with `PROPTEST_CASES`.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Runs a `proptest!`-generated test body for the configured number of cases.
#[doc(hidden)]
pub fn run_cases<F>(config: test_runner::Config, name: &str, mut body: F)
where
    F: FnMut(&mut rand::rngs::StdRng) -> Result<(), test_runner::TestCaseError>,
{
    use rand::SeedableRng;
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(config.cases)
        .max(1);
    // FNV-1a over the test name: any fixed, name-dependent seed works; the
    // point is that every run of the suite explores the identical stream.
    let seed = name
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3));
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < cases {
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(test_runner::TestCaseError::Reject(why)) => {
                rejected += 1;
                let limit = cases.saturating_mul(16).max(1024);
                assert!(
                    rejected <= limit,
                    "proptest '{name}': {limit}+ cases rejected ({why}); strategy too narrow"
                );
            }
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed after {passed} passing case(s): {msg}")
            }
        }
    }
}

/// Declares property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, (a, b) in pair_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { (<$crate::test_runner::Config as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) $( #[test] $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            #[test]
            $(#[$meta])*
            fn $name() {
                $crate::run_cases($cfg, ::core::stringify!($name), |__proptest_rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)*
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Strategy union: picks one of the argument strategies uniformly per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![$($crate::strategy::Union::case($strat)),+])
    };
}

/// Asserts a condition inside a property test, failing the case (not the
/// process) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::core::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)));
        }
    };
}

/// Equality assertion for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, "assertion failed: {:?} == {:?}", lhs, rhs);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs == rhs, $($fmt)+);
    }};
}

/// Inequality assertion for property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs != rhs, "assertion failed: {:?} != {:?}", lhs, rhs);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(lhs != rhs, $($fmt)+);
    }};
}

/// Rejects the current case (it is re-drawn and does not count toward the
/// case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::core::stringify!($cond),
            ));
        }
    };
}
