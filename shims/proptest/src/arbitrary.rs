//! `any::<T>()` for primitives.

use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::{Rng, RngCore};

use crate::strategy::Strategy;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws a uniformly random value over the whole domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<f32>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<f64>()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Returns the canonical strategy for `T` (uniform over the whole domain).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn any_u32_covers_high_bits() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = any::<u32>();
        assert!((0..100).any(|_| s.generate(&mut rng) > u32::MAX / 2));
    }
}
