//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Generates a `Vec` whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.size.lo..=self.size.hi);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixed_size_is_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = vec(0u32..10, 7usize).generate(&mut rng);
        assert_eq!(v.len(), 7);
    }

    #[test]
    fn ranged_size_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let v = vec(0u32..10, 1..6).generate(&mut rng);
            assert!((1..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
