//! `#[derive(Serialize)]` for the `serde` shim.
//!
//! Supports exactly what the workspace needs: non-generic structs with named
//! fields. Anything else produces a `compile_error!` naming the limitation.
//! Implemented directly on the `proc_macro` token API — the build environment
//! has no registry access, so `syn`/`quote` are unavailable.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` by generating a `to_value` that builds a JSON
/// object with one entry per named field, in declaration order.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(out) => out,
        Err(msg) => format!("compile_error!({msg:?});").parse().expect("compile_error tokens"),
    }
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    // locate `struct <Name>`, skipping attributes and visibility
    let mut struct_kw = None;
    for (i, t) in tokens.iter().enumerate() {
        if let TokenTree::Ident(id) = t {
            match id.to_string().as_str() {
                "struct" => {
                    struct_kw = Some(i);
                    break;
                }
                "enum" | "union" => {
                    return Err("derive(Serialize) shim supports structs with named fields only".into())
                }
                _ => {}
            }
        }
    }
    let struct_kw =
        struct_kw.ok_or_else(|| "derive(Serialize) shim: no `struct` keyword found".to_string())?;
    let name = match tokens.get(struct_kw + 1) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("derive(Serialize) shim: expected struct name".into()),
    };

    // the body must be the next token: a brace group (no generics supported)
    let body = match tokens.get(struct_kw + 2) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err("derive(Serialize) shim does not support generic structs".into())
        }
        _ => return Err("derive(Serialize) shim supports named-field structs only".into()),
    };

    let fields = field_names(body)?;
    let mut entries = String::new();
    for f in &fields {
        entries.push_str(&format!(
            "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f})),"
        ));
    }
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{entries}])\n\
             }}\n\
         }}"
    );
    out.parse()
        .map_err(|e| format!("derive(Serialize) shim: generated code failed to parse: {e:?}"))
}

/// Extracts field names from the token stream inside the struct braces.
/// Grammar per field: `#[attr]* <vis>? <name> : <type>` separated by commas.
/// Commas inside angle brackets (`HashMap<String, f64>`) are part of the
/// field's type, not separators, so bracket depth is tracked.
fn field_names(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0usize;
    for t in body {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                current.push(t);
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
                current.push(t);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if !current.is_empty() {
                    fields.push(name_of_field(&current)?);
                    current.clear();
                }
            }
            _ => current.push(t),
        }
    }
    if !current.is_empty() {
        fields.push(name_of_field(&current)?);
    }
    Ok(fields)
}

/// The field name is the last identifier before the `:` separating name from
/// type (this skips `pub`, `pub(crate)` groups and `#[...]` attributes).
fn name_of_field(tokens: &[TokenTree]) -> Result<String, String> {
    let mut last_ident = None;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == ':' => {
                return last_ident.ok_or_else(|| "derive(Serialize) shim: field without a name".to_string())
            }
            TokenTree::Ident(id) => last_ident = Some(id.to_string()),
            _ => {}
        }
    }
    Err("derive(Serialize) shim: tuple structs are not supported".into())
}
