//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the tiny slice of the rand 0.8 API it actually uses:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`] — a seedable,
//!   deterministic generator (xoshiro256** seeded via SplitMix64; pure
//!   integer arithmetic, so streams are identical on every platform).
//! * [`Rng::gen_range`], [`Rng::gen_bool`], [`Rng::gen`] — uniform sampling.
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates shuffling.
//!
//! The algorithm differs from upstream `StdRng` (ChaCha12), which is
//! explicitly *not* a stability guarantee upstream either; everything in this
//! workspace only relies on seed → stream determinism, which this shim
//! provides unconditionally.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words. Minimal analogue of `rand_core::RngCore`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators. Minimal analogue of `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, provided for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        unit_f64(self) < p
    }

    /// Samples a value of `T` from its standard distribution
    /// (uniform `[0, 1)` for floats, uniform over all values for integers).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`]. Analogue of `Distribution<T> for Standard`.
pub trait StandardSample: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 explicit mantissa bits → uniform on [0, 1)
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform `f64` on `[0, 1)` using the top 53 bits of one output word.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges accepted by [`Rng::gen_range`]. Analogue of `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = unit_f64(rng) as $t;
                let v = self.start + u * (self.end - self.start);
                // guard against rounding up onto the excluded endpoint
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}
float_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**,
    /// state-initialized with SplitMix64 as its authors recommend.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Trivially predictable generators for tests.
    pub mod mock {
        use super::RngCore;

        /// Yields `initial`, `initial + increment`, … — an arithmetic
        /// sequence, exactly like `rand::rngs::mock::StepRng`.
        #[derive(Debug, Clone)]
        pub struct StepRng {
            value: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates a generator starting at `initial`, stepping by
            /// `increment` per output word.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng { value: initial, increment }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.value;
                self.value = self.value.wrapping_add(self.increment);
                out
            }
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random slice operations. Analogue of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-2i32..=2);
            assert!((-2..=2).contains(&x));
            let f = rng.gen_range(0.5f64..3.0);
            assert!((0.5..3.0).contains(&f));
            let u = rng.gen_range(0usize..10);
            assert!(u < 10);
        }
    }

    #[test]
    fn gen_range_covers_inclusive_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[(rng.gen_range(-2i32..=2) + 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of -2..=2 should appear: {seen:?}");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut a: Vec<usize> = (0..20).collect();
        let mut b: Vec<usize> = (0..20).collect();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn works_through_unsized_bounds() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(f64::MIN_POSITIVE..1.0)
        }
        let mut rng = StdRng::seed_from_u64(1);
        let v = draw(&mut rng);
        assert!(v > 0.0 && v < 1.0);
    }
}
