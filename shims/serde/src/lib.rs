//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The workspace only serializes simple result-row structs to JSON, so this
//! shim models serialization as "convert to a [`Value`] tree" instead of
//! serde's visitor architecture. `#[derive(Serialize)]` (from the sibling
//! `serde_derive` shim) generates the [`Serialize::to_value`] impl, and the
//! `serde_json` shim renders the tree.

#![forbid(unsafe_code)]

pub use serde_derive::Serialize;

/// A JSON value tree — the intermediate representation all serialization
/// in this workspace goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (rendered via `f64`; integers stay exact to 2^53).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for missing keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a [`Value::String`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a [`Value::Number`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer: `None` unless this is
    /// a number that is a whole value exactly representable in `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.trunc() == *n && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is a [`Value::Array`].
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The entry list, if this is a [`Value::Object`].
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Types that can be converted to a JSON [`Value`].
pub trait Serialize {
    /// Converts `self` to a JSON value tree.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! number_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}
number_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        // sort for deterministic output — HashMap iteration order is random
        let mut entries: Vec<(String, Value)> = self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3usize.to_value(), Value::Number(3.0));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::String("hi".into()));
        assert_eq!(Option::<u32>::None.to_value(), Value::Null);
    }

    #[test]
    fn vec_maps_to_array() {
        assert_eq!(vec![1u32, 2].to_value(), Value::Array(vec![Value::Number(1.0), Value::Number(2.0)]));
    }

    #[test]
    fn value_accessors() {
        let obj = Value::Object(vec![
            ("n".into(), Value::Number(3.0)),
            ("s".into(), Value::String("x".into())),
            ("b".into(), Value::Bool(true)),
            ("a".into(), Value::Array(vec![Value::Null])),
        ]);
        assert_eq!(obj.get("n").and_then(Value::as_u64), Some(3));
        assert_eq!(obj.get("n").and_then(Value::as_f64), Some(3.0));
        assert_eq!(obj.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(obj.get("b").and_then(Value::as_bool), Some(true));
        assert_eq!(obj.get("a").and_then(Value::as_array).map(<[Value]>::len), Some(1));
        assert!(obj.get("a").unwrap().as_array().unwrap()[0].is_null());
        assert_eq!(obj.get("missing"), None);
        assert_eq!(Value::Null.get("n"), None);
        assert_eq!(obj.as_object().map(<[(String, Value)]>::len), Some(4));
        // fractional and negative numbers are not u64s
        assert_eq!(Value::Number(1.5).as_u64(), None);
        assert_eq!(Value::Number(-1.0).as_u64(), None);
    }
}
