//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The workspace only serializes simple result-row structs to JSON, so this
//! shim models serialization as "convert to a [`Value`] tree" instead of
//! serde's visitor architecture. `#[derive(Serialize)]` (from the sibling
//! `serde_derive` shim) generates the [`Serialize::to_value`] impl, and the
//! `serde_json` shim renders the tree.

#![forbid(unsafe_code)]

pub use serde_derive::Serialize;

/// A JSON value tree — the intermediate representation all serialization
/// in this workspace goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (rendered via `f64`; integers stay exact to 2^53).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// Types that can be converted to a JSON [`Value`].
pub trait Serialize {
    /// Converts `self` to a JSON value tree.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! number_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}
number_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        // sort for deterministic output — HashMap iteration order is random
        let mut entries: Vec<(String, Value)> = self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3usize.to_value(), Value::Number(3.0));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::String("hi".into()));
        assert_eq!(Option::<u32>::None.to_value(), Value::Null);
    }

    #[test]
    fn vec_maps_to_array() {
        assert_eq!(vec![1u32, 2].to_value(), Value::Array(vec![Value::Number(1.0), Value::Number(2.0)]));
    }
}
