//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json):
//! renders the `serde` shim's [`serde::Value`] tree as JSON text, and parses
//! JSON text back into a [`serde::Value`] tree ([`from_str`]).

#![forbid(unsafe_code)]

use std::fmt;

use serde::{Serialize, Value};

/// Serialization/parse error. Rendering is infallible; parsing reports the
/// byte offset and a short description of what went wrong.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn parse(offset: usize, msg: impl Into<String>) -> Self {
        Error { msg: format!("at byte {offset}: {}", msg.into()) }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses a JSON document into a [`Value`] tree.
///
/// Supports the full JSON grammar (objects, arrays, strings with `\uXXXX`
/// escapes incl. surrogate pairs, numbers, booleans, `null`). Numbers are
/// parsed as `f64`, matching the [`Value::Number`] representation. Trailing
/// non-whitespace after the document is an error.
///
/// # Errors
///
/// Returns a descriptive [`Error`] with the byte offset of the first
/// offending character.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse(p.pos, "trailing characters after JSON document"));
    }
    Ok(value)
}

/// Maximum container nesting depth (mirrors real serde_json's default
/// recursion limit) — the recursive-descent parser must return a typed
/// error on hostile deeply nested input, never overflow the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(self.pos, format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::parse(self.pos, format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::parse(self.pos, format!("unexpected character '{}'", other as char))),
            None => Err(Error::parse(self.pos, "unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error::parse(self.pos, format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse(self.pos, "expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        self.enter()?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::parse(self.pos, "expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // fast path: run of plain UTF-8 up to the next quote or escape
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::parse(start, "invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(Error::parse(self.pos, "unescaped control character in string")),
                None => return Err(Error::parse(self.pos, "unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), Error> {
        let c = self.peek().ok_or_else(|| Error::parse(self.pos, "unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // surrogate pair: a \uXXXX low half must follow
                    if self.bytes[self.pos..].starts_with(b"\\u") {
                        self.pos += 2;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(Error::parse(self.pos, "invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(Error::parse(self.pos, "unpaired surrogate"));
                    }
                } else {
                    hi
                };
                out.push(
                    char::from_u32(code).ok_or_else(|| Error::parse(self.pos, "invalid unicode escape"))?,
                );
            }
            other => return Err(Error::parse(self.pos - 1, format!("unknown escape '\\{}'", other as char))),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .and_then(|d| std::str::from_utf8(d).ok())
            .ok_or_else(|| Error::parse(self.pos, "truncated \\u escape"))?;
        let code =
            u32::from_str_radix(digits, 16).map_err(|_| Error::parse(self.pos, "bad hex in \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse(start, "invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::parse(start, format!("invalid number '{text}'")))
    }
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => render_number(*n, out),
        Value::String(s) => render_string(s, out),
        Value::Array(items) => {
            render_seq(items.iter(), indent, depth, out, '[', ']', |item, d, o| render(item, indent, d, o))
        }
        Value::Object(entries) => {
            render_seq(entries.iter(), indent, depth, out, '{', '}', |(k, val), d, o| {
                render_string(k, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                render(val, indent, d, o);
            })
        }
    }
}

fn render_seq<I, F>(
    items: I,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    open: char,
    close: char,
    mut each: F,
) where
    I: ExactSizeIterator,
    F: FnMut(I::Item, usize, &mut String),
{
    out.push(open);
    let n = items.len();
    if n == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        newline(indent, depth + 1, out);
        each(item, depth + 1, out);
        if i + 1 < n {
            out.push(',');
        }
    }
    newline(indent, depth, out);
    out.push(close);
}

fn newline(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn render_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf; match serde_json's lossy behaviour for raw f64
    } else if n == n.trunc() && n.abs() < 9_007_199_254_740_992.0 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object() {
        let v =
            Value::Object(vec![("a".into(), Value::Number(1.0)), ("b".into(), Value::String("x\"y".into()))]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":"x\"y"}"#);
    }

    #[test]
    fn pretty_array_of_objects() {
        let v = Value::Array(vec![Value::Object(vec![("k".into(), Value::Bool(true))])]);
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  {\n    \"k\": true\n  }\n]");
    }

    #[test]
    fn numbers_render_integers_exactly() {
        assert_eq!(to_string(&Value::Number(42.0)).unwrap(), "42");
        assert_eq!(to_string(&Value::Number(0.5)).unwrap(), "0.5");
    }

    #[test]
    fn parse_roundtrips_rendered_values() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("fig1b \"quoted\" \\ \n tab\t".into())),
            (
                "rates".into(),
                Value::Array(vec![Value::Number(1e-7), Value::Number(0.5), Value::Number(-3.0)]),
            ),
            ("reps".into(), Value::Number(10.0)),
            ("on".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            ("nested".into(), Value::Object(vec![("k".into(), Value::Array(vec![]))])),
        ]);
        for rendered in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(from_str(&rendered).unwrap(), v, "{rendered}");
        }
    }

    #[test]
    fn parse_accepts_standard_forms() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(
            from_str(" [ 1 , 2.5e3 ] ").unwrap(),
            Value::Array(vec![Value::Number(1.0), Value::Number(2500.0)])
        );
        assert_eq!(from_str(r#""a\u00e9b""#).unwrap(), Value::String("aéb".into()));
        assert_eq!(from_str(r#""\ud83d\ude00""#).unwrap(), Value::String("😀".into()));
        assert_eq!(from_str("{}").unwrap(), Value::Object(vec![]));
        assert_eq!(from_str("-0.25").unwrap(), Value::Number(-0.25));
    }

    #[test]
    fn parse_rejects_hostile_nesting_with_an_error_not_a_stack_overflow() {
        let deep_ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(from_str(&deep_ok).is_ok());
        for hostile in ["[".repeat(200_000), format!("{}1{}", "[".repeat(129), "]".repeat(129))] {
            let err = from_str(&hostile).unwrap_err().to_string();
            assert!(err.contains("nesting deeper"), "{err}");
        }
        // a wide (non-nested) document is unaffected
        let wide = format!("[{}]", vec!["0"; 10_000].join(","));
        assert!(from_str(&wide).is_ok());
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{'a':1}",
            "[1,]",
            "\"\\q\"",
            "\"\\ud800x\"",
        ] {
            assert!(from_str(bad).is_err(), "{bad:?} should fail to parse");
        }
        // error carries a position and description
        let err = from_str("[1, oops]").unwrap_err().to_string();
        assert!(err.contains("byte 4"), "{err}");
    }

    #[test]
    fn parsed_floats_are_bit_exact_through_render() {
        // shortest-roundtrip rendering must re-parse to the identical bits
        for f in [0.1 + 0.2, 1.0 / 3.0, 1e-308, 6.02e23, f64::MIN_POSITIVE] {
            let rendered = to_string(&Value::Number(f)).unwrap();
            let Value::Number(back) = from_str(&rendered).unwrap() else { panic!("not a number") };
            assert_eq!(back.to_bits(), f.to_bits(), "{rendered}");
        }
    }

    #[test]
    fn derive_handles_generic_field_types() {
        // the comma inside BTreeMap<String, f64> must not split the field
        #[derive(serde::Serialize)]
        struct Row {
            name: String,
            scores: std::collections::BTreeMap<String, f64>,
        }
        let mut scores = std::collections::BTreeMap::new();
        scores.insert("auc".to_string(), 0.5);
        let row = Row { name: "x".into(), scores };
        assert_eq!(to_string(&row).unwrap(), r#"{"name":"x","scores":{"auc":0.5}}"#);
    }
}
