//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json):
//! renders the `serde` shim's [`serde::Value`] tree as JSON text.

#![forbid(unsafe_code)]

use std::fmt;

use serde::{Serialize, Value};

/// Serialization error. The shim's rendering is infallible, so this type
/// exists only to keep `serde_json`'s `Result`-returning signatures.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => render_number(*n, out),
        Value::String(s) => render_string(s, out),
        Value::Array(items) => {
            render_seq(items.iter(), indent, depth, out, '[', ']', |item, d, o| render(item, indent, d, o))
        }
        Value::Object(entries) => {
            render_seq(entries.iter(), indent, depth, out, '{', '}', |(k, val), d, o| {
                render_string(k, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                render(val, indent, d, o);
            })
        }
    }
}

fn render_seq<I, F>(
    items: I,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    open: char,
    close: char,
    mut each: F,
) where
    I: ExactSizeIterator,
    F: FnMut(I::Item, usize, &mut String),
{
    out.push(open);
    let n = items.len();
    if n == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        newline(indent, depth + 1, out);
        each(item, depth + 1, out);
        if i + 1 < n {
            out.push(',');
        }
    }
    newline(indent, depth, out);
    out.push(close);
}

fn newline(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn render_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf; match serde_json's lossy behaviour for raw f64
    } else if n == n.trunc() && n.abs() < 9_007_199_254_740_992.0 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object() {
        let v =
            Value::Object(vec![("a".into(), Value::Number(1.0)), ("b".into(), Value::String("x\"y".into()))]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":"x\"y"}"#);
    }

    #[test]
    fn pretty_array_of_objects() {
        let v = Value::Array(vec![Value::Object(vec![("k".into(), Value::Bool(true))])]);
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  {\n    \"k\": true\n  }\n]");
    }

    #[test]
    fn numbers_render_integers_exactly() {
        assert_eq!(to_string(&Value::Number(42.0)).unwrap(), "42");
        assert_eq!(to_string(&Value::Number(0.5)).unwrap(), "0.5");
    }

    #[test]
    fn derive_handles_generic_field_types() {
        // the comma inside BTreeMap<String, f64> must not split the field
        #[derive(serde::Serialize)]
        struct Row {
            name: String,
            scores: std::collections::BTreeMap<String, f64>,
        }
        let mut scores = std::collections::BTreeMap::new();
        scores.insert("auc".to_string(), 0.5);
        let row = Row { name: "x".into(), scores };
        assert_eq!(to_string(&row).unwrap(), r#"{"name":"x","scores":{"auc":0.5}}"#);
    }
}
