//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`, `criterion_main!` — with a simple but honest
//! measurement loop: warm up, then time batches until a wall-clock budget is
//! spent, and report the per-iteration mean of the fastest batch (the usual
//! low-noise estimator for short benches).
//!
//! Passing `--test` (as `cargo bench -- --test` does) runs every benchmark
//! body exactly once, for smoke-testing benches in CI without the timing
//! cost. A substring filter argument is honored like upstream.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    smoke: bool,
    /// mean seconds per iteration of the fastest measured batch
    best: f64,
}

impl Bencher {
    /// Calls `f` repeatedly and records its per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke {
            let _ = f();
            self.best = 0.0;
            return;
        }
        // warm-up: run until ~20 ms spent (at least once)
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < Duration::from_millis(20) {
            let _ = f();
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // aim for ~10 batches inside a ~200 ms budget
        let batch = ((0.02 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);
        let mut best = f64::INFINITY;
        let budget = Instant::now();
        let mut batches = 0;
        while batches < 10 && budget.elapsed() < Duration::from_millis(200) {
            let t = Instant::now();
            for _ in 0..batch {
                let _ = f();
            }
            best = best.min(t.elapsed().as_secs_f64() / batch as f64);
            batches += 1;
        }
        self.best = best;
    }
}

fn format_duration(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.3} s", seconds)
    }
}

/// The benchmark harness root.
pub struct Criterion {
    filter: Option<String>,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        parse_args(std::env::args().skip(1))
    }
}

fn parse_args(args: impl Iterator<Item = String>) -> Criterion {
    let mut filter = None;
    let mut smoke = false;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // flags known to take no value
            "--test" => smoke = true,
            "--bench" | "--exact" | "--quiet" | "--verbose" | "--list" => {}
            // any other --flag is assumed to take a value (upstream's
            // --save-baseline, --measurement-time, …): consume it so it
            // is not mistaken for a name filter
            a if a.starts_with("--") => {
                if args.peek().is_some_and(|next| !next.starts_with("--")) {
                    args.next();
                }
            }
            a => filter = Some(a.to_string()),
        }
    }
    Criterion { filter, smoke }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.into() }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&id.into().id, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher { smoke: self.smoke, best: f64::NAN };
        f(&mut b);
        if self.smoke {
            println!("{id}: ok (smoke)");
        } else if b.best.is_finite() {
            println!("{id}: {} /iter", format_duration(b.best));
        } else {
            println!("{id}: no measurement (Bencher::iter never called)");
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by wall-clock
    /// budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        self.c.run_one(&full, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.c.run_one(&full, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; matches the upstream API).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, as upstream `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut c = Criterion { filter: None, smoke: true };
        let mut calls = 0;
        c.bench_function("x", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion { filter: Some("match-me".into()), smoke: true };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("match-me", 1), &0, |b, _| b.iter(|| ran = true));
        group.finish();
        assert!(ran);
    }

    #[test]
    fn flag_values_are_not_mistaken_for_filters() {
        let c = parse_args(["--save-baseline", "main", "--bench"].map(String::from).into_iter());
        assert!(c.filter.is_none(), "'main' is --save-baseline's value, not a filter");
        let c = parse_args(["matmul", "--test"].map(String::from).into_iter());
        assert_eq!(c.filter.as_deref(), Some("matmul"));
        assert!(c.smoke);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(2.5e-9), "2.5 ns");
        assert_eq!(format_duration(3.1e-5), "31.00 µs");
        assert_eq!(format_duration(0.004), "4.00 ms");
    }
}
