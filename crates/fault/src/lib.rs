//! Bit-exact weight-memory fault injection for the FT-ClipAct reproduction.
//!
//! The paper's resilience analysis (§III) injects random bit flips into the
//! memory blocks storing a DNN's parameters and measures the classification
//! accuracy that survives. This crate reproduces that framework on top of
//! `ftclip-nn` networks:
//!
//! * [`FaultModel`] — transient bit flips and permanent stuck-at-0/1 faults
//!   on IEEE-754 `f32` weight words, optionally stratified by
//!   [`BitPosition`] (exact bit, quadrant, exponent, mantissa, sign) over
//!   both f32 and int8 encodings.
//! * [`MemoryMap`]/[`InjectionTarget`] — a linear address space over the
//!   parameters selected for injection (whole network, single layer — the
//!   per-layer analysis of Fig. 3 — weights only, or biases).
//! * [`sample_bit_positions`] — exact independent `Bernoulli(rate)` sampling
//!   over every bit of the selected memory, implemented with geometric
//!   skipping so cost scales with the number of *faults*, not the number of
//!   bits.
//! * [`Injection`] — applies a sampled fault set and can undo it exactly,
//!   so one trained network serves an entire campaign.
//! * [`Campaign`] — the paper's experiment shape: a grid of fault rates ×
//!   repetitions with derived seeds, returning per-rate accuracy
//!   distributions ([`Summary`]: mean, min, quartiles, max — the Fig. 7/8
//!   box plots).
//!
//! # Example
//!
//! ```
//! use ftclip_fault::{FaultModel, InjectionTarget, Injection};
//! use ftclip_nn::{Layer, Sequential};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut net = Sequential::new(vec![Layer::linear(8, 4, 0)]);
//! let mut rng = StdRng::seed_from_u64(1);
//! let inj = Injection::sample(&net, InjectionTarget::AllWeights, FaultModel::BitFlip, 1e-2, &mut rng);
//! let n_faults = inj.fault_count();
//! inj.apply(&mut net).undo(&mut net); // network restored bit-exactly
//! assert!(n_faults < 8 * 4 * 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod inject;
mod memory;
mod model;
mod progress;
mod protection;
mod sampler;
mod stats;

pub use campaign::{
    cache_of, paper_fault_rates, Campaign, CampaignCache, CampaignConfig, CampaignError, CampaignResult,
    CellEval, NoCache, RateConvergence, RunRecord, StoppingRule, SuffixHint,
};
pub use inject::{AppliedInjection, Injection};
pub use memory::{InjectionTarget, MemoryMap, Region};
pub use model::{BitLocation, BitPosition, FaultModel, Quadrant};
pub use progress::{current_observer, with_observer, CampaignObserver, CancelledCampaign};
pub use protection::{
    apply_tmr, inject_with_protection, DecodeStatus, DoubleErrorPolicy, ProtectedInjection, ProtectionScheme,
    SecDed,
};
pub use sampler::{derive_seed, expected_fault_count, sample_bit_positions};
pub use stats::{bootstrap_interval, wilson_interval, ConfidenceInterval, Summary};
