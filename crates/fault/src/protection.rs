//! Hardware protection baselines: SEC-DED ECC and TMR.
//!
//! The paper positions clipped activations against the standard hardware
//! mitigations — Error-Correcting Codes for memories and modular redundancy
//! (§I: ECC, DMR/TMR "have high overheads and are not preferable for
//! computation/memory intensive DNNs"). To make that comparison concrete,
//! this module implements both baselines *faithfully at the bit level*:
//!
//! * [`SecDed`] — a Hamming(38,32) + overall-parity **SEC-DED** code
//!   (single-error-correcting, double-error-detecting), 39 stored bits per
//!   32-bit word (21.9 % memory overhead). Single bit faults are corrected;
//!   double faults are detected and handled by a configurable
//!   [`DoubleErrorPolicy`]; triple+ faults may silently miscorrect, exactly
//!   as in real hardware.
//! * [`apply_tmr`] — bitwise **TMR**: three copies of the memory, each
//!   faulted independently, majority-voted per bit (200 % memory overhead).
//!   A bit is corrupted only when two copies fault at the same position.
//!
//! [`inject_with_protection`] runs one fault episode under a chosen
//! [`ProtectionScheme`] and returns the same undo handle as a plain
//! [`crate::Injection`], so campaign loops can compare schemes directly.

use ftclip_nn::{ParamKind, Sequential};
use rand::Rng;

use crate::{sample_bit_positions, FaultModel, InjectionTarget, MemoryMap};

/// What a SEC-DED decoder does when it *detects* (but cannot correct) a
/// double-bit error in a word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DoubleErrorPolicy {
    /// Replace the word with zero — the conservative choice for DNN weights
    /// (a zero weight is neutral, like the paper's clip-to-zero argument).
    ZeroWord,
    /// Keep the corrupted data bits as they decode (detection is only
    /// logged in real systems; the corrupted value flows on).
    KeepRaw,
}

/// A memory-protection scheme applied between the fault process and the
/// values the network reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtectionScheme {
    /// No protection — faults land directly in the weights.
    None,
    /// Hamming SEC-DED per 32-bit word (39 stored bits, 21.9 % overhead).
    SecDed(DoubleErrorPolicy),
    /// Triple modular redundancy with bitwise majority voting
    /// (96 stored bits per word, 200 % overhead).
    Tmr,
}

impl ProtectionScheme {
    /// Stored bits per 32-bit data word under this scheme.
    pub fn stored_bits_per_word(self) -> usize {
        match self {
            ProtectionScheme::None => 32,
            ProtectionScheme::SecDed(_) => SecDed::CODE_BITS,
            ProtectionScheme::Tmr => 96,
        }
    }

    /// Memory overhead relative to unprotected storage, in percent.
    pub fn memory_overhead_percent(self) -> f64 {
        (self.stored_bits_per_word() as f64 / 32.0 - 1.0) * 100.0
    }
}

impl std::fmt::Display for ProtectionScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtectionScheme::None => write!(f, "none"),
            ProtectionScheme::SecDed(DoubleErrorPolicy::ZeroWord) => write!(f, "sec-ded(zero)"),
            ProtectionScheme::SecDed(DoubleErrorPolicy::KeepRaw) => write!(f, "sec-ded(keep)"),
            ProtectionScheme::Tmr => write!(f, "tmr"),
        }
    }
}

/// Hamming(38,32) + overall parity SEC-DED codec for 32-bit words.
///
/// Layout: code bit positions `1..=38` hold parity bits at powers of two
/// (1, 2, 4, 8, 16, 32) and data bits elsewhere; position 0 holds the
/// overall parity across all 39 bits.
///
/// # Example
///
/// ```
/// use ftclip_fault::SecDed;
///
/// let code = SecDed::encode(0xDEADBEEF);
/// // flip any single stored bit: decode corrects it
/// let corrupted = code ^ (1u64 << 17);
/// let (word, status) = SecDed::decode(corrupted);
/// assert_eq!(word, 0xDEADBEEF);
/// assert_eq!(status, ftclip_fault::DecodeStatus::Corrected);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SecDed;

/// Outcome of a SEC-DED decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeStatus {
    /// No error detected.
    Clean,
    /// A single-bit error was detected and corrected.
    Corrected,
    /// A double-bit error was detected (not correctable).
    DoubleDetected,
}

impl SecDed {
    /// Total stored bits per data word.
    pub const CODE_BITS: usize = 39;
    /// Hamming parity bits (positions 1,2,4,8,16,32 within the 38-bit
    /// Hamming block).
    const PARITY_POSITIONS: [usize; 6] = [1, 2, 4, 8, 16, 32];

    /// `true` if `pos` (1-based Hamming position) holds a parity bit.
    fn is_parity_pos(pos: usize) -> bool {
        pos.is_power_of_two()
    }

    /// Encodes a 32-bit word into 39 stored bits (bit 0 = overall parity,
    /// bits 1..=38 = Hamming block).
    pub fn encode(word: u32) -> u64 {
        let mut code: u64 = 0;
        // place data bits in non-parity Hamming positions
        let mut data_idx = 0usize;
        for pos in 1..=38usize {
            if !Self::is_parity_pos(pos) {
                if (word >> data_idx) & 1 == 1 {
                    code |= 1u64 << pos;
                }
                data_idx += 1;
            }
        }
        debug_assert_eq!(data_idx, 32);
        // compute Hamming parity bits
        for &p in &Self::PARITY_POSITIONS {
            let mut parity = 0u64;
            for pos in 1..=38usize {
                if pos & p != 0 {
                    parity ^= (code >> pos) & 1;
                }
            }
            if parity == 1 {
                code |= 1u64 << p;
            }
        }
        // overall parity over bits 1..=38 stored at bit 0 (even parity
        // across all 39 bits)
        let ones = (code >> 1).count_ones() as u64 & 1;
        code |= ones; // bit 0
        code
    }

    /// Decodes 39 stored bits back to `(data_word, status)`, correcting a
    /// single flipped bit when present. Triple and higher odd-weight errors
    /// may silently miscorrect — the true behaviour of this code class.
    pub fn decode(mut code: u64) -> (u32, DecodeStatus) {
        code &= (1u64 << Self::CODE_BITS) - 1;
        // syndrome over the Hamming block
        let mut syndrome = 0usize;
        for &p in &Self::PARITY_POSITIONS {
            let mut parity = 0u64;
            for pos in 1..=38usize {
                if pos & p != 0 {
                    parity ^= (code >> pos) & 1;
                }
            }
            if parity == 1 {
                syndrome |= p;
            }
        }
        let overall = (code.count_ones() & 1) == 1; // odd total weight ⇒ parity violated
        let status = match (syndrome, overall) {
            (0, false) => DecodeStatus::Clean,
            (0, true) => {
                // the overall-parity bit itself flipped
                DecodeStatus::Corrected
            }
            (s, true) => {
                // single-bit error at Hamming position s
                if s <= 38 {
                    code ^= 1u64 << s;
                }
                DecodeStatus::Corrected
            }
            (_, false) => DecodeStatus::DoubleDetected,
        };
        // extract data bits
        let mut word = 0u32;
        let mut data_idx = 0usize;
        for pos in 1..=38usize {
            if !Self::is_parity_pos(pos) {
                if (code >> pos) & 1 == 1 {
                    word |= 1u32 << data_idx;
                }
                data_idx += 1;
            }
        }
        (word, status)
    }
}

/// Majority vote of three independently-faulted copies of a word.
///
/// Each copy receives its own fault set; the returned word has a corrupted
/// bit only where at least two copies agree on the corruption.
pub fn apply_tmr(original: u32, copy_faults: [&[u8]; 3], model: FaultModel) -> u32 {
    let mut copies = [original; 3];
    for (copy, faults) in copies.iter_mut().zip(copy_faults) {
        for &bit in faults {
            *copy = model.apply_to_word(*copy, bit);
        }
    }
    // bitwise majority
    (copies[0] & copies[1]) | (copies[0] & copies[2]) | (copies[1] & copies[2])
}

/// Undo data for [`inject_with_protection`].
#[derive(Debug)]
#[must_use = "hold the handle and call undo() to restore the network"]
pub struct ProtectedInjection {
    saved: Vec<(usize, ParamKind, usize, u32)>,
    corrected: usize,
    detected: usize,
    corrupted: usize,
}

impl ProtectedInjection {
    /// Words whose faults the scheme corrected transparently.
    pub fn corrected_words(&self) -> usize {
        self.corrected
    }

    /// Words with detected-but-uncorrectable faults (SEC-DED doubles).
    pub fn detected_words(&self) -> usize {
        self.detected
    }

    /// Words that reached the network corrupted.
    pub fn corrupted_words(&self) -> usize {
        self.corrupted
    }

    /// Restores every modified word.
    pub fn undo(self, net: &mut Sequential) {
        for &(layer, kind, word, original) in self.saved.iter().rev() {
            net.visit_params_mut(&mut |l, k, values, _| {
                if l == layer && k == kind {
                    values.data_mut()[word] = f32::from_bits(original);
                }
            });
        }
    }
}

/// Runs one fault episode at per-bit rate `rate` under `scheme` and writes
/// the post-decode values into the network. The stored memory is larger
/// under ECC/TMR, so at equal per-bit physical fault rates *more* raw
/// faults land — the schemes must earn their keep.
///
/// # Panics
///
/// Panics if `rate` is outside `[0, 1]` or `target` selects nothing.
pub fn inject_with_protection<R: Rng + ?Sized>(
    net: &mut Sequential,
    target: InjectionTarget,
    model: FaultModel,
    rate: f64,
    scheme: ProtectionScheme,
    rng: &mut R,
) -> ProtectedInjection {
    let map = MemoryMap::build(net, target);
    let bits_per_word = scheme.stored_bits_per_word();
    let total_bits = map.total_words() * bits_per_word;
    let positions = sample_bit_positions(total_bits, rate, rng);

    // group fault bit offsets by word
    let mut by_word: std::collections::BTreeMap<usize, Vec<usize>> = std::collections::BTreeMap::new();
    for p in positions {
        by_word.entry(p / bits_per_word).or_default().push(p % bits_per_word);
    }

    let mut saved = Vec::new();
    let mut corrected = 0usize;
    let mut detected = 0usize;
    let mut corrupted = 0usize;
    for (word_idx, bit_offsets) in by_word {
        let (layer, kind, word_in_tensor) = map.locate(word_idx);
        let mut original_bits = 0u32;
        net.visit_params(&mut |l, k, values, _| {
            if l == layer && k == kind {
                original_bits = values.data()[word_in_tensor].to_bits();
            }
        });
        let new_bits = match scheme {
            ProtectionScheme::None => {
                let mut w = original_bits;
                for bit in &bit_offsets {
                    w = model.apply_to_word(w, *bit as u8);
                }
                w
            }
            ProtectionScheme::SecDed(policy) => {
                let mut code = SecDed::encode(original_bits);
                for bit in &bit_offsets {
                    // stored-bit faults under the same fault model
                    let b = *bit as u8;
                    let mask = 1u64 << b;
                    code = match model {
                        FaultModel::BitFlip | FaultModel::BitFlipAt(_) => code ^ mask,
                        FaultModel::StuckAt0 => code & !mask,
                        FaultModel::StuckAt1 => code | mask,
                    };
                }
                let (decoded, status) = SecDed::decode(code);
                match status {
                    DecodeStatus::Clean | DecodeStatus::Corrected => {
                        if decoded == original_bits {
                            corrected += 1;
                        } else {
                            corrupted += 1; // silent miscorrection (≥3 faults)
                        }
                        decoded
                    }
                    DecodeStatus::DoubleDetected => {
                        detected += 1;
                        match policy {
                            DoubleErrorPolicy::ZeroWord => 0f32.to_bits(),
                            DoubleErrorPolicy::KeepRaw => decoded,
                        }
                    }
                }
            }
            ProtectionScheme::Tmr => {
                // split offsets into the three copies
                let mut per_copy: [Vec<u8>; 3] = [Vec::new(), Vec::new(), Vec::new()];
                for bit in &bit_offsets {
                    per_copy[bit / 32].push((bit % 32) as u8);
                }
                let voted = apply_tmr(original_bits, [&per_copy[0], &per_copy[1], &per_copy[2]], model);
                if voted == original_bits {
                    corrected += 1;
                } else {
                    corrupted += 1;
                }
                voted
            }
        };
        if new_bits != original_bits {
            if scheme == ProtectionScheme::None {
                corrupted += 1;
            }
            net.visit_params_mut(&mut |l, k, values, _| {
                if l == layer && k == kind {
                    values.data_mut()[word_in_tensor] = f32::from_bits(new_bits);
                }
            });
            saved.push((layer, kind, word_in_tensor, original_bits));
        }
    }
    ProtectedInjection { saved, corrected, detected, corrupted }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclip_nn::Layer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn secded_roundtrip_clean() {
        for word in [0u32, 1, 0xFFFF_FFFF, 0xDEAD_BEEF, 0x8000_0001] {
            let code = SecDed::encode(word);
            let (decoded, status) = SecDed::decode(code);
            assert_eq!(decoded, word);
            assert_eq!(status, DecodeStatus::Clean);
        }
    }

    #[test]
    fn secded_corrects_every_single_bit_flip() {
        let word = 0xCAFE_F00Du32;
        let code = SecDed::encode(word);
        for bit in 0..SecDed::CODE_BITS {
            let corrupted = code ^ (1u64 << bit);
            let (decoded, status) = SecDed::decode(corrupted);
            assert_eq!(decoded, word, "failed to correct stored bit {bit}");
            assert_eq!(status, DecodeStatus::Corrected);
        }
    }

    #[test]
    fn secded_detects_every_double_bit_flip() {
        let word = 0x1234_5678u32;
        let code = SecDed::encode(word);
        for b1 in 0..SecDed::CODE_BITS {
            for b2 in (b1 + 1)..SecDed::CODE_BITS {
                let corrupted = code ^ (1u64 << b1) ^ (1u64 << b2);
                let (_, status) = SecDed::decode(corrupted);
                assert_eq!(status, DecodeStatus::DoubleDetected, "missed double ({b1},{b2})");
            }
        }
    }

    #[test]
    fn tmr_single_copy_fault_is_voted_out() {
        let voted = apply_tmr(0xABCD_EF01, [&[30], &[], &[]], FaultModel::BitFlip);
        assert_eq!(voted, 0xABCD_EF01);
    }

    #[test]
    fn tmr_two_copy_same_bit_corrupts() {
        let voted = apply_tmr(0x0000_0001, [&[30], &[30], &[]], FaultModel::BitFlip);
        assert_ne!(voted, 0x0000_0001);
    }

    #[test]
    fn tmr_two_copy_different_bits_survive() {
        let voted = apply_tmr(0x0000_0001, [&[30], &[29], &[]], FaultModel::BitFlip);
        assert_eq!(voted, 0x0000_0001);
    }

    fn test_net() -> Sequential {
        Sequential::new(vec![Layer::linear(16, 8, 1)])
    }

    fn snapshot(net: &Sequential) -> Vec<u32> {
        let mut v = Vec::new();
        net.visit_params(&mut |_, _, t, _| v.extend(t.data().iter().map(|x| x.to_bits())));
        v
    }

    #[test]
    fn protected_injection_undo_restores() {
        for scheme in [
            ProtectionScheme::None,
            ProtectionScheme::SecDed(DoubleErrorPolicy::ZeroWord),
            ProtectionScheme::Tmr,
        ] {
            let mut net = test_net();
            let before = snapshot(&net);
            let mut rng = StdRng::seed_from_u64(5);
            let handle = inject_with_protection(
                &mut net,
                InjectionTarget::AllWeights,
                FaultModel::BitFlip,
                0.05,
                scheme,
                &mut rng,
            );
            handle.undo(&mut net);
            assert_eq!(snapshot(&net), before, "undo failed for {scheme}");
        }
    }

    #[test]
    fn secded_absorbs_sparse_faults_completely() {
        // at rates where double faults per 39-bit word are vanishingly
        // rare, SEC-DED leaves the memory untouched
        let mut net = test_net();
        let before = snapshot(&net);
        let mut rng = StdRng::seed_from_u64(7);
        let handle = inject_with_protection(
            &mut net,
            InjectionTarget::AllWeights,
            FaultModel::BitFlip,
            1e-4,
            ProtectionScheme::SecDed(DoubleErrorPolicy::ZeroWord),
            &mut rng,
        );
        assert_eq!(snapshot(&net), before, "sparse faults must all be corrected");
        assert_eq!(handle.corrupted_words(), 0);
        handle.undo(&mut net);
    }

    #[test]
    fn unprotected_sparse_faults_do_land() {
        let mut net = test_net();
        let before = snapshot(&net);
        let mut rng = StdRng::seed_from_u64(8);
        let handle = inject_with_protection(
            &mut net,
            InjectionTarget::AllWeights,
            FaultModel::BitFlip,
            1e-2,
            ProtectionScheme::None,
            &mut rng,
        );
        assert_ne!(snapshot(&net), before);
        assert!(handle.corrupted_words() > 0);
        handle.undo(&mut net);
    }

    #[test]
    fn tmr_beats_unprotected_at_equal_rate() {
        // count corrupted words over repetitions at a rate where collisions
        // are possible but rare
        let rate = 5e-3;
        let mut unprot = 0usize;
        let mut tmr = 0usize;
        for seed in 0..40u64 {
            let mut net = test_net();
            let h = inject_with_protection(
                &mut net,
                InjectionTarget::AllWeights,
                FaultModel::BitFlip,
                rate,
                ProtectionScheme::None,
                &mut StdRng::seed_from_u64(seed),
            );
            unprot += h.corrupted_words();
            let mut net2 = test_net();
            let h2 = inject_with_protection(
                &mut net2,
                InjectionTarget::AllWeights,
                FaultModel::BitFlip,
                rate,
                ProtectionScheme::Tmr,
                &mut StdRng::seed_from_u64(seed),
            );
            tmr += h2.corrupted_words();
        }
        assert!(tmr < unprot / 4, "tmr {tmr} should be far below unprotected {unprot}");
    }

    #[test]
    fn overheads_match_scheme_definitions() {
        assert_eq!(ProtectionScheme::None.memory_overhead_percent(), 0.0);
        assert!(
            (ProtectionScheme::SecDed(DoubleErrorPolicy::ZeroWord).memory_overhead_percent() - 21.875).abs()
                < 1e-9
        );
        assert_eq!(ProtectionScheme::Tmr.memory_overhead_percent(), 200.0);
    }
}
