//! Fault models on IEEE-754 single-precision words and int8 bytes.
//!
//! The paper's primary model is a uniform [`FaultModel::BitFlip`] over every
//! bit of the mapped parameter memory. [`FaultModel::BitFlipAt`] refines it
//! into **bit-position-stratified** flips: sampling is restricted to one
//! [`BitPosition`] stratum of the encoding (the sign bit, the exponent
//! field, the mantissa field, one 8-bit quadrant, or one exact bit index),
//! which is how Terminal-Brain-Damage-style analyses expose the
//! exponent-dominated vulnerability structure of f32 networks. Strata are
//! resolved against the *encoding width* — 32 for IEEE-754 f32 words, 8 for
//! int8 words — so the same stratified model sweeps both precisions.

/// The position of one faulty bit inside a parameter memory.
///
/// `word` indexes `f32` words within the [`crate::MemoryMap`] address space;
/// `bit` indexes bits within the word, 0 = least-significant mantissa bit,
/// 31 = sign. Bit 30 is the most-significant exponent bit — the flip the
/// paper identifies as the accuracy killer (§III: "bit-flips from 0 to 1 at
/// MSB locations … result in them having higher magnitudes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitLocation {
    /// Index of the `f32` word in the mapped address space.
    pub word: usize,
    /// Bit index within the word (0 = LSB of the mantissa, 31 = sign).
    pub bit: u8,
}

impl BitLocation {
    /// Converts a flat bit offset (as produced by
    /// [`crate::sample_bit_positions`]) into a word/bit pair.
    pub fn from_bit_offset(offset: usize) -> Self {
        BitLocation { word: offset / 32, bit: (offset % 32) as u8 }
    }

    /// The flat bit offset of this location.
    pub fn to_bit_offset(self) -> usize {
        self.word * 32 + self.bit as usize
    }
}

/// One quarter of an encoding, LSB-first: `Q1` is the least-significant
/// quarter, `Q4` the most-significant. For f32 these are the 8-bit quadrants
/// of the related repos' bit-quadrant sweeps (`Q1` = bits 0–7 … `Q4` = bits
/// 24–31, the quadrant holding the high exponent and sign bits); for int8
/// they are 2-bit quarters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quadrant {
    /// Least-significant quarter (f32: bits 0–7, int8: bits 0–1).
    Q1,
    /// Second quarter (f32: bits 8–15, int8: bits 2–3).
    Q2,
    /// Third quarter (f32: bits 16–23, int8: bits 4–5).
    Q3,
    /// Most-significant quarter (f32: bits 24–31, int8: bits 6–7).
    Q4,
}

impl Quadrant {
    /// All four quadrants, LSB-first.
    pub const ALL: [Quadrant; 4] = [Quadrant::Q1, Quadrant::Q2, Quadrant::Q3, Quadrant::Q4];

    fn index(self) -> usize {
        match self {
            Quadrant::Q1 => 0,
            Quadrant::Q2 => 1,
            Quadrant::Q3 => 2,
            Quadrant::Q4 => 3,
        }
    }
}

/// A bit-position stratum of an encoding: which bits of each word a
/// stratified fault model may corrupt.
///
/// Strata are resolved against an encoding width via [`BitPosition::bits`]:
/// 32-bit words split into IEEE-754 fields (sign 31, exponent 30–23,
/// mantissa 22–0), 8-bit words into two's-complement fields (sign 7, value
/// bits 6–0 — and **no exponent field at all**, which is exactly why int8
/// inference changes the shape of the vulnerability curve).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BitPosition {
    /// One exact bit index (0 = LSB). Out of range for the encoding ⇒ an
    /// empty stratum (no bits to corrupt).
    Exact(u8),
    /// One quarter of the encoding (see [`Quadrant`]).
    Quadrant(Quadrant),
    /// The exponent field: f32 bits 23–30. Empty on int8 — two's-complement
    /// integers have no exponent, so exponent-stratified campaigns on int8
    /// inject nothing and hold clean accuracy by construction.
    Exponent,
    /// The mantissa/value field: f32 bits 0–22, int8 bits 0–6.
    Mantissa,
    /// The sign bit: f32 bit 31, int8 bit 7.
    Sign,
}

impl BitPosition {
    /// The stratum's bit indices within a `word_bits`-wide encoding,
    /// ascending. `word_bits` is 32 for IEEE-754 f32 and 8 for int8; both
    /// must be a multiple of 4 (for quadrants). May be empty — e.g.
    /// [`BitPosition::Exponent`] on int8, or an [`BitPosition::Exact`] index
    /// outside the encoding.
    ///
    /// # Panics
    ///
    /// Panics if `word_bits` is 0 or not a multiple of 4.
    pub fn bits(self, word_bits: u8) -> Vec<u8> {
        assert!(word_bits > 0 && word_bits.is_multiple_of(4), "unsupported encoding width {word_bits}");
        let sign = word_bits - 1;
        match self {
            BitPosition::Exact(b) => {
                if b < word_bits {
                    vec![b]
                } else {
                    Vec::new()
                }
            }
            BitPosition::Quadrant(q) => {
                let quarter = word_bits / 4;
                let lo = quarter * q.index() as u8;
                (lo..lo + quarter).collect()
            }
            // f32: exponent = bits 23..=30, mantissa = 0..=22;
            // int8: no exponent, value bits = 0..=6
            BitPosition::Exponent => {
                if word_bits == 32 {
                    (23..31).collect()
                } else {
                    Vec::new()
                }
            }
            BitPosition::Mantissa => {
                if word_bits == 32 {
                    (0..23).collect()
                } else {
                    (0..sign).collect()
                }
            }
            BitPosition::Sign => vec![sign],
        }
    }
}

impl std::fmt::Display for BitPosition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BitPosition::Exact(b) => write!(f, "exact:{b}"),
            BitPosition::Quadrant(q) => write!(f, "q{}", q.index() + 1),
            BitPosition::Exponent => write!(f, "exponent"),
            BitPosition::Mantissa => write!(f, "mantissa"),
            BitPosition::Sign => write!(f, "sign"),
        }
    }
}

impl std::str::FromStr for BitPosition {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(b) = s.strip_prefix("exact:") {
            // reject indices no supported encoding has — a silent empty
            // stratum from a typo would fake a perfectly resilient network
            return match b.parse::<u8>() {
                Ok(b) if b < 32 => Ok(BitPosition::Exact(b)),
                _ => Err(format!("bit stratum 'exact:{b}' out of range (bit must be 0..=31)")),
            };
        }
        match s {
            "q1" => Ok(BitPosition::Quadrant(Quadrant::Q1)),
            "q2" => Ok(BitPosition::Quadrant(Quadrant::Q2)),
            "q3" => Ok(BitPosition::Quadrant(Quadrant::Q3)),
            "q4" => Ok(BitPosition::Quadrant(Quadrant::Q4)),
            "exponent" => Ok(BitPosition::Exponent),
            "mantissa" => Ok(BitPosition::Mantissa),
            "sign" => Ok(BitPosition::Sign),
            other => Err(format!(
                "unknown bit stratum '{other}' (expected exact:<N>|q1..q4|exponent|mantissa|sign)"
            )),
        }
    }
}

/// How a faulty memory cell corrupts the bit it holds.
///
/// # Example
///
/// ```
/// use ftclip_fault::FaultModel;
///
/// let w = 0.5f32;
/// let corrupted = FaultModel::BitFlip.apply_to_word(w.to_bits(), 30);
/// assert!(f32::from_bits(corrupted) > 1e30); // MSB exponent flip explodes
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultModel {
    /// Transient upset: the stored bit is inverted (the paper's primary
    /// model, "random bit-flips are injected in the memory blocks").
    BitFlip,
    /// Permanent fault: the cell always reads 0.
    StuckAt0,
    /// Permanent fault: the cell always reads 1.
    StuckAt1,
    /// Transient upset restricted to one [`BitPosition`] stratum of the
    /// encoding: sampling draws only from the stratum's bits, the flip
    /// itself is an ordinary inversion. `BitFlipAt` models enter campaign
    /// fingerprints through their distinct [`Display`](std::fmt::Display)
    /// form (`bit-flip@exponent`, …), so the result store keeps every
    /// stratum's cells separate from the uniform model's.
    BitFlipAt(BitPosition),
}

impl FaultModel {
    /// Applies the fault to bit `bit` of an `f32` bit pattern.
    ///
    /// # Panics
    ///
    /// Panics if `bit > 31`.
    pub fn apply_to_word(self, word: u32, bit: u8) -> u32 {
        assert!(bit < 32, "bit index {bit} out of range");
        let mask = 1u32 << bit;
        match self {
            FaultModel::BitFlip | FaultModel::BitFlipAt(_) => word ^ mask,
            FaultModel::StuckAt0 => word & !mask,
            FaultModel::StuckAt1 => word | mask,
        }
    }

    /// Applies the fault to bit `bit` of an int8 byte pattern — the int8
    /// counterpart of [`FaultModel::apply_to_word`], used by the quantized
    /// inference path's weight injector.
    ///
    /// # Panics
    ///
    /// Panics if `bit > 7`.
    pub fn apply_to_byte(self, byte: u8, bit: u8) -> u8 {
        assert!(bit < 8, "bit index {bit} out of range for an int8 word");
        let mask = 1u8 << bit;
        match self {
            FaultModel::BitFlip | FaultModel::BitFlipAt(_) => byte ^ mask,
            FaultModel::StuckAt0 => byte & !mask,
            FaultModel::StuckAt1 => byte | mask,
        }
    }

    /// The bit-position stratum sampling is restricted to, `None` for the
    /// uniform (whole-word) models.
    pub fn bit_position(self) -> Option<BitPosition> {
        match self {
            FaultModel::BitFlipAt(pos) => Some(pos),
            _ => None,
        }
    }

    /// Applies the fault to an `f32` value, returning the corrupted value.
    ///
    /// # Panics
    ///
    /// Panics if `bit > 31`.
    pub fn apply(self, value: f32, bit: u8) -> f32 {
        f32::from_bits(self.apply_to_word(value.to_bits(), bit))
    }

    /// `true` when this fault can change a stored value (stuck-at faults on
    /// a bit that already has the stuck value are silent).
    pub fn corrupts(self, word: u32, bit: u8) -> bool {
        self.apply_to_word(word, bit) != word
    }
}

impl std::fmt::Display for FaultModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultModel::BitFlip => write!(f, "bit-flip"),
            FaultModel::StuckAt0 => write!(f, "stuck-at-0"),
            FaultModel::StuckAt1 => write!(f, "stuck-at-1"),
            // the uniform models' strings are pinned by existing store cache
            // keys; stratified models extend the grammar with an `@` suffix
            FaultModel::BitFlipAt(pos) => write!(f, "bit-flip@{pos}"),
        }
    }
}

impl std::str::FromStr for FaultModel {
    type Err = String;

    /// Parses the [`Display`](std::fmt::Display) names back — the encoding
    /// experiment spec files and campaign manifests use.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(stratum) = s.strip_prefix("bit-flip@") {
            return stratum.parse().map(FaultModel::BitFlipAt);
        }
        match s {
            "bit-flip" => Ok(FaultModel::BitFlip),
            "stuck-at-0" => Ok(FaultModel::StuckAt0),
            "stuck-at-1" => Ok(FaultModel::StuckAt1),
            other => Err(format!(
                "unknown fault model '{other}' \
                 (expected bit-flip|stuck-at-0|stuck-at-1|bit-flip@<stratum>)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_round_trip() {
        for model in [FaultModel::BitFlip, FaultModel::StuckAt0, FaultModel::StuckAt1] {
            assert_eq!(model.to_string().parse::<FaultModel>(), Ok(model));
        }
        assert!("gamma-ray".parse::<FaultModel>().is_err());
    }

    #[test]
    fn bit_flip_is_involutive() {
        let w = 0.123f32.to_bits();
        for bit in 0..32 {
            let once = FaultModel::BitFlip.apply_to_word(w, bit);
            assert_ne!(once, w);
            assert_eq!(FaultModel::BitFlip.apply_to_word(once, bit), w);
        }
    }

    #[test]
    fn stuck_at_is_idempotent() {
        let w = 0.75f32.to_bits();
        for bit in 0..32 {
            for model in [FaultModel::StuckAt0, FaultModel::StuckAt1] {
                let once = model.apply_to_word(w, bit);
                assert_eq!(model.apply_to_word(once, bit), once);
            }
        }
    }

    #[test]
    fn msb_exponent_flip_explodes_small_weight() {
        // 0 → 1 flip at bit 30 of a typical small weight gives ~1e38·w
        let corrupted = FaultModel::BitFlip.apply(0.01, 30);
        assert!(corrupted > 1e30, "got {corrupted}");
    }

    #[test]
    fn sign_flip_negates() {
        assert_eq!(FaultModel::BitFlip.apply(1.5, 31), -1.5);
    }

    #[test]
    fn mantissa_lsb_flip_is_tiny() {
        let original = 1.0f32;
        let corrupted = FaultModel::BitFlip.apply(original, 0);
        assert!((corrupted - original).abs() < 1e-6);
        assert_ne!(corrupted, original);
    }

    #[test]
    fn stuck_at_can_be_silent() {
        let w = 0u32; // all bits zero
        assert!(!FaultModel::StuckAt0.corrupts(w, 5));
        assert!(FaultModel::StuckAt1.corrupts(w, 5));
    }

    #[test]
    fn bit_location_offset_roundtrip() {
        for offset in [0usize, 31, 32, 33, 1000, 12345] {
            let loc = BitLocation::from_bit_offset(offset);
            assert_eq!(loc.to_bit_offset(), offset);
            assert!(loc.bit < 32);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bit_32() {
        FaultModel::BitFlip.apply_to_word(0, 32);
    }

    #[test]
    fn stratified_display_names_round_trip() {
        let strata = [
            BitPosition::Exact(0),
            BitPosition::Exact(30),
            BitPosition::Quadrant(Quadrant::Q1),
            BitPosition::Quadrant(Quadrant::Q4),
            BitPosition::Exponent,
            BitPosition::Mantissa,
            BitPosition::Sign,
        ];
        for pos in strata {
            let model = FaultModel::BitFlipAt(pos);
            assert_eq!(model.to_string().parse::<FaultModel>(), Ok(model));
        }
        assert_eq!(FaultModel::BitFlipAt(BitPosition::Exponent).to_string(), "bit-flip@exponent");
        assert_eq!(FaultModel::BitFlipAt(BitPosition::Exact(7)).to_string(), "bit-flip@exact:7");
        assert_eq!(FaultModel::BitFlipAt(BitPosition::Quadrant(Quadrant::Q2)).to_string(), "bit-flip@q2");
        assert!("bit-flip@exact:32".parse::<FaultModel>().is_err());
        assert!("bit-flip@nibble".parse::<FaultModel>().is_err());
    }

    #[test]
    fn uniform_display_strings_are_pinned() {
        // these strings enter store cell fingerprints; moving them orphans
        // every existing cache directory
        assert_eq!(FaultModel::BitFlip.to_string(), "bit-flip");
        assert_eq!(FaultModel::StuckAt0.to_string(), "stuck-at-0");
        assert_eq!(FaultModel::StuckAt1.to_string(), "stuck-at-1");
    }

    #[test]
    fn f32_strata_cover_the_ieee_fields() {
        assert_eq!(BitPosition::Sign.bits(32), vec![31]);
        assert_eq!(BitPosition::Exponent.bits(32), (23..31).collect::<Vec<u8>>());
        assert_eq!(BitPosition::Mantissa.bits(32), (0..23).collect::<Vec<u8>>());
        // sign + exponent + mantissa partition the word
        let mut all: Vec<u8> = BitPosition::Sign.bits(32);
        all.extend(BitPosition::Exponent.bits(32));
        all.extend(BitPosition::Mantissa.bits(32));
        all.sort_unstable();
        assert_eq!(all, (0..32).collect::<Vec<u8>>());
        // quadrants partition it too
        let mut quads: Vec<u8> =
            Quadrant::ALL.iter().flat_map(|&q| BitPosition::Quadrant(q).bits(32)).collect();
        quads.sort_unstable();
        assert_eq!(quads, (0..32).collect::<Vec<u8>>());
        assert_eq!(BitPosition::Quadrant(Quadrant::Q4).bits(32), (24..32).collect::<Vec<u8>>());
    }

    #[test]
    fn int8_strata_have_no_exponent_field() {
        assert_eq!(BitPosition::Sign.bits(8), vec![7]);
        assert!(BitPosition::Exponent.bits(8).is_empty());
        assert_eq!(BitPosition::Mantissa.bits(8), (0..7).collect::<Vec<u8>>());
        assert_eq!(BitPosition::Quadrant(Quadrant::Q1).bits(8), vec![0, 1]);
        assert_eq!(BitPosition::Quadrant(Quadrant::Q4).bits(8), vec![6, 7]);
        assert_eq!(BitPosition::Exact(7).bits(8), vec![7]);
        assert!(BitPosition::Exact(8).bits(8).is_empty());
        assert_eq!(BitPosition::Exact(8).bits(32), vec![8]);
    }

    #[test]
    fn byte_flips_are_involutive_and_stuck_at_idempotent() {
        let b = 0b0101_1010u8;
        for bit in 0..8 {
            let once = FaultModel::BitFlip.apply_to_byte(b, bit);
            assert_ne!(once, b);
            assert_eq!(FaultModel::BitFlip.apply_to_byte(once, bit), b);
            let strat = FaultModel::BitFlipAt(BitPosition::Sign);
            assert_eq!(strat.apply_to_byte(strat.apply_to_byte(b, bit), bit), b);
            for model in [FaultModel::StuckAt0, FaultModel::StuckAt1] {
                let once = model.apply_to_byte(b, bit);
                assert_eq!(model.apply_to_byte(once, bit), once);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range for an int8 word")]
    fn byte_rejects_bit_8() {
        FaultModel::BitFlip.apply_to_byte(0, 8);
    }
}
