//! Fault models on IEEE-754 single-precision words.

/// The position of one faulty bit inside a parameter memory.
///
/// `word` indexes `f32` words within the [`crate::MemoryMap`] address space;
/// `bit` indexes bits within the word, 0 = least-significant mantissa bit,
/// 31 = sign. Bit 30 is the most-significant exponent bit — the flip the
/// paper identifies as the accuracy killer (§III: "bit-flips from 0 to 1 at
/// MSB locations … result in them having higher magnitudes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitLocation {
    /// Index of the `f32` word in the mapped address space.
    pub word: usize,
    /// Bit index within the word (0 = LSB of the mantissa, 31 = sign).
    pub bit: u8,
}

impl BitLocation {
    /// Converts a flat bit offset (as produced by
    /// [`crate::sample_bit_positions`]) into a word/bit pair.
    pub fn from_bit_offset(offset: usize) -> Self {
        BitLocation { word: offset / 32, bit: (offset % 32) as u8 }
    }

    /// The flat bit offset of this location.
    pub fn to_bit_offset(self) -> usize {
        self.word * 32 + self.bit as usize
    }
}

/// How a faulty memory cell corrupts the bit it holds.
///
/// # Example
///
/// ```
/// use ftclip_fault::FaultModel;
///
/// let w = 0.5f32;
/// let corrupted = FaultModel::BitFlip.apply_to_word(w.to_bits(), 30);
/// assert!(f32::from_bits(corrupted) > 1e30); // MSB exponent flip explodes
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultModel {
    /// Transient upset: the stored bit is inverted (the paper's primary
    /// model, "random bit-flips are injected in the memory blocks").
    BitFlip,
    /// Permanent fault: the cell always reads 0.
    StuckAt0,
    /// Permanent fault: the cell always reads 1.
    StuckAt1,
}

impl FaultModel {
    /// Applies the fault to bit `bit` of an `f32` bit pattern.
    ///
    /// # Panics
    ///
    /// Panics if `bit > 31`.
    pub fn apply_to_word(self, word: u32, bit: u8) -> u32 {
        assert!(bit < 32, "bit index {bit} out of range");
        let mask = 1u32 << bit;
        match self {
            FaultModel::BitFlip => word ^ mask,
            FaultModel::StuckAt0 => word & !mask,
            FaultModel::StuckAt1 => word | mask,
        }
    }

    /// Applies the fault to an `f32` value, returning the corrupted value.
    ///
    /// # Panics
    ///
    /// Panics if `bit > 31`.
    pub fn apply(self, value: f32, bit: u8) -> f32 {
        f32::from_bits(self.apply_to_word(value.to_bits(), bit))
    }

    /// `true` when this fault can change a stored value (stuck-at faults on
    /// a bit that already has the stuck value are silent).
    pub fn corrupts(self, word: u32, bit: u8) -> bool {
        self.apply_to_word(word, bit) != word
    }
}

impl std::fmt::Display for FaultModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultModel::BitFlip => write!(f, "bit-flip"),
            FaultModel::StuckAt0 => write!(f, "stuck-at-0"),
            FaultModel::StuckAt1 => write!(f, "stuck-at-1"),
        }
    }
}

impl std::str::FromStr for FaultModel {
    type Err = String;

    /// Parses the [`Display`](std::fmt::Display) names back — the encoding
    /// experiment spec files and campaign manifests use.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "bit-flip" => Ok(FaultModel::BitFlip),
            "stuck-at-0" => Ok(FaultModel::StuckAt0),
            "stuck-at-1" => Ok(FaultModel::StuckAt1),
            other => Err(format!("unknown fault model '{other}' (expected bit-flip|stuck-at-0|stuck-at-1)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_round_trip() {
        for model in [FaultModel::BitFlip, FaultModel::StuckAt0, FaultModel::StuckAt1] {
            assert_eq!(model.to_string().parse::<FaultModel>(), Ok(model));
        }
        assert!("gamma-ray".parse::<FaultModel>().is_err());
    }

    #[test]
    fn bit_flip_is_involutive() {
        let w = 0.123f32.to_bits();
        for bit in 0..32 {
            let once = FaultModel::BitFlip.apply_to_word(w, bit);
            assert_ne!(once, w);
            assert_eq!(FaultModel::BitFlip.apply_to_word(once, bit), w);
        }
    }

    #[test]
    fn stuck_at_is_idempotent() {
        let w = 0.75f32.to_bits();
        for bit in 0..32 {
            for model in [FaultModel::StuckAt0, FaultModel::StuckAt1] {
                let once = model.apply_to_word(w, bit);
                assert_eq!(model.apply_to_word(once, bit), once);
            }
        }
    }

    #[test]
    fn msb_exponent_flip_explodes_small_weight() {
        // 0 → 1 flip at bit 30 of a typical small weight gives ~1e38·w
        let corrupted = FaultModel::BitFlip.apply(0.01, 30);
        assert!(corrupted > 1e30, "got {corrupted}");
    }

    #[test]
    fn sign_flip_negates() {
        assert_eq!(FaultModel::BitFlip.apply(1.5, 31), -1.5);
    }

    #[test]
    fn mantissa_lsb_flip_is_tiny() {
        let original = 1.0f32;
        let corrupted = FaultModel::BitFlip.apply(original, 0);
        assert!((corrupted - original).abs() < 1e-6);
        assert_ne!(corrupted, original);
    }

    #[test]
    fn stuck_at_can_be_silent() {
        let w = 0u32; // all bits zero
        assert!(!FaultModel::StuckAt0.corrupts(w, 5));
        assert!(FaultModel::StuckAt1.corrupts(w, 5));
    }

    #[test]
    fn bit_location_offset_roundtrip() {
        for offset in [0usize, 31, 32, 33, 1000, 12345] {
            let loc = BitLocation::from_bit_offset(offset);
            assert_eq!(loc.to_bit_offset(), offset);
            assert!(loc.bit < 32);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bit_32() {
        FaultModel::BitFlip.apply_to_word(0, 32);
    }
}
