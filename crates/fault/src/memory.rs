//! Linear address space over the parameters selected for injection.

use ftclip_nn::{ParamKind, Sequential};

/// Which parameter memories a fault campaign corrupts.
///
/// The paper's whole-network experiments (Figs. 1b, 7, 8) use
/// [`InjectionTarget::AllWeights`]; the per-layer sensitivity analysis of
/// Fig. 3 uses [`InjectionTarget::Layer`]. The bias variants are ablations
/// beyond the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectionTarget {
    /// Weight tensors of every computational layer (the paper's model:
    /// faults live in the weight memory).
    AllWeights,
    /// Weights *and* biases of every computational layer.
    AllParams,
    /// Weight tensor of the computational layer at this network layer index
    /// (use [`Sequential::layer_index_by_name`] to resolve `"CONV-5"` etc.).
    Layer(usize),
    /// Bias tensors only (ablation).
    Biases,
}

impl std::fmt::Display for InjectionTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InjectionTarget::AllWeights => write!(f, "all-weights"),
            InjectionTarget::AllParams => write!(f, "all-params"),
            InjectionTarget::Layer(i) => write!(f, "layer-{i}"),
            InjectionTarget::Biases => write!(f, "biases"),
        }
    }
}

/// One contiguous run of `f32` words inside the mapped address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Network layer index owning the parameter.
    pub layer: usize,
    /// Weight or bias.
    pub kind: ParamKind,
    /// First word of the region in the global address space.
    pub offset: usize,
    /// Length of the region in words.
    pub words: usize,
}

/// A read-only map from a flat `f32`-word address space onto the parameter
/// tensors a target selects.
///
/// The map is built once per campaign; fault positions sampled in
/// `[0, total_bits())` are resolved back to `(layer, kind, word-in-tensor)`
/// through [`MemoryMap::locate`].
///
/// # Example
///
/// ```
/// use ftclip_fault::{InjectionTarget, MemoryMap};
/// use ftclip_nn::{Layer, Sequential};
///
/// let net = Sequential::new(vec![Layer::linear(4, 2, 0), Layer::relu()]);
/// let map = MemoryMap::build(&net, InjectionTarget::AllWeights);
/// assert_eq!(map.total_words(), 8); // 4×2 weights; biases excluded
/// assert_eq!(map.total_bits(), 8 * 32);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryMap {
    regions: Vec<Region>,
    total_words: usize,
}

impl MemoryMap {
    /// Builds the address space for `target` over `net`.
    ///
    /// # Panics
    ///
    /// Panics if `target` is [`InjectionTarget::Layer`] with an index that is
    /// not a computational layer of `net`.
    pub fn build(net: &Sequential, target: InjectionTarget) -> Self {
        let mut regions = Vec::new();
        let mut offset = 0usize;
        net.visit_params(&mut |layer, kind, values, _| {
            let selected = match target {
                InjectionTarget::AllWeights => kind == ParamKind::Weight,
                InjectionTarget::AllParams => true,
                InjectionTarget::Layer(i) => layer == i && kind == ParamKind::Weight,
                InjectionTarget::Biases => kind == ParamKind::Bias,
            };
            if selected {
                regions.push(Region { layer, kind, offset, words: values.len() });
                offset += values.len();
            }
        });
        if let InjectionTarget::Layer(i) = target {
            assert!(!regions.is_empty(), "layer {i} has no weight tensor (not a computational layer?)");
        }
        MemoryMap { regions, total_words: offset }
    }

    /// The regions of the address space, in address order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Total mapped `f32` words.
    pub fn total_words(&self) -> usize {
        self.total_words
    }

    /// Total mapped bits (`32 ×` words) — the denominator of the paper's
    /// fault rate.
    pub fn total_bits(&self) -> usize {
        self.total_words * 32
    }

    /// Resolves a global word index to `(layer, kind, word_within_tensor)`.
    ///
    /// # Panics
    ///
    /// Panics if `word` is outside the address space.
    pub fn locate(&self, word: usize) -> (usize, ParamKind, usize) {
        assert!(word < self.total_words, "word {word} outside address space of {} words", self.total_words);
        // regions are sorted by offset; binary search for the containing one
        let idx = match self.regions.binary_search_by(|r| r.offset.cmp(&word)) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let r = &self.regions[idx];
        debug_assert!(word >= r.offset && word < r.offset + r.words);
        (r.layer, r.kind, word - r.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclip_nn::Layer;

    fn net() -> Sequential {
        Sequential::new(vec![
            Layer::conv2d(1, 2, 3, 1, 1, 0), // weights 2×9=18, bias 2
            Layer::relu(),
            Layer::flatten(),
            Layer::linear(8, 4, 1), // weights 32, bias 4
        ])
    }

    #[test]
    fn all_weights_excludes_biases() {
        let map = MemoryMap::build(&net(), InjectionTarget::AllWeights);
        assert_eq!(map.total_words(), 18 + 32);
        assert_eq!(map.regions().len(), 2);
        assert!(map.regions().iter().all(|r| r.kind == ParamKind::Weight));
    }

    #[test]
    fn all_params_includes_biases() {
        let map = MemoryMap::build(&net(), InjectionTarget::AllParams);
        assert_eq!(map.total_words(), 18 + 2 + 32 + 4);
        assert_eq!(map.regions().len(), 4);
    }

    #[test]
    fn single_layer_map() {
        let map = MemoryMap::build(&net(), InjectionTarget::Layer(3));
        assert_eq!(map.total_words(), 32);
        assert_eq!(map.regions()[0].layer, 3);
    }

    #[test]
    fn biases_only() {
        let map = MemoryMap::build(&net(), InjectionTarget::Biases);
        assert_eq!(map.total_words(), 6);
    }

    #[test]
    fn locate_resolves_across_regions() {
        let map = MemoryMap::build(&net(), InjectionTarget::AllWeights);
        assert_eq!(map.locate(0), (0, ParamKind::Weight, 0));
        assert_eq!(map.locate(17), (0, ParamKind::Weight, 17));
        assert_eq!(map.locate(18), (3, ParamKind::Weight, 0));
        assert_eq!(map.locate(49), (3, ParamKind::Weight, 31));
    }

    #[test]
    #[should_panic(expected = "outside address space")]
    fn locate_rejects_out_of_range() {
        MemoryMap::build(&net(), InjectionTarget::AllWeights).locate(50);
    }

    #[test]
    #[should_panic(expected = "no weight tensor")]
    fn layer_target_requires_computational_layer() {
        MemoryMap::build(&net(), InjectionTarget::Layer(1)); // layer 1 is ReLU
    }

    #[test]
    fn display_names() {
        assert_eq!(InjectionTarget::AllWeights.to_string(), "all-weights");
        assert_eq!(InjectionTarget::Layer(5).to_string(), "layer-5");
    }
}
