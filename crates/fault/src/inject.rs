//! Applying and undoing fault sets.

use ftclip_nn::{ParamKind, Sequential};
use rand::Rng;

use crate::{sample_bit_positions, BitLocation, FaultModel, InjectionTarget, MemoryMap};

/// A sampled-but-not-yet-applied set of faults for one network.
///
/// Separating sampling from application lets callers inspect the fault set
/// (e.g. the Fig. 3 analysis reports which layer was hit) and re-apply the
/// same faults to different network variants (the protected-vs-unprotected
/// comparisons use identical fault sets for both networks at a given seed).
#[derive(Debug, Clone)]
pub struct Injection {
    model: FaultModel,
    /// `(layer, kind, word_in_tensor, bit)` per fault, resolved against the
    /// memory map at sampling time.
    faults: Vec<(usize, ParamKind, usize, u8)>,
}

impl Injection {
    /// Samples a fault set over the parameters `target` selects, with
    /// independent per-bit probability `rate`.
    ///
    /// Stratified models ([`FaultModel::BitFlipAt`]) restrict sampling to
    /// their [`crate::BitPosition`] stratum: every *stratum* bit of every
    /// selected word is an independent Bernoulli trial at `rate`, bits
    /// outside the stratum are never drawn. The uniform models keep their
    /// historical whole-word sampling sequence bit-for-bit (same RNG
    /// consumption), so existing cached campaigns stay valid.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]` or `target` names a
    /// non-computational layer.
    pub fn sample<R: Rng + ?Sized>(
        net: &Sequential,
        target: InjectionTarget,
        model: FaultModel,
        rate: f64,
        rng: &mut R,
    ) -> Self {
        let map = MemoryMap::build(net, target);
        let faults = match model.bit_position() {
            None => sample_bit_positions(map.total_bits(), rate, rng)
                .into_iter()
                .map(|p| {
                    let loc = BitLocation::from_bit_offset(p);
                    let (layer, kind, word) = map.locate(loc.word);
                    (layer, kind, word, loc.bit)
                })
                .collect(),
            Some(pos) => {
                // sample over the reduced (word × stratum-bit) space: flat
                // position p maps word-major onto (word, stratum_bits[p %
                // |stratum|]), reusing the geometric-skip sampler so the
                // cost stays O(faults) regardless of stratum size
                let stratum = pos.bits(32);
                if stratum.is_empty() {
                    Vec::new()
                } else {
                    sample_bit_positions(map.total_words() * stratum.len(), rate, rng)
                        .into_iter()
                        .map(|p| {
                            let (layer, kind, word) = map.locate(p / stratum.len());
                            (layer, kind, word, stratum[p % stratum.len()])
                        })
                        .collect()
                }
            }
        };
        Injection { model, faults }
    }

    /// Builds an injection from explicit fault locations (targeted
    /// experiments and tests).
    pub fn from_faults(model: FaultModel, faults: Vec<(usize, ParamKind, usize, u8)>) -> Self {
        Injection { model, faults }
    }

    /// Number of sampled faults.
    pub fn fault_count(&self) -> usize {
        self.faults.len()
    }

    /// The fault model.
    pub fn model(&self) -> FaultModel {
        self.model
    }

    /// The sampled faults as `(layer, kind, word_in_tensor, bit)`.
    pub fn faults(&self) -> &[(usize, ParamKind, usize, u8)] {
        &self.faults
    }

    /// The smallest network layer index any fault touches, or `None` for an
    /// empty fault set.
    ///
    /// Layer indices follow [`Sequential::visit_params`] (positions within
    /// the layer list — see `Sequential::param_layer_indices` for the
    /// contract), so every activation *entering* that layer is bit-identical
    /// to the clean network's: the returned index is the deepest valid
    /// suffix cut for re-evaluating this injection without redoing the
    /// clean prefix.
    pub fn earliest_faulted_layer(&self) -> Option<usize> {
        self.faults.iter().map(|&(layer, ..)| layer).min()
    }

    /// Applies the faults to `net`, returning a handle that can restore the
    /// original bits exactly.
    ///
    /// # Panics
    ///
    /// Panics if a fault's `(layer, kind, word)` does not exist in `net`
    /// (i.e. the injection was sampled against a different architecture).
    pub fn apply(&self, net: &mut Sequential) -> AppliedInjection {
        let mut saved = Vec::with_capacity(self.faults.len());
        for &(layer, kind, word, bit) in &self.faults {
            let mut hit = false;
            net.visit_params_mut(&mut |l, k, values, _| {
                if l == layer && k == kind {
                    let data = values.data_mut();
                    assert!(word < data.len(), "fault word {word} outside tensor of {} words", data.len());
                    let original = data[word].to_bits();
                    data[word] = f32::from_bits(self.model.apply_to_word(original, bit));
                    saved.push((layer, kind, word, original));
                    hit = true;
                }
            });
            assert!(hit, "no parameter tensor at layer {layer} kind {kind}");
        }
        AppliedInjection { saved }
    }
}

/// Undo handle returned by [`Injection::apply`].
///
/// Dropping the handle without calling [`AppliedInjection::undo`] leaves the
/// faults in place (useful when the faulted network itself is the artifact).
#[derive(Debug)]
#[must_use = "hold the handle and call undo() to restore the network"]
pub struct AppliedInjection {
    /// `(layer, kind, word, original_bits)` per fault, in application order.
    saved: Vec<(usize, ParamKind, usize, u32)>,
}

impl AppliedInjection {
    /// Number of words that were actually modified.
    pub fn modified_count(&self) -> usize {
        self.saved.len()
    }

    /// Restores every corrupted word to its original bit pattern.
    ///
    /// Restoration happens in reverse application order so overlapping
    /// faults (two bits of one word) unwind correctly.
    ///
    /// # Panics
    ///
    /// Panics if `net` is not the network the faults were applied to
    /// (architecture mismatch).
    pub fn undo(self, net: &mut Sequential) {
        for &(layer, kind, word, original) in self.saved.iter().rev() {
            net.visit_params_mut(&mut |l, k, values, _| {
                if l == layer && k == kind {
                    values.data_mut()[word] = f32::from_bits(original);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclip_nn::Layer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net() -> Sequential {
        Sequential::new(vec![
            Layer::conv2d(1, 2, 3, 1, 1, 5),
            Layer::relu(),
            Layer::flatten(),
            Layer::linear(2 * 16, 4, 6),
        ])
    }

    fn weights_snapshot(net: &Sequential) -> Vec<u32> {
        let mut out = Vec::new();
        net.visit_params(&mut |_, _, v, _| out.extend(v.data().iter().map(|x| x.to_bits())));
        out
    }

    #[test]
    fn apply_then_undo_is_bit_exact() {
        let mut n = net();
        let before = weights_snapshot(&n);
        let mut rng = StdRng::seed_from_u64(11);
        let inj = Injection::sample(&n, InjectionTarget::AllWeights, FaultModel::BitFlip, 0.05, &mut rng);
        assert!(inj.fault_count() > 0, "rate 0.05 over ~5k bits must hit something");
        let handle = inj.apply(&mut n);
        assert_ne!(weights_snapshot(&n), before, "faults must change the memory");
        handle.undo(&mut n);
        assert_eq!(weights_snapshot(&n), before, "undo must restore bit-exactly");
    }

    #[test]
    fn overlapping_faults_unwind_correctly() {
        // two bit flips in the same word
        let mut n = net();
        let before = weights_snapshot(&n);
        let inj = Injection::from_faults(
            FaultModel::BitFlip,
            vec![(0, ParamKind::Weight, 3, 30), (0, ParamKind::Weight, 3, 31)],
        );
        let handle = inj.apply(&mut n);
        assert_eq!(handle.modified_count(), 2);
        handle.undo(&mut n);
        assert_eq!(weights_snapshot(&n), before);
    }

    #[test]
    fn same_seed_same_faults() {
        let n = net();
        let a = Injection::sample(
            &n,
            InjectionTarget::AllWeights,
            FaultModel::BitFlip,
            0.01,
            &mut StdRng::seed_from_u64(3),
        );
        let b = Injection::sample(
            &n,
            InjectionTarget::AllWeights,
            FaultModel::BitFlip,
            0.01,
            &mut StdRng::seed_from_u64(3),
        );
        assert_eq!(a.faults(), b.faults());
    }

    #[test]
    fn same_faults_apply_to_clipped_variant() {
        // The protected-vs-unprotected comparison relies on replaying one
        // fault set on an architecturally-identical network.
        let mut plain = net();
        let mut clipped = plain.clone();
        clipped.convert_to_clipped(&[1.0]);
        let inj = Injection::sample(
            &plain,
            InjectionTarget::AllWeights,
            FaultModel::BitFlip,
            0.02,
            &mut StdRng::seed_from_u64(8),
        );
        let h1 = inj.apply(&mut plain);
        let h2 = inj.apply(&mut clipped);
        // same words corrupted in both
        let snap = |n: &Sequential| weights_snapshot(n);
        assert_eq!(snap(&plain), snap(&clipped));
        h1.undo(&mut plain);
        h2.undo(&mut clipped);
    }

    #[test]
    fn layer_target_only_touches_that_layer() {
        let mut n = net();
        let inj = Injection::sample(
            &n,
            InjectionTarget::Layer(3),
            FaultModel::BitFlip,
            1.0,
            &mut StdRng::seed_from_u64(1),
        );
        let before_conv: Vec<u32> = {
            let mut v = Vec::new();
            n.visit_params(&mut |l, k, t, _| {
                if l == 0 && k == ParamKind::Weight {
                    v.extend(t.data().iter().map(|x| x.to_bits()));
                }
            });
            v
        };
        let _handle = inj.apply(&mut n);
        let after_conv: Vec<u32> = {
            let mut v = Vec::new();
            n.visit_params(&mut |l, k, t, _| {
                if l == 0 && k == ParamKind::Weight {
                    v.extend(t.data().iter().map(|x| x.to_bits()));
                }
            });
            v
        };
        assert_eq!(before_conv, after_conv, "conv layer must be untouched");
    }

    #[test]
    fn earliest_faulted_layer_is_the_minimum() {
        let empty = Injection::from_faults(FaultModel::BitFlip, vec![]);
        assert_eq!(empty.earliest_faulted_layer(), None);
        let inj = Injection::from_faults(
            FaultModel::BitFlip,
            vec![(3, ParamKind::Weight, 0, 1), (0, ParamKind::Weight, 2, 5), (3, ParamKind::Bias, 1, 7)],
        );
        assert_eq!(inj.earliest_faulted_layer(), Some(0));
        let n = net();
        let layer_only = Injection::sample(
            &n,
            InjectionTarget::Layer(3),
            FaultModel::BitFlip,
            0.5,
            &mut StdRng::seed_from_u64(2),
        );
        assert!(layer_only.fault_count() > 0);
        assert_eq!(layer_only.earliest_faulted_layer(), Some(3), "Layer target pins the cut");
    }

    #[test]
    fn stratified_sampling_stays_inside_the_stratum() {
        use crate::{BitPosition, Quadrant};
        let n = net();
        let cases = [
            (BitPosition::Exponent, (23..31).collect::<Vec<u8>>()),
            (BitPosition::Mantissa, (0..23).collect()),
            (BitPosition::Sign, vec![31]),
            (BitPosition::Quadrant(Quadrant::Q2), (8..16).collect()),
            (BitPosition::Exact(30), vec![30]),
        ];
        for (pos, allowed) in cases {
            let inj = Injection::sample(
                &n,
                InjectionTarget::AllWeights,
                FaultModel::BitFlipAt(pos),
                0.2,
                &mut StdRng::seed_from_u64(9),
            );
            assert!(inj.fault_count() > 0, "{pos:?}: rate 0.2 must hit something");
            for &(_, _, _, bit) in inj.faults() {
                assert!(allowed.contains(&bit), "{pos:?} drew bit {bit} outside {allowed:?}");
            }
        }
    }

    #[test]
    fn stratified_sampling_is_seed_deterministic_and_applies_cleanly() {
        use crate::BitPosition;
        let mut n = net();
        let before = weights_snapshot(&n);
        let model = FaultModel::BitFlipAt(BitPosition::Exponent);
        let sample = |seed: u64| {
            Injection::sample(&n, InjectionTarget::AllWeights, model, 0.1, &mut StdRng::seed_from_u64(seed))
        };
        assert_eq!(sample(5).faults(), sample(5).faults());
        let inj = sample(5);
        let handle = inj.apply(&mut n);
        assert_ne!(weights_snapshot(&n), before);
        handle.undo(&mut n);
        assert_eq!(weights_snapshot(&n), before);
    }

    #[test]
    fn uniform_sampling_sequence_is_unchanged_by_the_stratified_path() {
        // the uniform model must keep its historical RNG consumption: the
        // same seed must produce the same faults as it always has (pinned
        // indirectly by the store's cached campaigns)
        let n = net();
        let inj = Injection::sample(
            &n,
            InjectionTarget::AllWeights,
            FaultModel::BitFlip,
            0.01,
            &mut StdRng::seed_from_u64(3),
        );
        let again = Injection::sample(
            &n,
            InjectionTarget::AllWeights,
            FaultModel::BitFlip,
            0.01,
            &mut StdRng::seed_from_u64(3),
        );
        assert_eq!(inj.faults(), again.faults());
        assert!(inj.faults().iter().any(|&(_, _, _, bit)| bit < 32));
    }

    #[test]
    fn empty_stratum_samples_no_faults() {
        use crate::BitPosition;
        let n = net();
        // Exact(40) is outside every supported encoding: empty stratum,
        // zero faults, campaigns hold clean accuracy by construction
        let inj = Injection::sample(
            &n,
            InjectionTarget::AllWeights,
            FaultModel::BitFlipAt(BitPosition::Exact(40)),
            1.0,
            &mut StdRng::seed_from_u64(1),
        );
        assert_eq!(inj.fault_count(), 0);
    }

    #[test]
    fn stuck_at_faults_apply() {
        let mut n = net();
        let inj = Injection::from_faults(FaultModel::StuckAt1, vec![(0, ParamKind::Weight, 0, 30)]);
        let handle = inj.apply(&mut n);
        let mut val = 0.0f32;
        n.visit_params(&mut |l, k, t, _| {
            if l == 0 && k == ParamKind::Weight {
                val = t.data()[0];
            }
        });
        assert!(
            val.abs() > 1e30 || val.is_infinite(),
            "stuck-at-1 on exponent MSB must explode, got {val}"
        );
        handle.undo(&mut n);
    }
}
