//! Exact Bernoulli-per-bit fault sampling.
//!
//! The paper's fault rate is a per-bit probability: every bit of the selected
//! weight memory is corrupted independently with probability `rate`. Naively
//! tossing a coin per bit costs O(bits) — prohibitive for campaigns that run
//! thousands of injections over multi-megabyte memories. Instead we sample
//! the *gaps* between faulty bits, which are geometrically distributed:
//! `gap = floor(ln(U) / ln(1 − rate))` for `U ~ Uniform(0,1)`. The resulting
//! fault set follows exactly the same distribution at O(faults) cost.

use rand::Rng;

/// Samples the positions of faulty bits in an address space of `n_bits`
/// bits, where each bit independently fails with probability `rate`.
///
/// Positions are returned in strictly increasing order.
///
/// # Panics
///
/// Panics unless `0 ≤ rate ≤ 1`.
///
/// # Example
///
/// ```
/// use ftclip_fault::sample_bit_positions;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let faults = sample_bit_positions(1_000_000, 1e-4, &mut rng);
/// // E[#faults] = 100; loose 10σ sanity bounds
/// assert!(faults.len() > 20 && faults.len() < 300);
/// ```
pub fn sample_bit_positions<R: Rng + ?Sized>(n_bits: usize, rate: f64, rng: &mut R) -> Vec<usize> {
    assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0, 1], got {rate}");
    if rate == 0.0 || n_bits == 0 {
        return Vec::new();
    }
    if rate >= 1.0 {
        return (0..n_bits).collect();
    }
    let ln_q = (1.0 - rate).ln_1p_neg(); // ln(1 - rate), stable for tiny rates
    let mut out = Vec::new();
    let mut cursor = 0usize;
    loop {
        // geometric gap: number of healthy bits before the next faulty one
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let gap = (u.ln() / ln_q).floor();
        if !gap.is_finite() || gap >= (n_bits - cursor) as f64 {
            break;
        }
        cursor += gap as usize;
        out.push(cursor);
        cursor += 1;
        if cursor >= n_bits {
            break;
        }
    }
    out
}

/// Expected number of faults for a memory of `n_bits` bits at `rate`.
pub fn expected_fault_count(n_bits: usize, rate: f64) -> f64 {
    n_bits as f64 * rate
}

/// Derives the RNG seed of campaign run `(rate_index, repetition)` from a
/// base seed, using the SplitMix64 finalizer so adjacent runs are
/// decorrelated while each run stays individually reproducible.
pub fn derive_seed(base: u64, rate_index: usize, repetition: usize) -> u64 {
    let mut z = base ^ ((rate_index as u64) << 32 | repetition as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `ln(1 - x)` computed stably for small `x` (as `ln_1p(-x)`).
trait Ln1pNeg {
    fn ln_1p_neg(self) -> f64;
}

impl Ln1pNeg for f64 {
    fn ln_1p_neg(self) -> f64 {
        // self is already (1 - rate); use ln_1p on (self - 1) = -rate
        (self - 1.0).ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_rate_gives_no_faults() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sample_bit_positions(1000, 0.0, &mut rng).is_empty());
    }

    #[test]
    fn rate_one_hits_every_bit() {
        let mut rng = StdRng::seed_from_u64(1);
        let faults = sample_bit_positions(10, 1.0, &mut rng);
        assert_eq!(faults, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn positions_strictly_increasing_and_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let faults = sample_bit_positions(100_000, 1e-3, &mut rng);
        for w in faults.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(faults.iter().all(|&p| p < 100_000));
    }

    #[test]
    fn empirical_rate_matches_requested() {
        // Mean over many trials should approach n·rate.
        let n_bits = 200_000usize;
        let rate = 5e-4;
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 50;
        let total: usize = (0..trials).map(|_| sample_bit_positions(n_bits, rate, &mut rng).len()).sum();
        let mean = total as f64 / trials as f64;
        let expect = expected_fault_count(n_bits, rate);
        // σ ≈ sqrt(n·rate) = 10; mean of 50 trials has σ ≈ 1.4; allow 5σ
        assert!((mean - expect).abs() < 7.0, "mean {mean} vs expected {expect}");
    }

    #[test]
    fn tiny_rates_are_numerically_stable() {
        let mut rng = StdRng::seed_from_u64(4);
        // 1e-8 rate over 1e6 bits: expect 0.01 faults, i.e. almost always none
        let mut total = 0usize;
        for _ in 0..100 {
            total += sample_bit_positions(1_000_000, 1e-8, &mut rng).len();
        }
        assert!(total < 20, "far too many faults at 1e-8: {total}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = sample_bit_positions(10_000, 1e-2, &mut StdRng::seed_from_u64(9));
        let b = sample_bit_positions(10_000, 1e-2, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let c = sample_bit_positions(10_000, 1e-2, &mut StdRng::seed_from_u64(10));
        assert_ne!(a, c);
    }

    #[test]
    fn derive_seed_decorrelates() {
        let s1 = derive_seed(42, 0, 0);
        let s2 = derive_seed(42, 0, 1);
        let s3 = derive_seed(42, 1, 0);
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
        assert_ne!(s2, s3);
        // reproducible
        assert_eq!(derive_seed(42, 3, 7), derive_seed(42, 3, 7));
    }

    #[test]
    #[should_panic(expected = "fault rate")]
    fn rejects_negative_rate() {
        sample_bit_positions(10, -0.1, &mut StdRng::seed_from_u64(0));
    }
}
