//! Accuracy-distribution statistics (box-plot-ready) and the confidence
//! intervals behind adaptive (sequential-sampling) campaigns.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Five-number summary plus mean and standard deviation of a sample of
/// accuracies — everything the paper's box plots (Figs. 7b/c, 8b/c) display.
///
/// # Example
///
/// ```
/// use ftclip_fault::Summary;
///
/// let s = Summary::from_samples(&[0.1, 0.2, 0.3, 0.4, 0.5]).unwrap();
/// assert!((s.median - 0.3).abs() < 1e-12);
/// assert!((s.mean - 0.3).abs() < 1e-12);
/// assert_eq!(s.min, 0.1);
/// assert_eq!(s.max, 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for a single sample).
    pub std: f64,
    /// Minimum (the "worst case" the paper highlights in §V-B).
    pub min: f64,
    /// Lower quartile (25th percentile, linear interpolation).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Upper quartile (75th percentile, linear interpolation).
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a non-empty sample.
    ///
    /// Returns `None` for an empty slice or one containing NaN.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() || samples.iter().any(|x| x.is_nan()) {
            return None;
        }
        let n = samples.len();
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let std = if n > 1 {
            (sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64).sqrt()
        } else {
            0.0
        };
        Some(Summary {
            n,
            mean,
            std,
            min: sorted[0],
            q1: percentile(&sorted, 0.25),
            median: percentile(&sorted, 0.5),
            q3: percentile(&sorted, 0.75),
            max: sorted[n - 1],
        })
    }

    /// Interquartile range (`q3 − q1`).
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} std={:.4} min={:.4} q1={:.4} med={:.4} q3={:.4} max={:.4}",
            self.n, self.mean, self.std, self.min, self.q1, self.median, self.q3, self.max
        )
    }
}

/// A two-sided confidence interval over a sample mean.
///
/// Produced by [`wilson_interval`] and [`bootstrap_interval`]; the adaptive
/// campaign executor stops sampling a rate once [`half_width`] drops below
/// the stopping rule's target.
///
/// [`half_width`]: ConfidenceInterval::half_width
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl ConfidenceInterval {
    /// Half of the interval's width — the "±ε" the stopping rule compares
    /// against.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }

    /// The interval midpoint.
    pub fn center(&self) -> f64 {
        (self.hi + self.lo) / 2.0
    }
}

/// Wilson score interval for a proportion, treating the sample mean of
/// `samples` (values in `[0, 1]`) as an observed success fraction over
/// `samples.len()` trials at critical value `z` (1.96 ≈ 95%).
///
/// This is the binomial view of campaign accuracy — appropriate when each
/// repetition is scored as a pass/fail trial. Unlike the normal
/// approximation it never collapses to zero width at p̂ ∈ {0, 1} and stays
/// inside `[0, 1]` by construction.
///
/// Returns `None` for an empty sample, any NaN sample, or a non-finite `z`.
pub fn wilson_interval(samples: &[f64], z: f64) -> Option<ConfidenceInterval> {
    if samples.is_empty() || samples.iter().any(|x| x.is_nan()) || !z.is_finite() {
        return None;
    }
    let n = samples.len() as f64;
    let p = (samples.iter().sum::<f64>() / n).clamp(0.0, 1.0);
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    Some(ConfidenceInterval { lo: (center - half).max(0.0), hi: (center + half).min(1.0) })
}

/// Percentile-bootstrap confidence interval of the sample mean:
/// `resamples` means of with-replacement resamples, bracketed at the
/// `confidence` level (e.g. `0.95`).
///
/// The resampler is a deterministic function of `(samples, resamples,
/// confidence, seed)` — the same inputs always yield the same interval, on
/// every platform and at every thread count, which is what lets the
/// adaptive campaign executors make identical stopping decisions in serial
/// and parallel runs. A zero-variance sample yields a zero-width interval.
///
/// Returns `None` for an empty sample, any NaN sample, `resamples == 0`,
/// or `confidence` outside `(0, 1)`.
pub fn bootstrap_interval(
    samples: &[f64],
    resamples: usize,
    confidence: f64,
    seed: u64,
) -> Option<ConfidenceInterval> {
    if samples.is_empty()
        || samples.iter().any(|x| x.is_nan())
        || resamples == 0
        || !(confidence > 0.0 && confidence < 1.0)
    {
        return None;
    }
    let n = samples.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut means: Vec<f64> = (0..resamples)
        .map(|_| (0..n).map(|_| samples[rng.gen_range(0..n)]).sum::<f64>() / n as f64)
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
    let alpha = (1.0 - confidence) / 2.0;
    Some(ConfidenceInterval {
        lo: percentile(&means, alpha),
        hi: percentile(&means, 1.0 - alpha),
    })
}

/// Linear-interpolation percentile of an already-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = p * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(Summary::from_samples(&[]).is_none());
    }

    #[test]
    fn nan_is_none() {
        assert!(Summary::from_samples(&[0.5, f64::NAN]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = Summary::from_samples(&[0.7]).unwrap();
        assert_eq!(s.mean, 0.7);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 0.7);
        assert_eq!(s.q1, 0.7);
        assert_eq!(s.max, 0.7);
    }

    #[test]
    fn quartiles_interpolate() {
        let s = Summary::from_samples(&[0.0, 1.0, 2.0, 3.0]).unwrap();
        assert!((s.q1 - 0.75).abs() < 1e-12);
        assert!((s.median - 1.5).abs() < 1e-12);
        assert!((s.q3 - 2.25).abs() < 1e-12);
    }

    #[test]
    fn order_invariant() {
        let a = Summary::from_samples(&[0.3, 0.1, 0.2]).unwrap();
        let b = Summary::from_samples(&[0.1, 0.2, 0.3]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn std_matches_known_value() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        // known sample std of this classic dataset is ~2.138
        assert!((s.std - 2.138).abs() < 0.01);
    }

    #[test]
    fn display_contains_all_fields() {
        let s = Summary::from_samples(&[0.5, 0.6]).unwrap();
        let txt = s.to_string();
        for key in ["mean", "min", "q1", "med", "q3", "max"] {
            assert!(txt.contains(key));
        }
    }

    // 50 successes in 100 trials as a sample of 50 ones and 50 zeros
    fn bernoulli(successes: usize, trials: usize) -> Vec<f64> {
        (0..trials).map(|i| if i < successes { 1.0 } else { 0.0 }).collect()
    }

    #[test]
    fn wilson_matches_hand_computed_values() {
        // textbook Wilson 95% interval for 50/100: (0.4038, 0.5962)
        let ci = wilson_interval(&bernoulli(50, 100), 1.96).unwrap();
        assert!((ci.lo - 0.4038).abs() < 1e-3, "lo = {}", ci.lo);
        assert!((ci.hi - 0.5962).abs() < 1e-3, "hi = {}", ci.hi);
        assert!((ci.half_width() - 0.0962).abs() < 1e-3);

        // and for 8/10: (0.4902, 0.9433) — asymmetric around p̂ = 0.8
        let ci = wilson_interval(&bernoulli(8, 10), 1.96).unwrap();
        assert!((ci.lo - 0.4902).abs() < 1e-3, "lo = {}", ci.lo);
        assert!((ci.hi - 0.9433).abs() < 1e-3, "hi = {}", ci.hi);
    }

    #[test]
    fn wilson_never_collapses_at_the_boundaries() {
        // p̂ = 1 with few samples must still report real uncertainty
        let ci = wilson_interval(&[1.0, 1.0, 1.0], 1.96).unwrap();
        assert!(ci.lo < 1.0 && ci.hi <= 1.0);
        assert!(ci.half_width() > 0.1, "n=3 at p̂=1 is far from certain");
    }

    #[test]
    fn wilson_rejects_degenerate_inputs() {
        assert!(wilson_interval(&[], 1.96).is_none());
        assert!(wilson_interval(&[0.5, f64::NAN], 1.96).is_none());
        assert!(wilson_interval(&[0.5], f64::INFINITY).is_none());
    }

    #[test]
    fn bootstrap_zero_variance_is_zero_width() {
        // every resample of a constant sample has the same mean — the
        // interval is exactly the point, hand-computable without an RNG
        let ci = bootstrap_interval(&[0.75; 5], 200, 0.95, 42).unwrap();
        assert_eq!((ci.lo, ci.hi), (0.75, 0.75));
        assert_eq!(ci.half_width(), 0.0);
        // a single sample behaves the same
        let ci = bootstrap_interval(&[0.3], 200, 0.95, 42).unwrap();
        assert_eq!((ci.lo, ci.hi), (0.3, 0.3));
    }

    #[test]
    fn bootstrap_is_deterministic_and_bounded_by_the_sample() {
        let samples = [0.1, 0.4, 0.5, 0.9, 0.95, 0.2];
        let a = bootstrap_interval(&samples, 500, 0.95, 7).unwrap();
        let b = bootstrap_interval(&samples, 500, 0.95, 7).unwrap();
        assert_eq!(a, b, "same inputs, same interval");
        // resampled means live inside [min, max] of the sample
        assert!(a.lo >= 0.1 && a.hi <= 0.95);
        assert!(a.lo <= a.center() && a.center() <= a.hi);
        // wider confidence must not shrink the interval
        let wide = bootstrap_interval(&samples, 500, 0.99, 7).unwrap();
        assert!(wide.half_width() >= a.half_width());
    }

    #[test]
    fn bootstrap_rejects_degenerate_inputs() {
        assert!(bootstrap_interval(&[], 100, 0.95, 0).is_none());
        assert!(bootstrap_interval(&[0.5, f64::NAN], 100, 0.95, 0).is_none());
        assert!(bootstrap_interval(&[0.5], 0, 0.95, 0).is_none());
        assert!(bootstrap_interval(&[0.5], 100, 1.0, 0).is_none());
        assert!(bootstrap_interval(&[0.5], 100, 0.0, 0).is_none());
    }
}
