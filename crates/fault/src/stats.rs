//! Accuracy-distribution statistics (box-plot-ready).

/// Five-number summary plus mean and standard deviation of a sample of
/// accuracies — everything the paper's box plots (Figs. 7b/c, 8b/c) display.
///
/// # Example
///
/// ```
/// use ftclip_fault::Summary;
///
/// let s = Summary::from_samples(&[0.1, 0.2, 0.3, 0.4, 0.5]).unwrap();
/// assert!((s.median - 0.3).abs() < 1e-12);
/// assert!((s.mean - 0.3).abs() < 1e-12);
/// assert_eq!(s.min, 0.1);
/// assert_eq!(s.max, 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for a single sample).
    pub std: f64,
    /// Minimum (the "worst case" the paper highlights in §V-B).
    pub min: f64,
    /// Lower quartile (25th percentile, linear interpolation).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Upper quartile (75th percentile, linear interpolation).
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of a non-empty sample.
    ///
    /// Returns `None` for an empty slice or one containing NaN.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() || samples.iter().any(|x| x.is_nan()) {
            return None;
        }
        let n = samples.len();
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let std = if n > 1 {
            (sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64).sqrt()
        } else {
            0.0
        };
        Some(Summary {
            n,
            mean,
            std,
            min: sorted[0],
            q1: percentile(&sorted, 0.25),
            median: percentile(&sorted, 0.5),
            q3: percentile(&sorted, 0.75),
            max: sorted[n - 1],
        })
    }

    /// Interquartile range (`q3 − q1`).
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} std={:.4} min={:.4} q1={:.4} med={:.4} q3={:.4} max={:.4}",
            self.n, self.mean, self.std, self.min, self.q1, self.median, self.q3, self.max
        )
    }
}

/// Linear-interpolation percentile of an already-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = p * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(Summary::from_samples(&[]).is_none());
    }

    #[test]
    fn nan_is_none() {
        assert!(Summary::from_samples(&[0.5, f64::NAN]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = Summary::from_samples(&[0.7]).unwrap();
        assert_eq!(s.mean, 0.7);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 0.7);
        assert_eq!(s.q1, 0.7);
        assert_eq!(s.max, 0.7);
    }

    #[test]
    fn quartiles_interpolate() {
        let s = Summary::from_samples(&[0.0, 1.0, 2.0, 3.0]).unwrap();
        assert!((s.q1 - 0.75).abs() < 1e-12);
        assert!((s.median - 1.5).abs() < 1e-12);
        assert!((s.q3 - 2.25).abs() < 1e-12);
    }

    #[test]
    fn order_invariant() {
        let a = Summary::from_samples(&[0.3, 0.1, 0.2]).unwrap();
        let b = Summary::from_samples(&[0.1, 0.2, 0.3]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn std_matches_known_value() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        // known sample std of this classic dataset is ~2.138
        assert!((s.std - 2.138).abs() < 0.01);
    }

    #[test]
    fn display_contains_all_fields() {
        let s = Summary::from_samples(&[0.5, 0.6]).unwrap();
        let txt = s.to_string();
        for key in ["mean", "min", "q1", "med", "q3", "max"] {
            assert!(txt.contains(key));
        }
    }
}
