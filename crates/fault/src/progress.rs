//! Campaign progress observation and cooperative cancellation.
//!
//! Long-running campaign grids are opaque from the outside: the executors
//! return one [`CampaignResult`](crate::CampaignResult) at the end and say
//! nothing until then. A [`CampaignObserver`] opens a side channel — the
//! executors report every completed cell (and whether it was served from a
//! cache) as it happens, and poll the observer for cancellation at cell
//! boundaries, where the network is guaranteed to be in its clean state.
//!
//! The observer is installed per *calling thread* with [`with_observer`];
//! the campaign executors capture it on entry and carry it into their
//! worker threads, so one installation covers the whole grid regardless of
//! the thread count. Observation is pure side channel: it never changes a
//! result bit, and the no-observer path costs one thread-local read per
//! campaign.
//!
//! Cancellation unwinds the campaign with [`CancelledCampaign`] as the
//! panic payload. Drivers that offer cancellation catch it with
//! [`std::panic::catch_unwind`] and downcast the payload; every thread
//! budget taken out with `ftclip_tensor::with_thread_limit` is restored by
//! its drop guard during the unwind, so a cancelled campaign releases its
//! workers cleanly.

use std::cell::RefCell;
use std::sync::Arc;

use crate::{RateConvergence, RunRecord};

/// Receives campaign progress and answers cancellation polls.
///
/// All methods default to no-ops, so an observer implements only what it
/// needs. Implementations must be `Send + Sync`: the parallel executor's
/// workers share one observer.
pub trait CampaignObserver: Send + Sync {
    /// A cell completed. `cached` is `true` when the record was replayed
    /// from a [`CampaignCache`](crate::CampaignCache) instead of evaluated.
    fn on_cell(&self, record: &RunRecord, cached: bool) {
        let _ = (record, cached);
    }

    /// The clean (fault-free) accuracy was resolved — computed fresh or
    /// replayed from a cache. Reported once per campaign, before any cell.
    fn on_clean(&self, accuracy: f64) {
        let _ = accuracy;
    }

    /// An adaptive campaign retired a rate: its confidence interval met the
    /// stopping rule's target (or the rate exhausted `max_reps`). Reported
    /// once per rate, only when a [`StoppingRule`](crate::StoppingRule) is
    /// installed; fixed-grid campaigns never call this.
    fn on_rate_converged(&self, report: &RateConvergence) {
        let _ = report;
    }

    /// Polled at every cell boundary. Returning `true` makes the executor
    /// unwind with a [`CancelledCampaign`] payload instead of starting the
    /// next cell.
    fn cancel_requested(&self) -> bool {
        false
    }
}

/// Panic payload used by the executors when [`CampaignObserver::cancel_requested`]
/// returns `true`. Catch with [`std::panic::catch_unwind`] and downcast to
/// distinguish cancellation from a genuine panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CancelledCampaign;

thread_local! {
    static OBSERVER: RefCell<Option<Arc<dyn CampaignObserver>>> = const { RefCell::new(None) };
}

/// Runs `f` with `observer` installed as the current thread's campaign
/// observer; every campaign started inside `f` (on this thread) reports to
/// it. The previous observer is restored on exit, panic included.
pub fn with_observer<T>(observer: Arc<dyn CampaignObserver>, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<Arc<dyn CampaignObserver>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            OBSERVER.with(|slot| *slot.borrow_mut() = prev);
        }
    }
    let prev = OBSERVER.with(|slot| slot.borrow_mut().replace(observer));
    let _restore = Restore(prev);
    f()
}

/// The observer installed on the current thread, if any. The campaign
/// executors call this once on entry and carry the handle into their
/// workers (worker threads have fresh thread-locals of their own).
pub fn current_observer() -> Option<Arc<dyn CampaignObserver>> {
    OBSERVER.with(|slot| slot.borrow().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[derive(Default)]
    struct Counter(AtomicUsize);
    impl CampaignObserver for Counter {
        fn on_cell(&self, _record: &RunRecord, _cached: bool) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn observer_scopes_nest_and_restore() {
        assert!(current_observer().is_none());
        let outer = Arc::new(Counter::default());
        with_observer(outer.clone(), || {
            assert!(current_observer().is_some());
            let inner = Arc::new(Counter::default());
            with_observer(inner, || assert!(current_observer().is_some()));
            // the outer observer is back after the inner scope ends
            current_observer()
                .unwrap()
                .on_cell(&RunRecord { rate_index: 0, repetition: 0, fault_count: 0, accuracy: 1.0 }, false);
        });
        assert_eq!(outer.0.load(Ordering::Relaxed), 1);
        assert!(current_observer().is_none());
    }

    #[test]
    fn observer_restored_across_panic() {
        let result = std::panic::catch_unwind(|| {
            with_observer(Arc::new(Counter::default()), || panic!("boom"));
        });
        assert!(result.is_err());
        assert!(current_observer().is_none(), "panic must not leak the observer");
    }

    #[test]
    fn fresh_threads_start_unobserved() {
        with_observer(Arc::new(Counter::default()), || {
            let seen = std::thread::scope(|s| s.spawn(|| current_observer().is_some()).join().unwrap());
            assert!(!seen, "thread-locals do not cross thread spawns");
        });
    }
}
