//! Fault-injection campaigns: rates × repetitions with derived seeds.
//!
//! The `(rate × repetition)` grid is embarrassingly parallel — every cell
//! derives its own RNG from [`derive_seed`] and leaves the network exactly
//! as it found it — so [`Campaign::run_parallel`] fans the grid out over
//! scoped worker threads (honoring `FTCLIP_THREADS` via
//! [`ftclip_tensor::num_threads`]) with results bit-identical to the serial
//! [`Campaign::run`] at any thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use ftclip_nn::Sequential;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::progress::{current_observer, CampaignObserver, CancelledCampaign};
use crate::{derive_seed, FaultModel, Injection, InjectionTarget, Summary};

/// Configuration of a fault-injection campaign.
///
/// A campaign reproduces the experiment shape used throughout the paper:
/// for each fault rate, run `repetitions` independent injections (the paper
/// uses 50, §V-B) and record the surviving classification accuracy of each.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The fault rates to sweep (per-bit probabilities).
    pub fault_rates: Vec<f64>,
    /// Independent injections per rate.
    pub repetitions: usize,
    /// Base seed; run `(i, r)` uses [`derive_seed`]`(seed, i, r)`.
    pub seed: u64,
    /// The fault model applied to every sampled bit.
    pub model: FaultModel,
    /// Which parameter memories are corrupted.
    pub target: InjectionTarget,
    /// Sequential-sampling mode: when set, the executors schedule
    /// repetitions in deterministic waves and stop each rate as soon as its
    /// accuracy confidence interval is tighter than the rule's target (see
    /// [`StoppingRule`]). `None` runs the classic fixed grid of
    /// `repetitions` cells per rate.
    ///
    /// The rule never enters the store's cell fingerprint (just like
    /// `repetitions`): cells are addressed by `(rate_index, repetition)`,
    /// so adaptive and exhaustive runs share cached cells bit for bit.
    pub stopping: Option<StoppingRule>,
}

impl CampaignConfig {
    /// A campaign over the paper's whole-network fault-rate grid
    /// (Figs. 1b/7/8: 1e-8 … 1e-5, 1–2–5 spacing) with bit-flip faults on
    /// all weights.
    pub fn paper_default(seed: u64, repetitions: usize) -> Self {
        CampaignConfig {
            fault_rates: paper_fault_rates(),
            repetitions,
            seed,
            model: FaultModel::BitFlip,
            target: InjectionTarget::AllWeights,
            stopping: None,
        }
    }

    /// Checks that this configuration describes a runnable campaign.
    ///
    /// The empty rate grid is the historically painful case: it used to
    /// surface only as a `.expect("non-empty grid")` panic deep inside a
    /// figure binary, long after the experiment had trained its model.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`CampaignError`].
    pub fn validate(&self) -> Result<(), CampaignError> {
        if self.fault_rates.is_empty() {
            return Err(CampaignError::EmptyRateGrid);
        }
        if let Some(&bad) = self.fault_rates.iter().find(|r| !(0.0..=1.0).contains(*r)) {
            return Err(CampaignError::RateOutOfRange(bad));
        }
        if self.repetitions == 0 {
            return Err(CampaignError::ZeroRepetitions);
        }
        if let Some(rule) = &self.stopping {
            rule.validate()?;
        }
        Ok(())
    }
}

/// Number of bootstrap resamples behind [`StoppingRule::half_width`].
const STOPPING_RESAMPLES: usize = 200;
/// Confidence level of the stopping interval (95%).
const STOPPING_CONFIDENCE: f64 = 0.95;
/// Fixed resampler seed: the interval must be a pure function of the
/// samples so serial and parallel executors reach identical decisions.
const STOPPING_BOOT_SEED: u64 = 0x5eed_c1a0_b007_57a9;

/// Sequential-sampling stopping rule for adaptive campaigns.
///
/// With a rule installed on [`CampaignConfig::stopping`], the executors
/// schedule repetitions in deterministic waves: every still-active rate
/// first runs `min_reps` repetitions, then the wave size doubles
/// (`min_reps`, `2·min_reps`, `4·min_reps`, …) until the rate's 95%
/// bootstrap confidence interval over its accuracy samples has a
/// half-width ≤ `target_half_width`, or `max_reps` repetitions have run.
///
/// Because cell seeds stay keyed by `(rate_index, repetition)` and the
/// interval is a deterministic function of the samples, an adaptive run is
/// a **bit-identical prefix** of the exhaustive run with
/// `repetitions = max_reps` — at any thread count, against any cache state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoppingRule {
    /// Stop a rate once its confidence-interval half-width is ≤ this.
    pub target_half_width: f64,
    /// Repetitions every rate runs before the first convergence check.
    pub min_reps: usize,
    /// Hard per-rate budget: a rate that never converges stops here.
    pub max_reps: usize,
}

impl StoppingRule {
    /// Checks that the rule is satisfiable.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`CampaignError`].
    pub fn validate(&self) -> Result<(), CampaignError> {
        if !(self.target_half_width.is_finite() && self.target_half_width > 0.0) {
            return Err(CampaignError::BadHalfWidth(self.target_half_width));
        }
        if self.min_reps == 0 || self.min_reps > self.max_reps {
            return Err(CampaignError::BadRepBounds { min_reps: self.min_reps, max_reps: self.max_reps });
        }
        Ok(())
    }

    /// The half-width of the 95% bootstrap interval over `samples` — the
    /// quantity compared against `target_half_width`. Deterministic in the
    /// samples (see [`crate::bootstrap_interval`]); non-computable samples
    /// (empty, NaN) report `+∞`, which keeps the rate running to `max_reps`.
    pub fn half_width(&self, samples: &[f64]) -> f64 {
        crate::bootstrap_interval(samples, STOPPING_RESAMPLES, STOPPING_CONFIDENCE, STOPPING_BOOT_SEED)
            .map_or(f64::INFINITY, |ci| ci.half_width())
    }

    /// Whether a rate with these accuracy samples stops sampling: converged
    /// (`half_width ≤ target`, with at least `min_reps` samples) or out of
    /// budget (`max_reps` samples).
    pub fn satisfied(&self, samples: &[f64]) -> bool {
        samples.len() >= self.max_reps
            || (samples.len() >= self.min_reps && self.half_width(samples) <= self.target_half_width)
    }

    /// The deterministic wave boundaries: `min_reps`, then doubling, capped
    /// at `max_reps`.
    fn wave_boundaries(&self) -> impl Iterator<Item = usize> + '_ {
        let mut next = self.min_reps;
        let mut done = false;
        std::iter::from_fn(move || {
            if done {
                return None;
            }
            let b = next.min(self.max_reps);
            done = b == self.max_reps;
            next = next.saturating_mul(2);
            Some(b)
        })
    }
}

/// How one rate of an adaptive campaign finished (see
/// [`CampaignResult::convergence`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateConvergence {
    /// Index into [`CampaignConfig::fault_rates`].
    pub rate_index: usize,
    /// Repetitions actually sampled for this rate.
    pub reps_used: usize,
    /// Final confidence-interval half-width over the sampled accuracies.
    pub half_width: f64,
    /// `true` when the rate met the target; `false` when it exhausted
    /// `max_reps` first.
    pub converged: bool,
}

/// Why a [`CampaignConfig`] cannot be run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CampaignError {
    /// The fault-rate grid is empty: there would be no cells to evaluate
    /// and no curve to summarize.
    EmptyRateGrid,
    /// A fault rate is outside `[0, 1]` (or NaN) — rates are per-bit
    /// probabilities.
    RateOutOfRange(f64),
    /// `repetitions == 0`: every rate needs at least one injection.
    ZeroRepetitions,
    /// The stopping rule's target half-width is not a positive finite
    /// number — no interval could ever satisfy it meaningfully.
    BadHalfWidth(f64),
    /// The stopping rule's repetition bounds are unsatisfiable
    /// (`min_reps == 0` or `min_reps > max_reps`).
    BadRepBounds {
        /// The rule's `min_reps`.
        min_reps: usize,
        /// The rule's `max_reps`.
        max_reps: usize,
    },
    /// A rate's accuracy samples cannot be summarized: the list is empty or
    /// contains NaN (reachable through a poisoned store row or a
    /// hand-built [`CampaignResult`]).
    DegenerateSamples {
        /// Index of the offending rate.
        rate_index: usize,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::EmptyRateGrid => write!(f, "campaign needs at least one fault rate"),
            CampaignError::RateOutOfRange(r) => {
                write!(f, "fault rates must be in [0, 1]; got {r}")
            }
            CampaignError::ZeroRepetitions => write!(f, "campaign needs at least one repetition"),
            CampaignError::BadHalfWidth(w) => {
                write!(f, "stopping rule needs a positive finite target half-width; got {w}")
            }
            CampaignError::BadRepBounds { min_reps, max_reps } => write!(
                f,
                "stopping rule needs 1 ≤ min_reps ≤ max_reps; got min_reps = {min_reps}, max_reps = {max_reps}"
            ),
            CampaignError::DegenerateSamples { rate_index } => write!(
                f,
                "rate {rate_index} has no summarizable accuracy samples (empty or NaN)"
            ),
        }
    }
}

impl std::error::Error for CampaignError {}

/// The fault-rate grid the paper sweeps in its whole-network experiments:
/// `{1, 5} × 10⁻⁸ … 10⁻⁵` (and `1e-5` endpoint).
pub fn paper_fault_rates() -> Vec<f64> {
    vec![1e-8, 5e-8, 1e-7, 5e-7, 1e-6, 5e-6, 1e-5]
}

/// Per-cell structure hint handed to the evaluation contract: which prefix
/// of the network is **provably clean** for the cell being evaluated.
///
/// `cut` is the earliest faulted layer of the cell's injection
/// ([`Injection::earliest_faulted_layer`]): every activation entering layer
/// `cut` is bit-identical to the clean network's, so a hint-aware evaluator
/// may reuse memoized clean-prefix activations and re-execute only the
/// suffix `[cut, len)`. `None` means "no structural knowledge" (e.g. the
/// clean-accuracy evaluation) — evaluate the full network.
///
/// The hint is purely an optimization channel: honoring it must never
/// change a result bit, and ignoring it is always correct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SuffixHint {
    /// Deepest layer index whose *input* activation is clean, or `None`.
    pub cut: Option<usize>,
}

impl SuffixHint {
    /// The hint carrying no structural knowledge: evaluate the full network.
    pub fn full() -> Self {
        SuffixHint { cut: None }
    }

    /// A hint naming `cut` as the earliest faulted layer.
    pub fn at(cut: usize) -> Self {
        SuffixHint { cut: Some(cut) }
    }
}

/// The campaign evaluation contract: scores a (possibly faulted) network,
/// optionally exploiting the [`SuffixHint`] describing its clean prefix.
///
/// Every plain `Fn(&Sequential) -> f64 + Sync` closure implements this
/// trait (ignoring the hint), so the historical
/// `campaign.run(&mut net, |n| eval.accuracy(n))` call shape keeps working
/// unchanged. Hint-aware implementations (e.g. `ftclip_core`'s
/// suffix-accuracy evaluator over a prefix-activation cache) must return
/// **bit-identical** accuracies whether or not they use the hint — the
/// campaign executors treat the two paths as interchangeable.
///
/// `Sync` is required because the parallel executors share one evaluator
/// across worker threads.
pub trait CellEval: Sync {
    /// Evaluates `net`. `hint` describes the clean prefix of the current
    /// cell (see [`SuffixHint`]).
    fn eval_cell(&self, net: &Sequential, hint: SuffixHint) -> f64;
}

impl<F: Fn(&Sequential) -> f64 + Sync> CellEval for F {
    fn eval_cell(&self, net: &Sequential, _hint: SuffixHint) -> f64 {
        self(net)
    }
}

/// A lookup/record interface for per-cell campaign results, implemented by
/// persistent stores (see the `ftclip_store` crate) and by [`NoCache`].
///
/// The executors consult the cache before evaluating a cell and record every
/// freshly computed cell afterwards. Because each cell's result is a pure
/// function of `(config, rate_index, repetition)` — the RNG is derived per
/// cell and evaluation is deterministic — replaying a cached [`RunRecord`]
/// is bit-identical to recomputing it, which is the property that makes
/// resumed campaigns indistinguishable from fresh ones.
///
/// Implementations must tolerate concurrent calls from the parallel
/// executor's workers (hence the `Sync` bound).
pub trait CampaignCache: Sync {
    /// Returns the cached cell, or `None` if it has not been computed yet.
    fn lookup(&self, rate_index: usize, repetition: usize) -> Option<RunRecord>;

    /// Records a freshly computed cell.
    fn record(&self, _record: &RunRecord) {}

    /// Returns the cached clean (fault-free) accuracy, if known.
    fn clean_accuracy(&self) -> Option<f64> {
        None
    }

    /// Records the clean accuracy of a fresh run.
    fn record_clean(&self, _accuracy: f64) {}
}

/// The null cache: every lookup misses, every record is dropped. Running a
/// campaign against it is exactly the historical uncached behaviour.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoCache;

impl CampaignCache for NoCache {
    fn lookup(&self, _rate_index: usize, _repetition: usize) -> Option<RunRecord> {
        None
    }
}

static NO_CACHE: NoCache = NoCache;

/// Borrows `session` as a [`CampaignCache`], falling back to [`NoCache`]
/// when it is `None` — the one-liner figure binaries use to make caching
/// optional (`FTCLIP_CACHE=off`).
pub fn cache_of<C: CampaignCache>(session: &Option<C>) -> &dyn CampaignCache {
    match session {
        Some(cache) => cache,
        None => &NO_CACHE,
    }
}

/// One (rate, repetition) cell of a campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunRecord {
    /// Index into [`CampaignConfig::fault_rates`].
    pub rate_index: usize,
    /// Repetition number within the rate.
    pub repetition: usize,
    /// Number of faults sampled for this run.
    pub fault_count: usize,
    /// Classification accuracy measured under fault.
    pub accuracy: f64,
}

/// Results of a completed campaign.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The swept fault rates, in configuration order.
    pub fault_rates: Vec<f64>,
    /// `accuracies[i][r]` = accuracy of repetition `r` at rate `i`.
    pub accuracies: Vec<Vec<f64>>,
    /// Every individual run, in execution order.
    pub runs: Vec<RunRecord>,
    /// Clean (fault-free) accuracy of the network on the same evaluation
    /// set — the paper's "baseline accuracy" reference line.
    pub clean_accuracy: f64,
    /// Per-rate convergence report of an adaptive run (`None` for fixed
    /// `repetitions` grids): how many repetitions each rate actually
    /// sampled and the final interval half-width.
    pub convergence: Option<Vec<RateConvergence>>,
}

impl CampaignResult {
    /// Per-rate distribution summaries (the box plots of Figs. 7–8).
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::DegenerateSamples`] naming the first rate
    /// whose sample list is empty or contains NaN — reachable through a
    /// poisoned store row or a hand-assembled result, so figure writers
    /// must route the error instead of panicking mid-report.
    pub fn summaries(&self) -> Result<Vec<Summary>, CampaignError> {
        self.accuracies
            .iter()
            .enumerate()
            .map(|(rate_index, a)| {
                Summary::from_samples(a).ok_or(CampaignError::DegenerateSamples { rate_index })
            })
            .collect()
    }

    /// Mean accuracy per rate (the line plots of Figs. 1b, 7a, 8a).
    pub fn mean_accuracies(&self) -> Vec<f64> {
        self.accuracies.iter().map(|a| a.iter().sum::<f64>() / a.len() as f64).collect()
    }

    /// Total repetitions actually sampled across all rates — the
    /// "injections paid" an adaptive run economizes on.
    pub fn total_repetitions(&self) -> usize {
        self.accuracies.iter().map(Vec::len).sum()
    }

    /// `(rate, mean accuracy)` pairs, with the clean point at rate 0
    /// prepended — the curve the AUC metric integrates.
    pub fn curve_with_clean_point(&self) -> Vec<(f64, f64)> {
        let mut pts = vec![(0.0, self.clean_accuracy)];
        pts.extend(self.fault_rates.iter().copied().zip(self.mean_accuracies()));
        pts
    }
}

/// A reusable campaign runner bound to a configuration.
///
/// The evaluation function is supplied by the caller (typically
/// "accuracy of `net` on an evaluation subset" via `ftclip_nn::evaluate`),
/// keeping this crate independent of any dataset type.
///
/// # Example
///
/// ```
/// use ftclip_fault::{Campaign, CampaignConfig, FaultModel, InjectionTarget};
/// use ftclip_nn::{Layer, Scratch, Sequential, Span};
///
/// let mut net = Sequential::new(vec![Layer::linear(4, 2, 0)]);
/// let cfg = CampaignConfig {
///     fault_rates: vec![1e-3, 1e-2],
///     repetitions: 3,
///     seed: 7,
///     model: FaultModel::BitFlip,
///     target: InjectionTarget::AllWeights,
///     stopping: None,
/// };
/// // toy evaluation: fraction of finite outputs
/// let result = Campaign::new(cfg).run(&mut net, |n: &Sequential| {
///     let y = n.execute(&ftclip_tensor::Tensor::ones(&[1, 4]), Span::full(), &mut Scratch::new());
///     y.iter().filter(|v| v.is_finite()).count() as f64 / y.len() as f64
/// });
/// assert_eq!(result.accuracies.len(), 2);
/// assert_eq!(result.accuracies[0].len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Campaign {
    config: CampaignConfig,
}

impl Campaign {
    /// Creates a campaign runner.
    ///
    /// # Panics
    ///
    /// Panics if the rate list is empty, any rate is outside `[0, 1]`, or
    /// `repetitions == 0`. Use [`Campaign::try_new`] where a typed error is
    /// preferable (e.g. validating a declarative experiment spec).
    pub fn new(config: CampaignConfig) -> Self {
        Campaign::try_new(config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a campaign runner, returning the violated constraint instead
    /// of panicking on an unrunnable configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`CampaignError`] of [`CampaignConfig::validate`].
    pub fn try_new(config: CampaignConfig) -> Result<Self, CampaignError> {
        config.validate()?;
        Ok(Campaign { config })
    }

    /// The configuration.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Runs the full campaign: for every `(rate, repetition)` cell, inject →
    /// evaluate → restore. The network is returned to its original state.
    ///
    /// Runs whose sampled fault set is empty (common at the low end of the
    /// paper's rate grid) reuse the clean accuracy instead of re-evaluating:
    /// evaluation is deterministic, so the result is identical and the
    /// campaign cost drops substantially. Faulted cells hand the evaluator a
    /// [`SuffixHint`] naming the injection's earliest faulted layer, letting
    /// hint-aware evaluators skip the clean prefix of the forward pass.
    pub fn run(&self, net: &mut Sequential, eval: impl CellEval) -> CampaignResult {
        self.run_cached(net, &NoCache, eval)
    }

    /// [`Campaign::run`] against a persistent cell cache: cells found in
    /// `cache` are replayed bit-identically without evaluation, fresh cells
    /// are recorded as they complete, and the merged result is bit-identical
    /// to an uncached run regardless of how the cells split between cache
    /// hits and fresh computation.
    ///
    /// Progress (and cancellation) flows through the calling thread's
    /// [`CampaignObserver`], if one is installed — see
    /// [`crate::with_observer`].
    pub fn run_cached(
        &self,
        net: &mut Sequential,
        cache: &dyn CampaignCache,
        eval: impl CellEval,
    ) -> CampaignResult {
        let observer = current_observer();
        let observer = observer.as_deref();
        let clean_accuracy = cache.clean_accuracy().unwrap_or_else(|| {
            let clean = eval.eval_cell(net, SuffixHint::full());
            cache.record_clean(clean);
            clean
        });
        if let Some(obs) = observer {
            obs.on_clean(clean_accuracy);
        }
        if let Some(rule) = self.config.stopping {
            return self.run_adaptive(rule, clean_accuracy, observer, |cells: &[(usize, usize)]| {
                cells
                    .iter()
                    .map(|&(i, rep)| {
                        self.cell(
                            net,
                            i,
                            self.config.fault_rates[i],
                            rep,
                            clean_accuracy,
                            cache,
                            &eval,
                            observer,
                        )
                    })
                    .collect()
            });
        }
        let mut accuracies = Vec::with_capacity(self.config.fault_rates.len());
        let mut runs = Vec::new();
        for (i, &rate) in self.config.fault_rates.iter().enumerate() {
            let mut per_rate = Vec::with_capacity(self.config.repetitions);
            for rep in 0..self.config.repetitions {
                let record = self.cell(net, i, rate, rep, clean_accuracy, cache, &eval, observer);
                per_rate.push(record.accuracy);
                runs.push(record);
            }
            accuracies.push(per_rate);
        }
        CampaignResult {
            fault_rates: self.config.fault_rates.clone(),
            accuracies,
            runs,
            clean_accuracy,
            convergence: None,
        }
    }

    /// The shared adaptive scheduler: runs deterministic waves through
    /// `run_wave` (a serial loop or a parallel fan-out — the stopping
    /// decisions cannot tell, because they depend only on the per-rate
    /// accuracy prefixes, which are bit-identical either way).
    ///
    /// Wave `k` extends every still-active rate to the rule's `k`-th
    /// boundary (`min_reps`, `2·min_reps`, …, `max_reps`); after the wave,
    /// rates whose interval is tight enough — or that hit `max_reps` — are
    /// retired and reported through
    /// [`CampaignObserver::on_rate_converged`].
    fn run_adaptive(
        &self,
        rule: StoppingRule,
        clean_accuracy: f64,
        observer: Option<&dyn CampaignObserver>,
        mut run_wave: impl FnMut(&[(usize, usize)]) -> Vec<RunRecord>,
    ) -> CampaignResult {
        let n_rates = self.config.fault_rates.len();
        let mut accuracies: Vec<Vec<f64>> = vec![Vec::new(); n_rates];
        let mut runs: Vec<RunRecord> = Vec::new();
        let mut convergence: Vec<RateConvergence> = Vec::new();
        let mut active: Vec<bool> = vec![true; n_rates];
        for boundary in rule.wave_boundaries() {
            // the wave's cell list is rate-major and derived only from the
            // active set — identical in serial and parallel runs
            let cells: Vec<(usize, usize)> = (0..n_rates)
                .filter(|&i| active[i])
                .flat_map(|i| (accuracies[i].len()..boundary).map(move |rep| (i, rep)))
                .collect();
            let mut wave = run_wave(&cells);
            wave.sort_by_key(|r| (r.rate_index, r.repetition));
            for record in wave {
                accuracies[record.rate_index].push(record.accuracy);
                runs.push(record);
            }
            for i in 0..n_rates {
                if !active[i] {
                    continue;
                }
                let half_width = rule.half_width(&accuracies[i]);
                let converged = half_width <= rule.target_half_width;
                if converged || accuracies[i].len() >= rule.max_reps {
                    active[i] = false;
                    let report = RateConvergence {
                        rate_index: i,
                        reps_used: accuracies[i].len(),
                        half_width,
                        converged,
                    };
                    convergence.push(report);
                    if let Some(obs) = observer {
                        obs.on_rate_converged(&report);
                    }
                }
            }
            if active.iter().all(|a| !a) {
                break;
            }
        }
        runs.sort_by_key(|r| (r.rate_index, r.repetition));
        convergence.sort_by_key(|c| c.rate_index);
        CampaignResult {
            fault_rates: self.config.fault_rates.clone(),
            accuracies,
            runs,
            clean_accuracy,
            convergence: Some(convergence),
        }
    }

    /// Computes (or replays from `cache`) one `(rate, repetition)` cell.
    /// The network is returned to its pre-call state.
    ///
    /// Cancellation is polled here — at the cell boundary, where the
    /// network is clean and no locks are held — so an unwinding cancel
    /// never leaves shared state poisoned.
    fn cell(
        &self,
        net: &mut Sequential,
        i: usize,
        rate: f64,
        rep: usize,
        clean_accuracy: f64,
        cache: &dyn CampaignCache,
        eval: &dyn CellEval,
        observer: Option<&dyn CampaignObserver>,
    ) -> RunRecord {
        if let Some(obs) = observer {
            if obs.cancel_requested() {
                std::panic::panic_any(CancelledCampaign);
            }
        }
        if let Some(record) = cache.lookup(i, rep) {
            assert_eq!((record.rate_index, record.repetition), (i, rep), "cache returned a mislabeled cell");
            if let Some(obs) = observer {
                obs.on_cell(&record, true);
            }
            return record;
        }
        let mut rng = StdRng::seed_from_u64(derive_seed(self.config.seed, i, rep));
        let injection = Injection::sample(net, self.config.target, self.config.model, rate, &mut rng);
        let fault_count = injection.fault_count();
        let accuracy = if fault_count == 0 {
            clean_accuracy
        } else {
            // activations before the earliest faulted layer are bit-identical
            // to the clean run — tell the evaluator how deep that prefix goes
            let hint = SuffixHint { cut: injection.earliest_faulted_layer() };
            let handle = injection.apply(net);
            let accuracy = eval.eval_cell(net, hint);
            handle.undo(net);
            accuracy
        };
        let record = RunRecord { rate_index: i, repetition: rep, fault_count, accuracy };
        cache.record(&record);
        if let Some(obs) = observer {
            obs.on_cell(&record, false);
        }
        record
    }

    /// Runs the full campaign with the `(rate, repetition)` grid fanned out
    /// over [`ftclip_tensor::num_threads`] worker threads.
    ///
    /// Results are **bit-identical** to [`Campaign::run`] at any thread
    /// count: every cell derives its RNG from
    /// [`derive_seed`]`(seed, rate_index, repetition)` independent of
    /// execution order, evaluation is deterministic, and the merged
    /// [`RunRecord`]s are emitted in the serial path's order. Unlike
    /// [`Campaign::run`] the network is borrowed immutably — each worker
    /// injects faults into its own clone. Workers share the evaluator
    /// ([`CellEval`] is `Sync`), including any prefix-activation cache a
    /// hint-aware evaluator carries.
    pub fn run_parallel(&self, net: &Sequential, eval: impl CellEval) -> CampaignResult {
        self.run_parallel_with_threads(net, ftclip_tensor::num_threads(), eval)
    }

    /// [`Campaign::run_parallel`] against a persistent cell cache — the
    /// resumable entry point the figure binaries use. Cached cells are
    /// replayed without evaluation; fresh cells are recorded as workers
    /// complete them (recording order is scheduling-dependent, cell content
    /// is not). The merged result is **bit-identical** to both the uncached
    /// and the serial executor at any thread count and any cache state:
    /// empty, partial, or complete.
    pub fn run_parallel_cached(
        &self,
        net: &Sequential,
        cache: &dyn CampaignCache,
        eval: impl CellEval,
    ) -> CampaignResult {
        self.run_parallel_cached_with_threads(net, ftclip_tensor::num_threads(), cache, eval)
    }

    /// [`Campaign::run_parallel`] with an explicit worker-thread count
    /// (`FTCLIP_THREADS` is process-global and cached, so tests comparing
    /// thread counts inside one process use this entry point).
    ///
    /// Workers pull cells from a shared queue (dynamic scheduling: the
    /// expensive high-rate cells spread across workers) and run their
    /// evaluations under [`ftclip_tensor::with_thread_limit`] with their
    /// share of the thread budget. When the grid has at least `threads`
    /// cells that share is 1 — campaign-level fan-out alone saturates the
    /// machine and the kernels underneath must not multiply the thread
    /// count. When the grid is *smaller* than the budget (cells < threads)
    /// each worker receives `threads / workers` threads, which the
    /// batch-sharded evaluation inside `EvalSet::accuracy` turns into
    /// batch-level parallelism — the adaptive composition that keeps small
    /// grids from leaving cores idle.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or if a worker thread panics.
    pub fn run_parallel_with_threads(
        &self,
        net: &Sequential,
        threads: usize,
        eval: impl CellEval,
    ) -> CampaignResult {
        self.run_parallel_cached_with_threads(net, threads, &NoCache, eval)
    }

    /// [`Campaign::run_parallel_cached`] with an explicit worker-thread
    /// count (see [`Campaign::run_parallel_with_threads`] for why tests need
    /// this entry point).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`, a worker thread panics, or the cache
    /// returns a cell labeled with the wrong `(rate_index, repetition)`.
    pub fn run_parallel_cached_with_threads(
        &self,
        net: &Sequential,
        threads: usize,
        cache: &dyn CampaignCache,
        eval: impl CellEval,
    ) -> CampaignResult {
        assert!(threads > 0, "campaign needs at least one worker thread");
        if let Some(rule) = self.config.stopping {
            // adaptive mode: the wave scheduler decides which cells exist;
            // each wave fans out over the same worker machinery
            let observer = current_observer();
            let clean_accuracy = cache.clean_accuracy().unwrap_or_else(|| {
                let clean =
                    ftclip_tensor::with_thread_limit(threads, || eval.eval_cell(net, SuffixHint::full()));
                cache.record_clean(clean);
                clean
            });
            if let Some(obs) = &observer {
                obs.on_clean(clean_accuracy);
            }
            return self.run_adaptive(rule, clean_accuracy, observer.as_deref(), |cells| {
                self.run_cell_batch(net, threads, cells, clean_accuracy, cache, &eval, observer.as_deref())
            });
        }
        let reps = self.config.repetitions;
        let total = self.config.fault_rates.len() * reps;
        let workers = threads.min(total);

        if workers <= 1 {
            // honor the explicit budget even without campaign fan-out: the
            // batch-sharded evaluation underneath must not exceed `threads`
            // (an uncapped threads=1 baseline would silently parallelize)
            let mut net = net.clone();
            return ftclip_tensor::with_thread_limit(threads, || self.run_cached(&mut net, cache, eval));
        }

        // capture the calling thread's observer before fanning out: worker
        // threads have fresh thread-locals, so the handle travels by Arc
        let observer: Option<Arc<dyn CampaignObserver>> = current_observer();
        let clean_accuracy = cache.clean_accuracy().unwrap_or_else(|| {
            let clean = ftclip_tensor::with_thread_limit(threads, || eval.eval_cell(net, SuffixHint::full()));
            cache.record_clean(clean);
            clean
        });
        if let Some(obs) = &observer {
            obs.on_clean(clean_accuracy);
        }
        // leftover parallelism per worker when cells < threads; 1 otherwise
        // (the first `threads % workers` workers absorb the remainder so the
        // whole budget is used)
        let inner = threads / workers;
        let spare = threads % workers;
        let next_cell = AtomicUsize::new(0);
        let mut runs: Vec<RunRecord> = Vec::with_capacity(total);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let next_cell = &next_cell;
                let eval = &eval;
                let observer = observer.clone();
                let budget = (inner + usize::from(w < spare)).max(1);
                handles.push(scope.spawn(move || {
                    // one network clone per worker serves all its cells;
                    // inner kernels share the leftover budget (method docs)
                    ftclip_tensor::with_thread_limit(budget, || {
                        let mut local = net.clone();
                        let mut out = Vec::new();
                        loop {
                            let cell = next_cell.fetch_add(1, Ordering::Relaxed);
                            if cell >= total {
                                return out;
                            }
                            let (i, rep) = (cell / reps, cell % reps);
                            let rate = self.config.fault_rates[i];
                            out.push(self.cell(
                                &mut local,
                                i,
                                rate,
                                rep,
                                clean_accuracy,
                                cache,
                                eval,
                                observer.as_deref(),
                            ));
                        }
                    })
                }));
            }
            for handle in handles {
                match handle.join() {
                    Ok(worker_runs) => runs.extend(worker_runs),
                    // re-raise with the original payload so a cancellation
                    // unwind ([`CancelledCampaign`]) stays downcastable at
                    // the driver's catch_unwind
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });

        // restore the serial path's (rate-major) execution order
        runs.sort_by_key(|r| (r.rate_index, r.repetition));
        let mut accuracies = vec![Vec::with_capacity(reps); self.config.fault_rates.len()];
        for r in &runs {
            accuracies[r.rate_index].push(r.accuracy);
        }
        CampaignResult {
            fault_rates: self.config.fault_rates.clone(),
            accuracies,
            runs,
            clean_accuracy,
            convergence: None,
        }
    }

    /// Fans one adaptive wave's explicit cell list out over up to `threads`
    /// workers (the same queue/budget scheme as the fixed-grid executor);
    /// single-worker waves run serially under the thread limit. Records are
    /// returned in scheduling order — the wave scheduler sorts them.
    #[allow(clippy::too_many_arguments)]
    fn run_cell_batch(
        &self,
        net: &Sequential,
        threads: usize,
        cells: &[(usize, usize)],
        clean_accuracy: f64,
        cache: &dyn CampaignCache,
        eval: &dyn CellEval,
        observer: Option<&dyn CampaignObserver>,
    ) -> Vec<RunRecord> {
        let workers = threads.min(cells.len());
        if workers <= 1 {
            let mut local = net.clone();
            return ftclip_tensor::with_thread_limit(threads, || {
                cells
                    .iter()
                    .map(|&(i, rep)| {
                        self.cell(
                            &mut local,
                            i,
                            self.config.fault_rates[i],
                            rep,
                            clean_accuracy,
                            cache,
                            eval,
                            observer,
                        )
                    })
                    .collect()
            });
        }
        let inner = threads / workers;
        let spare = threads % workers;
        let next_cell = AtomicUsize::new(0);
        let mut out: Vec<RunRecord> = Vec::with_capacity(cells.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let next_cell = &next_cell;
                let budget = (inner + usize::from(w < spare)).max(1);
                handles.push(scope.spawn(move || {
                    ftclip_tensor::with_thread_limit(budget, || {
                        let mut local = net.clone();
                        let mut got = Vec::new();
                        loop {
                            let k = next_cell.fetch_add(1, Ordering::Relaxed);
                            if k >= cells.len() {
                                return got;
                            }
                            let (i, rep) = cells[k];
                            got.push(self.cell(
                                &mut local,
                                i,
                                self.config.fault_rates[i],
                                rep,
                                clean_accuracy,
                                cache,
                                eval,
                                observer,
                            ));
                        }
                    })
                }));
            }
            for handle in handles {
                match handle.join() {
                    Ok(worker_runs) => out.extend(worker_runs),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclip_nn::{Layer, Scratch, Span};
    use ftclip_tensor::Tensor;

    fn net() -> Sequential {
        Sequential::new(vec![Layer::flatten(), Layer::linear(16, 4, 2)])
    }

    fn finite_fraction(n: &Sequential) -> f64 {
        let y = n.execute(&Tensor::ones(&[2, 1, 4, 4]), Span::full(), &mut Scratch::new());
        y.iter().filter(|v| v.is_finite() && v.abs() < 1e6).count() as f64 / y.len() as f64
    }

    #[test]
    fn campaign_restores_network() {
        let mut n = net();
        let before: Vec<u32> = {
            let mut v = Vec::new();
            n.visit_params(&mut |_, _, t, _| v.extend(t.data().iter().map(|x| x.to_bits())));
            v
        };
        let cfg = CampaignConfig {
            fault_rates: vec![1e-2, 1e-1],
            repetitions: 4,
            seed: 3,
            model: FaultModel::BitFlip,
            target: InjectionTarget::AllWeights,
            stopping: None,
        };
        Campaign::new(cfg).run(&mut n, finite_fraction);
        let after: Vec<u32> = {
            let mut v = Vec::new();
            n.visit_params(&mut |_, _, t, _| v.extend(t.data().iter().map(|x| x.to_bits())));
            v
        };
        assert_eq!(before, after);
    }

    #[test]
    fn result_shape_matches_config() {
        let mut n = net();
        let cfg = CampaignConfig {
            fault_rates: vec![1e-3, 1e-2, 1e-1],
            repetitions: 5,
            seed: 1,
            model: FaultModel::BitFlip,
            target: InjectionTarget::AllWeights,
            stopping: None,
        };
        let res = Campaign::new(cfg).run(&mut n, finite_fraction);
        assert_eq!(res.accuracies.len(), 3);
        assert!(res.accuracies.iter().all(|a| a.len() == 5));
        assert_eq!(res.runs.len(), 15);
        assert_eq!(res.summaries().unwrap().len(), 3);
        assert_eq!(res.curve_with_clean_point().len(), 4);
        assert_eq!(res.curve_with_clean_point()[0].0, 0.0);
    }

    #[test]
    fn campaign_is_deterministic() {
        let cfg = CampaignConfig {
            fault_rates: vec![1e-2],
            repetitions: 3,
            seed: 9,
            model: FaultModel::BitFlip,
            target: InjectionTarget::AllWeights,
            stopping: None,
        };
        let mut n1 = net();
        let r1 = Campaign::new(cfg.clone()).run(&mut n1, finite_fraction);
        let mut n2 = net();
        let r2 = Campaign::new(cfg).run(&mut n2, finite_fraction);
        assert_eq!(r1.accuracies, r2.accuracies);
        assert_eq!(r1.runs, r2.runs);
    }

    #[test]
    fn higher_rates_mean_more_faults() {
        let mut n = net();
        let cfg = CampaignConfig {
            fault_rates: vec![1e-3, 1e-1],
            repetitions: 10,
            seed: 5,
            model: FaultModel::BitFlip,
            target: InjectionTarget::AllWeights,
            stopping: None,
        };
        let res = Campaign::new(cfg).run(&mut n, finite_fraction);
        let count_at = |rate_idx: usize| -> usize {
            res.runs
                .iter()
                .filter(|r| r.rate_index == rate_idx)
                .map(|r| r.fault_count)
                .sum()
        };
        assert!(count_at(1) > count_at(0) * 10, "100× rate should give ≫ faults");
    }

    #[test]
    fn paper_default_grid() {
        let cfg = CampaignConfig::paper_default(0, 50);
        assert_eq!(cfg.fault_rates.len(), 7);
        assert_eq!(cfg.repetitions, 50);
        assert_eq!(cfg.fault_rates[0], 1e-8);
        assert_eq!(*cfg.fault_rates.last().unwrap(), 1e-5);
    }

    #[test]
    fn parallel_matches_serial_bitwise_at_any_thread_count() {
        let cfg = CampaignConfig {
            fault_rates: vec![1e-3, 1e-2, 1e-1],
            repetitions: 6,
            seed: 17,
            model: FaultModel::BitFlip,
            target: InjectionTarget::AllWeights,
            stopping: None,
        };
        let campaign = Campaign::new(cfg);
        let mut serial_net = net();
        let serial = campaign.run(&mut serial_net, finite_fraction);
        for threads in [1, 2, 4, 7] {
            let parallel = campaign.run_parallel_with_threads(&net(), threads, finite_fraction);
            let bits = |a: &[Vec<f64>]| -> Vec<Vec<u64>> {
                a.iter().map(|v| v.iter().map(|x| x.to_bits()).collect()).collect()
            };
            assert_eq!(bits(&parallel.accuracies), bits(&serial.accuracies), "{threads} threads");
            assert_eq!(parallel.runs, serial.runs, "{threads} threads");
            assert_eq!(parallel.clean_accuracy.to_bits(), serial.clean_accuracy.to_bits());
        }
    }

    #[test]
    fn parallel_does_not_mutate_input_network() {
        let n = net();
        let before: Vec<u32> = {
            let mut v = Vec::new();
            n.visit_params(&mut |_, _, t, _| v.extend(t.data().iter().map(|x| x.to_bits())));
            v
        };
        let cfg = CampaignConfig {
            fault_rates: vec![1e-1],
            repetitions: 8,
            seed: 2,
            model: FaultModel::BitFlip,
            target: InjectionTarget::AllWeights,
            stopping: None,
        };
        Campaign::new(cfg).run_parallel_with_threads(&n, 3, finite_fraction);
        let after: Vec<u32> = {
            let mut v = Vec::new();
            n.visit_params(&mut |_, _, t, _| v.extend(t.data().iter().map(|x| x.to_bits())));
            v
        };
        assert_eq!(before, after);
    }

    #[test]
    #[should_panic(expected = "at least one worker thread")]
    fn parallel_rejects_zero_threads() {
        let cfg = CampaignConfig {
            fault_rates: vec![1e-2],
            repetitions: 1,
            seed: 0,
            model: FaultModel::BitFlip,
            target: InjectionTarget::AllWeights,
            stopping: None,
        };
        Campaign::new(cfg).run_parallel_with_threads(&net(), 0, finite_fraction);
    }

    /// In-memory [`CampaignCache`] with eviction hooks, for testing resume.
    #[derive(Default)]
    struct MemCache {
        cells: std::sync::Mutex<std::collections::HashMap<(usize, usize), RunRecord>>,
        clean: std::sync::Mutex<Option<f64>>,
    }

    impl CampaignCache for MemCache {
        fn lookup(&self, rate_index: usize, repetition: usize) -> Option<RunRecord> {
            self.cells.lock().unwrap().get(&(rate_index, repetition)).copied()
        }
        fn record(&self, record: &RunRecord) {
            self.cells
                .lock()
                .unwrap()
                .insert((record.rate_index, record.repetition), *record);
        }
        fn clean_accuracy(&self) -> Option<f64> {
            *self.clean.lock().unwrap()
        }
        fn record_clean(&self, accuracy: f64) {
            *self.clean.lock().unwrap() = Some(accuracy);
        }
    }

    fn bits(a: &[Vec<f64>]) -> Vec<Vec<u64>> {
        a.iter().map(|v| v.iter().map(|x| x.to_bits()).collect()).collect()
    }

    #[test]
    fn cached_resume_is_bit_identical_at_any_cache_state() {
        let cfg = CampaignConfig {
            fault_rates: vec![1e-3, 1e-2, 1e-1],
            repetitions: 4,
            seed: 23,
            model: FaultModel::BitFlip,
            target: InjectionTarget::AllWeights,
            stopping: None,
        };
        let campaign = Campaign::new(cfg);
        let mut fresh_net = net();
        let fresh = campaign.run(&mut fresh_net, finite_fraction);

        let cache = MemCache::default();
        let populated = campaign.run_parallel_cached_with_threads(&net(), 3, &cache, finite_fraction);
        assert_eq!(populated.runs, fresh.runs, "populating run must match uncached");
        assert_eq!(cache.cells.lock().unwrap().len(), 12);

        // evict an arbitrary half of the cells, then resume at several
        // thread counts: every merged result must replay the fresh bits
        let evicted: Vec<(usize, usize)> = cache
            .cells
            .lock()
            .unwrap()
            .keys()
            .copied()
            .enumerate()
            .filter(|(n, _)| n % 2 == 0)
            .map(|(_, k)| k)
            .collect();
        for key in &evicted {
            cache.cells.lock().unwrap().remove(key);
        }
        for threads in [1, 2, 4] {
            let resumed = campaign.run_parallel_cached_with_threads(&net(), threads, &cache, finite_fraction);
            assert_eq!(resumed.runs, fresh.runs, "{threads} threads");
            assert_eq!(bits(&resumed.accuracies), bits(&fresh.accuracies), "{threads} threads");
            assert_eq!(resumed.clean_accuracy.to_bits(), fresh.clean_accuracy.to_bits());
        }
    }

    #[test]
    fn fully_cached_run_never_evaluates() {
        let cfg = CampaignConfig {
            fault_rates: vec![1e-2, 1e-1],
            repetitions: 3,
            seed: 5,
            model: FaultModel::BitFlip,
            target: InjectionTarget::AllWeights,
            stopping: None,
        };
        let campaign = Campaign::new(cfg);
        let cache = MemCache::default();
        let first = campaign.run_parallel_cached_with_threads(&net(), 2, &cache, finite_fraction);

        let evals = AtomicUsize::new(0);
        let counting = |n: &Sequential| {
            evals.fetch_add(1, Ordering::Relaxed);
            finite_fraction(n)
        };
        let replayed = campaign.run_parallel_cached_with_threads(&net(), 2, &cache, counting);
        assert_eq!(evals.load(Ordering::Relaxed), 0, "cache hit must skip evaluation entirely");
        assert_eq!(replayed.runs, first.runs);
    }

    #[test]
    fn serial_cached_matches_parallel_cached() {
        let cfg = CampaignConfig {
            fault_rates: vec![1e-2],
            repetitions: 5,
            seed: 77,
            model: FaultModel::BitFlip,
            target: InjectionTarget::AllWeights,
            stopping: None,
        };
        let campaign = Campaign::new(cfg);
        let serial_cache = MemCache::default();
        let mut n1 = net();
        let serial = campaign.run_cached(&mut n1, &serial_cache, finite_fraction);
        let parallel_cache = MemCache::default();
        let parallel = campaign.run_parallel_cached_with_threads(&net(), 4, &parallel_cache, finite_fraction);
        assert_eq!(serial.runs, parallel.runs);
        assert_eq!(
            serial_cache.cells.lock().unwrap().len(),
            parallel_cache.cells.lock().unwrap().len(),
            "both executors record every cell"
        );
    }

    #[test]
    #[should_panic(expected = "mislabeled cell")]
    fn mislabeled_cache_cell_is_rejected() {
        struct LyingCache;
        impl CampaignCache for LyingCache {
            fn lookup(&self, _i: usize, _r: usize) -> Option<RunRecord> {
                Some(RunRecord {
                    rate_index: 99,
                    repetition: 99,
                    fault_count: 0,
                    accuracy: 1.0,
                })
            }
        }
        let cfg = CampaignConfig {
            fault_rates: vec![1e-2],
            repetitions: 1,
            seed: 0,
            model: FaultModel::BitFlip,
            target: InjectionTarget::AllWeights,
            stopping: None,
        };
        let mut n = net();
        Campaign::new(cfg).run_cached(&mut n, &LyingCache, finite_fraction);
    }

    #[test]
    #[should_panic(expected = "at least one fault rate")]
    fn rejects_empty_rates() {
        Campaign::new(CampaignConfig {
            fault_rates: vec![],
            repetitions: 1,
            seed: 0,
            model: FaultModel::BitFlip,
            target: InjectionTarget::AllWeights,
            stopping: None,
        });
    }

    #[test]
    fn validate_reports_typed_errors() {
        let ok = CampaignConfig::paper_default(1, 3);
        assert_eq!(ok.validate(), Ok(()));
        assert!(Campaign::try_new(ok).is_ok());

        let mut empty = CampaignConfig::paper_default(1, 3);
        empty.fault_rates.clear();
        assert_eq!(empty.validate(), Err(CampaignError::EmptyRateGrid));
        assert_eq!(Campaign::try_new(empty).unwrap_err(), CampaignError::EmptyRateGrid);

        let mut out_of_range = CampaignConfig::paper_default(1, 3);
        out_of_range.fault_rates.push(1.5);
        assert_eq!(out_of_range.validate(), Err(CampaignError::RateOutOfRange(1.5)));
        let mut nan = CampaignConfig::paper_default(1, 3);
        nan.fault_rates[0] = f64::NAN;
        assert!(matches!(nan.validate(), Err(CampaignError::RateOutOfRange(_))), "NaN is not a rate");

        let mut no_reps = CampaignConfig::paper_default(1, 0);
        assert_eq!(no_reps.validate(), Err(CampaignError::ZeroRepetitions));
        no_reps.repetitions = 1;
        assert_eq!(no_reps.validate(), Ok(()));
    }

    #[derive(Default)]
    struct Recorder {
        cells: std::sync::Mutex<Vec<(usize, usize, bool)>>,
        clean: AtomicUsize,
        cancel_after: Option<usize>,
    }

    impl crate::CampaignObserver for Recorder {
        fn on_cell(&self, record: &RunRecord, cached: bool) {
            self.cells.lock().unwrap().push((record.rate_index, record.repetition, cached));
        }
        fn on_clean(&self, _accuracy: f64) {
            self.clean.fetch_add(1, Ordering::Relaxed);
        }
        fn cancel_requested(&self) -> bool {
            match self.cancel_after {
                Some(n) => self.cells.lock().unwrap().len() >= n,
                None => false,
            }
        }
    }

    #[test]
    fn observer_sees_every_cell_with_cache_flags() {
        let cfg = CampaignConfig {
            fault_rates: vec![1e-2, 1e-1],
            repetitions: 3,
            seed: 11,
            model: FaultModel::BitFlip,
            target: InjectionTarget::AllWeights,
            stopping: None,
        };
        let campaign = Campaign::new(cfg);
        let cache = MemCache::default();

        let fresh = std::sync::Arc::new(Recorder::default());
        let result = crate::with_observer(fresh.clone(), || {
            campaign.run_parallel_cached_with_threads(&net(), 3, &cache, finite_fraction)
        });
        let mut seen = fresh.cells.lock().unwrap().clone();
        seen.sort();
        let expected: Vec<(usize, usize, bool)> =
            result.runs.iter().map(|r| (r.rate_index, r.repetition, false)).collect();
        assert_eq!(seen, expected, "every fresh cell reported exactly once, uncached");
        assert_eq!(fresh.clean.load(Ordering::Relaxed), 1, "clean accuracy reported once");

        // a replay over the populated cache reports the same cells as cached
        let replay = std::sync::Arc::new(Recorder::default());
        crate::with_observer(replay.clone(), || {
            campaign.run_parallel_cached_with_threads(&net(), 3, &cache, finite_fraction)
        });
        let mut seen = replay.cells.lock().unwrap().clone();
        seen.sort();
        assert!(seen.iter().all(|&(_, _, cached)| cached), "replayed cells carry cached = true");
        assert_eq!(seen.len(), result.runs.len());
    }

    #[test]
    fn cancellation_unwinds_with_typed_payload_and_restores_thread_limit() {
        let cfg = CampaignConfig {
            fault_rates: vec![1e-2, 1e-1],
            repetitions: 4,
            seed: 13,
            model: FaultModel::BitFlip,
            target: InjectionTarget::AllWeights,
            stopping: None,
        };
        let campaign = Campaign::new(cfg);
        let observer = std::sync::Arc::new(Recorder { cancel_after: Some(2), ..Recorder::default() });
        let budget_before = ftclip_tensor::num_threads();
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::with_observer(observer.clone(), || {
                campaign.run_parallel_cached_with_threads(&net(), 2, &NoCache, finite_fraction)
            })
        }))
        .expect_err("cancellation must unwind");
        assert!(
            payload.downcast_ref::<crate::CancelledCampaign>().is_some(),
            "payload identifies the unwind as a cancellation"
        );
        assert!(observer.cells.lock().unwrap().len() >= 2, "cells before the cancel were reported");
        assert_eq!(
            ftclip_tensor::num_threads(),
            budget_before,
            "with_thread_limit guards must restore the budget through the unwind"
        );
    }

    #[test]
    fn campaign_error_messages_are_actionable() {
        assert!(CampaignError::EmptyRateGrid.to_string().contains("at least one fault rate"));
        assert!(CampaignError::RateOutOfRange(2.0).to_string().contains('2'));
        assert!(CampaignError::ZeroRepetitions.to_string().contains("repetition"));
        assert!(CampaignError::BadHalfWidth(-1.0).to_string().contains("half-width"));
        assert!(CampaignError::BadRepBounds { min_reps: 3, max_reps: 2 }
            .to_string()
            .contains("min_reps"));
        assert!(CampaignError::DegenerateSamples { rate_index: 4 }.to_string().contains('4'));
    }

    fn rule(eps: f64, min: usize, max: usize) -> StoppingRule {
        StoppingRule { target_half_width: eps, min_reps: min, max_reps: max }
    }

    #[test]
    fn stopping_rule_validation() {
        assert_eq!(rule(0.05, 2, 8).validate(), Ok(()));
        assert_eq!(rule(0.0, 2, 8).validate(), Err(CampaignError::BadHalfWidth(0.0)));
        assert!(matches!(rule(f64::NAN, 2, 8).validate(), Err(CampaignError::BadHalfWidth(_))));
        assert_eq!(
            rule(0.05, 0, 8).validate(),
            Err(CampaignError::BadRepBounds { min_reps: 0, max_reps: 8 })
        );
        assert_eq!(
            rule(0.05, 9, 8).validate(),
            Err(CampaignError::BadRepBounds { min_reps: 9, max_reps: 8 })
        );
        // the rule is validated through the campaign config too
        let mut cfg = CampaignConfig::paper_default(1, 3);
        cfg.stopping = Some(rule(0.05, 0, 8));
        assert!(matches!(cfg.validate(), Err(CampaignError::BadRepBounds { .. })));
    }

    #[test]
    fn wave_boundaries_double_and_cap() {
        let bs: Vec<usize> = rule(0.1, 2, 24).wave_boundaries().collect();
        assert_eq!(bs, vec![2, 4, 8, 16, 24]);
        let bs: Vec<usize> = rule(0.1, 3, 3).wave_boundaries().collect();
        assert_eq!(bs, vec![3]);
    }

    /// The tentpole invariant: an adaptive run is a bit-identical prefix of
    /// the exhaustive run with `repetitions = max_reps`, at 1/2/4 threads,
    /// and serial adaptive matches parallel adaptive exactly.
    #[test]
    fn adaptive_is_bit_identical_prefix_of_exhaustive_at_any_thread_count() {
        // rate 0 samples ~zero faults on this tiny net → zero-variance
        // accuracies → converges at min_reps; rate 2 is noisy
        let mut cfg = CampaignConfig {
            fault_rates: vec![1e-9, 1e-2, 1e-1],
            repetitions: 8,
            seed: 31,
            model: FaultModel::BitFlip,
            target: InjectionTarget::AllWeights,
            stopping: None,
        };
        let mut exhaustive_net = net();
        let exhaustive = Campaign::new(cfg.clone()).run(&mut exhaustive_net, finite_fraction);

        cfg.stopping = Some(rule(0.08, 2, 8));
        let campaign = Campaign::new(cfg);
        let mut serial_net = net();
        let serial = campaign.run_cached(&mut serial_net, &NoCache, finite_fraction);
        let conv = serial.convergence.as_ref().expect("adaptive runs report convergence");
        assert_eq!(conv.len(), 3);
        assert_eq!(conv[0].reps_used, 2, "zero-variance rate stops at min_reps");
        assert!(conv[0].converged && conv[0].half_width == 0.0);
        for (i, c) in conv.iter().enumerate() {
            assert_eq!(c.rate_index, i);
            assert!((2..=8).contains(&c.reps_used));
            // prefix bit-identity against the exhaustive grid
            let prefix: Vec<u64> =
                exhaustive.accuracies[i][..c.reps_used].iter().map(|x| x.to_bits()).collect();
            let got: Vec<u64> = serial.accuracies[i].iter().map(|x| x.to_bits()).collect();
            assert_eq!(got, prefix, "rate {i}");
            assert_eq!(
                serial.runs.iter().filter(|r| r.rate_index == i).count(),
                c.reps_used,
                "runs carry exactly the sampled cells"
            );
        }
        assert!(
            serial.total_repetitions() < exhaustive.total_repetitions(),
            "adaptive must save injections on this grid"
        );

        for threads in [1, 2, 4] {
            let parallel = campaign.run_parallel_with_threads(&net(), threads, finite_fraction);
            assert_eq!(bits(&parallel.accuracies), bits(&serial.accuracies), "{threads} threads");
            assert_eq!(parallel.runs, serial.runs, "{threads} threads");
            assert_eq!(parallel.convergence, serial.convergence, "{threads} threads");
            assert_eq!(parallel.clean_accuracy.to_bits(), serial.clean_accuracy.to_bits());
        }
    }

    #[test]
    fn adaptive_runs_to_max_when_the_target_is_unreachable() {
        let cfg = CampaignConfig {
            fault_rates: vec![1e-1],
            repetitions: 6,
            seed: 41,
            model: FaultModel::BitFlip,
            target: InjectionTarget::AllWeights,
            stopping: Some(rule(1e-12, 2, 6)),
        };
        // continuous-valued eval: distinct injections give distinct scores,
        // so the sample variance never collapses to zero
        let continuous = |n: &Sequential| {
            let y = n.execute(&Tensor::ones(&[2, 1, 4, 4]), Span::full(), &mut Scratch::new());
            y.iter()
                .map(|v| if v.is_finite() { (*v as f64).abs().min(1.0) } else { 0.0 })
                .sum::<f64>()
                / y.len() as f64
        };
        let mut n = net();
        let res = Campaign::new(cfg).run(&mut n, continuous);
        let conv = &res.convergence.as_ref().unwrap()[0];
        assert_eq!(conv.reps_used, 6, "unreachable target exhausts max_reps");
        assert!(!conv.converged);
        assert!(conv.half_width > 1e-12);
    }

    /// The store-extension contract: a fixed-reps cache is *extended* by an
    /// adaptive run — cached prefix cells replay without evaluation, only
    /// the deficit is sampled.
    #[test]
    fn adaptive_run_extends_a_fixed_reps_cache_without_recomputing() {
        let fixed = CampaignConfig {
            fault_rates: vec![1e-2, 1e-1],
            repetitions: 3,
            seed: 47,
            model: FaultModel::BitFlip,
            target: InjectionTarget::AllWeights,
            stopping: None,
        };
        let cache = MemCache::default();
        Campaign::new(fixed.clone()).run_parallel_cached_with_threads(&net(), 2, &cache, finite_fraction);
        assert_eq!(cache.cells.lock().unwrap().len(), 6);

        // unreachable target forces the adaptive run to max_reps = 5: the
        // 3 cached reps per rate replay, exactly 2 × 2 fresh cells evaluate
        let adaptive = CampaignConfig { stopping: Some(rule(1e-12, 2, 5)), ..fixed.clone() };
        let evals = AtomicUsize::new(0);
        let counting = |n: &Sequential| {
            evals.fetch_add(1, Ordering::Relaxed);
            finite_fraction(n)
        };
        let extended = Campaign::new(adaptive).run_parallel_cached_with_threads(&net(), 2, &cache, counting);
        assert_eq!(evals.load(Ordering::Relaxed), 4, "only the deficit beyond the cache evaluates");
        assert_eq!(cache.cells.lock().unwrap().len(), 10, "fresh cells were recorded");

        // and the merged result is the bit-identical prefix of exhaustive
        let exhaustive_cfg = CampaignConfig { repetitions: 5, ..fixed };
        let mut n = net();
        let exhaustive = Campaign::new(exhaustive_cfg).run(&mut n, finite_fraction);
        assert_eq!(bits(&extended.accuracies), bits(&exhaustive.accuracies));
    }

    #[test]
    fn adaptive_observer_reports_rate_convergence() {
        #[derive(Default)]
        struct ConvRecorder(std::sync::Mutex<Vec<RateConvergence>>);
        impl crate::CampaignObserver for ConvRecorder {
            fn on_rate_converged(&self, report: &RateConvergence) {
                self.0.lock().unwrap().push(*report);
            }
        }
        let cfg = CampaignConfig {
            fault_rates: vec![1e-9, 1e-1],
            repetitions: 4,
            seed: 53,
            model: FaultModel::BitFlip,
            target: InjectionTarget::AllWeights,
            stopping: Some(rule(0.5, 2, 4)),
        };
        let recorder = std::sync::Arc::new(ConvRecorder::default());
        let res = crate::with_observer(recorder.clone(), || {
            Campaign::new(cfg).run_parallel_cached_with_threads(&net(), 2, &NoCache, finite_fraction)
        });
        let mut seen = recorder.0.lock().unwrap().clone();
        seen.sort_by_key(|c| c.rate_index);
        assert_eq!(seen, res.convergence.unwrap(), "observer saw every rate exactly once");
    }

    #[test]
    fn summaries_reject_empty_and_nan_samples() {
        let good = CampaignResult {
            fault_rates: vec![1e-3, 1e-2],
            accuracies: vec![vec![0.5, 0.6], vec![0.7]],
            runs: Vec::new(),
            clean_accuracy: 0.9,
            convergence: None,
        };
        assert_eq!(good.summaries().unwrap().len(), 2);

        let empty = CampaignResult { accuracies: vec![vec![0.5], vec![]], ..good.clone() };
        assert_eq!(empty.summaries(), Err(CampaignError::DegenerateSamples { rate_index: 1 }));

        let poisoned = CampaignResult { accuracies: vec![vec![f64::NAN], vec![0.5]], ..good };
        assert_eq!(poisoned.summaries(), Err(CampaignError::DegenerateSamples { rate_index: 0 }));
    }
}
