//! Property-based tests for the fault-injection framework.

use ftclip_fault::{sample_bit_positions, FaultModel, Injection, InjectionTarget, MemoryMap, Summary};
use ftclip_nn::{Layer, ParamKind, Sequential};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn sampled_positions_sorted_unique_in_range(
        n_bits in 1usize..100_000,
        rate in 0.0f64..0.2,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let positions = sample_bit_positions(n_bits, rate, &mut rng);
        for w in positions.windows(2) {
            prop_assert!(w[0] < w[1], "positions must be strictly increasing");
        }
        prop_assert!(positions.iter().all(|&p| p < n_bits));
    }

    #[test]
    fn fault_count_within_statistical_bounds(
        seed in 0u64..500,
    ) {
        // fixed medium-size space: mean 100 faults, σ = 10, allow 8σ
        let mut rng = StdRng::seed_from_u64(seed);
        let positions = sample_bit_positions(1_000_000, 1e-4, &mut rng);
        let n = positions.len() as f64;
        prop_assert!((n - 100.0).abs() < 80.0, "implausible fault count {}", n);
    }

    #[test]
    fn bit_flip_involution(word in any::<u32>(), bit in 0u8..32) {
        let flipped = FaultModel::BitFlip.apply_to_word(word, bit);
        prop_assert_ne!(flipped, word);
        prop_assert_eq!(FaultModel::BitFlip.apply_to_word(flipped, bit), word);
    }

    #[test]
    fn stuck_at_idempotence(word in any::<u32>(), bit in 0u8..32) {
        for model in [FaultModel::StuckAt0, FaultModel::StuckAt1] {
            let once = model.apply_to_word(word, bit);
            prop_assert_eq!(model.apply_to_word(once, bit), once);
        }
    }

    #[test]
    fn stuck_at_0_never_increases_magnitude_bits(word in any::<u32>(), bit in 0u8..31) {
        // clearing any non-sign bit cannot increase |f32|
        let v = f32::from_bits(word);
        prop_assume!(v.is_finite());
        let stuck = f32::from_bits(FaultModel::StuckAt0.apply_to_word(word, bit));
        prop_assume!(stuck.is_finite());
        prop_assert!(stuck.abs() <= v.abs(), "{v} → {stuck} grew in magnitude");
    }

    #[test]
    fn injection_apply_undo_roundtrip(
        rate in 0.0f64..0.05,
        seed in 0u64..2_000,
    ) {
        let mut net = Sequential::new(vec![
            Layer::conv2d(1, 2, 3, 1, 1, seed),
            Layer::relu(),
            Layer::flatten(),
            Layer::linear(2 * 16, 4, seed ^ 7),
        ]);
        let snapshot = |n: &Sequential| {
            let mut v = Vec::new();
            n.visit_params(&mut |_, _, t, _| v.extend(t.data().iter().map(|x| x.to_bits())));
            v
        };
        let before = snapshot(&net);
        let mut rng = StdRng::seed_from_u64(seed);
        let inj = Injection::sample(&net, InjectionTarget::AllParams, FaultModel::BitFlip, rate, &mut rng);
        let handle = inj.apply(&mut net);
        handle.undo(&mut net);
        prop_assert_eq!(snapshot(&net), before);
    }

    #[test]
    fn memory_map_locate_is_inverse_of_layout(
        in_c in 1usize..4,
        out_c in 1usize..4,
        fc_out in 1usize..8,
    ) {
        let net = Sequential::new(vec![
            Layer::conv2d(in_c, out_c, 3, 1, 1, 0),
            Layer::relu(),
            Layer::flatten(),
            Layer::linear(out_c * 16, fc_out, 1),
        ]);
        let map = MemoryMap::build(&net, InjectionTarget::AllWeights);
        // walk every region and verify locate() inverts the global offset
        let mut global = 0usize;
        for region in map.regions() {
            for w in 0..region.words {
                let (layer, kind, word) = map.locate(global);
                prop_assert_eq!(layer, region.layer);
                prop_assert_eq!(kind, ParamKind::Weight);
                prop_assert_eq!(word, w);
                global += 1;
            }
        }
        prop_assert_eq!(global, map.total_words());
    }

    #[test]
    fn summary_orders_quartiles(samples in proptest::collection::vec(0.0f64..1.0, 1..50)) {
        let s = Summary::from_samples(&samples).unwrap();
        prop_assert!(s.min <= s.q1 + 1e-12);
        prop_assert!(s.q1 <= s.median + 1e-12);
        prop_assert!(s.median <= s.q3 + 1e-12);
        prop_assert!(s.q3 <= s.max + 1e-12);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.std >= 0.0);
    }

    #[test]
    fn summary_of_constant_sample_is_degenerate(x in 0.0f64..1.0, n in 1usize..20) {
        let s = Summary::from_samples(&vec![x; n]).unwrap();
        prop_assert_eq!(s.min, x);
        prop_assert_eq!(s.max, x);
        prop_assert_eq!(s.median, x);
        prop_assert!(s.std.abs() < 1e-12);
    }
}
