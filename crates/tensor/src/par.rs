//! Minimal data-parallel helpers built on `std::thread::scope`.
//!
//! The workspace deliberately avoids a thread-pool dependency: the only
//! parallel workload is "split the rows of an output matrix into contiguous
//! bands and have each thread fill one band", which scoped threads express
//! directly.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Per-thread cap on [`num_threads`]; 0 means "no override". Set by
    /// [`with_thread_limit`] so coarse-grained parallel drivers (e.g. the
    /// fault-injection campaign executor) can stop the kernels underneath
    /// them from oversubscribing the machine with nested thread scopes.
    static THREAD_LIMIT: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads used by [`par_row_bands`] and the matmul kernels.
///
/// Resolves to `std::thread::available_parallelism()` capped at 8 (the
/// kernels are memory-bound beyond that on typical hardware). The value can
/// be overridden — e.g. forced to 1 for bit-reproducible single-threaded
/// runs — with the `FTCLIP_THREADS` environment variable, and capped per
/// thread by [`with_thread_limit`].
pub fn num_threads() -> usize {
    let global = global_num_threads();
    match THREAD_LIMIT.get() {
        0 => global,
        limit => limit.min(global),
    }
}

fn global_num_threads() -> usize {
    static CACHED: AtomicUsize = AtomicUsize::new(0);
    let cached = CACHED.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = match std::env::var("FTCLIP_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8),
    };
    CACHED.store(n, Ordering::Relaxed);
    n
}

/// Runs `f` with [`num_threads`] capped at `limit` on the current thread.
///
/// Kernel results are banding-invariant (every output row is produced by
/// exactly one thread regardless of the band count), so this changes
/// scheduling only, never numerics. The previous limit is restored on exit;
/// threads spawned *inside* `f` start with no limit of their own.
pub fn with_thread_limit<T>(limit: usize, f: impl FnOnce() -> T) -> T {
    assert!(limit >= 1, "thread limit must be at least 1");
    let prev = THREAD_LIMIT.get();
    THREAD_LIMIT.set(limit);
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_LIMIT.set(self.0);
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Splits `data` into `bands` contiguous chunks of whole rows (`row_len`
/// elements each) and runs `f(first_row_index, band_slice)` on each chunk,
/// possibly in parallel.
///
/// `f` must be safe to call concurrently on disjoint bands. Bands are
/// maximally even: the first `rows % bands` bands get one extra row.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `row_len`.
pub fn par_row_bands<F>(data: &mut [f32], row_len: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert_eq!(data.len() % row_len, 0, "data length must be a whole number of rows");
    let rows = data.len() / row_len;
    let threads = num_threads().min(rows.max(1));
    if threads <= 1 || rows <= 1 {
        f(0, data);
        return;
    }
    let base = rows / threads;
    let extra = rows % threads;
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut row0 = 0usize;
        for t in 0..threads {
            let band_rows = base + usize::from(t < extra);
            if band_rows == 0 {
                continue;
            }
            let (band, tail) = rest.split_at_mut(band_rows * row_len);
            rest = tail;
            let fr = &f;
            let start = row0;
            scope.spawn(move || fr(start, band));
            row0 += band_rows;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_threads_at_least_one() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn bands_cover_all_rows_exactly_once() {
        let rows = 17;
        let row_len = 5;
        let mut data = vec![0.0f32; rows * row_len];
        par_row_bands(&mut data, row_len, |first_row, band| {
            for (i, row) in band.chunks_mut(row_len).enumerate() {
                for x in row.iter_mut() {
                    *x += (first_row + i) as f32;
                }
            }
        });
        for r in 0..rows {
            for c in 0..row_len {
                assert_eq!(data[r * row_len + c], r as f32, "row {r} col {c}");
            }
        }
    }

    #[test]
    fn single_row_runs_inline() {
        let mut data = vec![1.0f32; 4];
        par_row_bands(&mut data, 4, |first, band| {
            assert_eq!(first, 0);
            for x in band.iter_mut() {
                *x *= 2.0;
            }
        });
        assert_eq!(data, vec![2.0; 4]);
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn rejects_ragged_rows() {
        let mut data = vec![0.0f32; 7];
        par_row_bands(&mut data, 3, |_, _| {});
    }

    #[test]
    fn thread_limit_caps_and_restores() {
        let unlimited = num_threads();
        with_thread_limit(1, || {
            assert_eq!(num_threads(), 1);
            // nested limits compose: the inner cap applies, then pops
            with_thread_limit(1, || assert_eq!(num_threads(), 1));
            assert_eq!(num_threads(), 1);
        });
        assert_eq!(num_threads(), unlimited);
    }

    #[test]
    fn thread_limit_does_not_leak_to_spawned_threads() {
        let unlimited = num_threads();
        with_thread_limit(1, || {
            let inner = std::thread::scope(|s| s.spawn(num_threads).join().unwrap());
            assert_eq!(inner, unlimited, "fresh threads must start uncapped");
        });
    }

    #[test]
    fn banding_is_result_invariant() {
        // the same reduction at limit 1 and unlimited must agree bitwise
        let rows = 13;
        let row_len = 7;
        let run = |limit: Option<usize>| {
            let mut data: Vec<f32> = (0..rows * row_len).map(|i| (i as f32 * 0.1).sin()).collect();
            let body = |mut data: Vec<f32>| {
                par_row_bands(&mut data, row_len, |first_row, band| {
                    for (i, row) in band.chunks_mut(row_len).enumerate() {
                        let scale = (first_row + i) as f32 + 1.0;
                        for x in row.iter_mut() {
                            *x = x.mul_add(scale, 0.25);
                        }
                    }
                });
                data
            };
            match limit {
                Some(l) => with_thread_limit(l, || body(std::mem::take(&mut data))),
                None => body(data),
            }
        };
        let serial: Vec<u32> = run(Some(1)).iter().map(|x| x.to_bits()).collect();
        let parallel: Vec<u32> = run(None).iter().map(|x| x.to_bits()).collect();
        assert_eq!(serial, parallel);
    }
}
