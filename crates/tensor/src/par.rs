//! Minimal data-parallel helpers built on `std::thread::scope`.
//!
//! The workspace deliberately avoids a thread-pool dependency: the only
//! parallel workload is "split the rows of an output matrix into contiguous
//! bands and have each thread fill one band", which scoped threads express
//! directly.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads used by [`par_row_bands`] and the matmul kernels.
///
/// Resolves to `std::thread::available_parallelism()` capped at 8 (the
/// kernels are memory-bound beyond that on typical hardware). The value can
/// be overridden — e.g. forced to 1 for bit-reproducible single-threaded
/// runs — with the `FTCLIP_THREADS` environment variable.
pub fn num_threads() -> usize {
    static CACHED: AtomicUsize = AtomicUsize::new(0);
    let cached = CACHED.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = match std::env::var("FTCLIP_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8),
    };
    CACHED.store(n, Ordering::Relaxed);
    n
}

/// Splits `data` into `bands` contiguous chunks of whole rows (`row_len`
/// elements each) and runs `f(first_row_index, band_slice)` on each chunk,
/// possibly in parallel.
///
/// `f` must be safe to call concurrently on disjoint bands. Bands are
/// maximally even: the first `rows % bands` bands get one extra row.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `row_len`.
pub fn par_row_bands<F>(data: &mut [f32], row_len: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert_eq!(data.len() % row_len, 0, "data length must be a whole number of rows");
    let rows = data.len() / row_len;
    let threads = num_threads().min(rows.max(1));
    if threads <= 1 || rows <= 1 {
        f(0, data);
        return;
    }
    let base = rows / threads;
    let extra = rows % threads;
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut row0 = 0usize;
        for t in 0..threads {
            let band_rows = base + usize::from(t < extra);
            if band_rows == 0 {
                continue;
            }
            let (band, tail) = rest.split_at_mut(band_rows * row_len);
            rest = tail;
            let fr = &f;
            let start = row0;
            scope.spawn(move || fr(start, band));
            row0 += band_rows;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_threads_at_least_one() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn bands_cover_all_rows_exactly_once() {
        let rows = 17;
        let row_len = 5;
        let mut data = vec![0.0f32; rows * row_len];
        par_row_bands(&mut data, row_len, |first_row, band| {
            for (i, row) in band.chunks_mut(row_len).enumerate() {
                for x in row.iter_mut() {
                    *x += (first_row + i) as f32;
                }
            }
        });
        for r in 0..rows {
            for c in 0..row_len {
                assert_eq!(data[r * row_len + c], r as f32, "row {r} col {c}");
            }
        }
    }

    #[test]
    fn single_row_runs_inline() {
        let mut data = vec![1.0f32; 4];
        par_row_bands(&mut data, 4, |first, band| {
            assert_eq!(first, 0);
            for x in band.iter_mut() {
                *x *= 2.0;
            }
        });
        assert_eq!(data, vec![2.0; 4]);
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn rejects_ragged_rows() {
        let mut data = vec![0.0f32; 7];
        par_row_bands(&mut data, 3, |_, _| {});
    }
}
