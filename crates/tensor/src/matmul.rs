//! Matrix products: the compute core of the workspace.
//!
//! Three variants cover everything `ftclip-nn` needs:
//!
//! * [`matmul`]    — `C = A · B`       (forward passes)
//! * [`matmul_tn`] — `C = Aᵀ · B`      (input-gradient of linear layers)
//! * [`matmul_nt`] — `C = A · Bᵀ`      (weight-gradient and linear forward)
//!
//! All variants parallelize over contiguous bands of output rows
//! ([`crate::par_row_bands`]) and run cache-blocked micro-kernels inside each
//! band: the output row is tiled into [`J_TILE`]-column strips that stay in
//! L1, the reduction dimension is cut into [`K_BLOCK`]-row panels of `B` that
//! are reused across every row of the band while L2-resident, and the
//! innermost loop unrolls four `a_ik` coefficients per pass over the strip.
//!
//! **Bit-exactness contract.** Every output element is accumulated in
//! ascending-`k` order with one rounding per non-zero `a_ik` — exactly the
//! naive `i-k-j` kernel's floating-point sequence — and each element is
//! produced by exactly one thread. Blocking, unrolling and the thread count
//! therefore change scheduling only, never a single output bit; the
//! `ftclip_store` campaign cache and the golden figure snapshots survive any
//! kernel-tuning change that preserves this contract.

use crate::par::par_row_bands;
use crate::Tensor;

/// Output columns per micro-kernel strip: 512 f32 = 2 KB of `C` (and of each
/// `B`-row segment), small enough that the strip plus four `B` segments stay
/// in L1 while the unrolled loop runs.
const J_TILE: usize = 512;

/// Reduction rows per `B` panel: a `K_BLOCK × J_TILE` panel is 128 KB,
/// L2-resident across the band's row loop so `B` is streamed from memory
/// once per panel instead of once per output row.
const K_BLOCK: usize = 64;

/// Output rows per `A`-row tile in [`matmul_nt`]: one `B` row is reused
/// across this many dot products while it sits in L1.
const NT_ROW_TILE: usize = 8;

/// `C = A · B` for `A: [m, k]`, `B: [k, n]` → `C: [m, n]`.
///
/// # Panics
///
/// Panics if either operand is not rank 2 or the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use ftclip_tensor::{matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
/// assert_eq!(matmul(&a, &b).data(), &[19.0, 22.0, 43.0, 50.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = a.shape().as_matrix();
    let (kb, n) = b.shape().as_matrix();
    assert_eq!(ka, kb, "matmul inner dimension mismatch: {} vs {}", a.shape(), b.shape());
    let mut c = Tensor::zeros(&[m, n]);
    matmul_into(a, b, &mut c);
    c
}

/// `C += A · B`, writing into a preallocated output (used by the conv kernels
/// and the inference scratch arena to avoid reallocating per batch item).
///
/// # Panics
///
/// Panics on any rank or dimension mismatch between `a`, `b` and `c`.
pub fn matmul_into(a: &Tensor, b: &Tensor, c: &mut Tensor) {
    let (m, ka) = a.shape().as_matrix();
    let (kb, n) = b.shape().as_matrix();
    let (mc, nc) = c.shape().as_matrix();
    assert_eq!(ka, kb, "matmul inner dimension mismatch");
    assert_eq!((m, n), (mc, nc), "matmul output shape mismatch");
    let k = ka;
    // Wide-and-short products (few output rows, huge column count — the
    // batched-convolution shape) parallelize poorly over rows; split the
    // columns across threads instead.
    if m < crate::par::num_threads() && n >= 4096 {
        matmul_into_col_parallel(a.data(), b.data(), c.data_mut(), m, k, n);
        return;
    }
    let a_data = a.data();
    let b_data = b.data();
    par_row_bands(c.data_mut(), n, |first_row, band| {
        accumulate_band(a_data, b_data, band, first_row, k, n, n, 0);
    });
}

/// Blocked `band[r] += A[first_row + r] · B`-panel product for one band of
/// whole output rows, where the band's rows are `row_len` long and the
/// micro-kernel reads `B` columns `b_col0 .. b_col0 + row_len`.
///
/// Loop order is `j`-strip → `k`-panel → band row, so one L2-resident panel
/// of `B` serves every row of the band before the next panel is streamed in.
/// Per output element the accumulation order stays ascending-`k`.
fn accumulate_band(
    a: &[f32],
    b: &[f32],
    band: &mut [f32],
    first_row: usize,
    k: usize,
    b_stride: usize,
    row_len: usize,
    b_col0: usize,
) {
    let mut j0 = 0;
    while j0 < row_len {
        let j1 = (j0 + J_TILE).min(row_len);
        let mut k0 = 0;
        while k0 < k {
            let k1 = (k0 + K_BLOCK).min(k);
            // Rows go four at a time so each loaded `B` vector feeds four
            // accumulator rows (the kernel is FMA-bound instead of
            // load-bound); stragglers take the single-row kernel. Either
            // way every output element sees its own ascending-`k` chain.
            let mut rows_iter = band.chunks_mut(row_len);
            let mut i = first_row;
            let a_block = |i: usize| &a[i * k + k0..i * k + k1];
            while let Some(row0) = rows_iter.next() {
                let c0 = &mut row0[j0..j1];
                match (rows_iter.next(), rows_iter.next(), rows_iter.next()) {
                    (Some(row1), Some(row2), Some(row3)) => {
                        micro_kernel_x4(
                            [a_block(i), a_block(i + 1), a_block(i + 2), a_block(i + 3)],
                            b,
                            b_stride,
                            b_col0 + j0,
                            k0,
                            c0,
                            &mut row1[j0..j1],
                            &mut row2[j0..j1],
                            &mut row3[j0..j1],
                        );
                        i += 4;
                    }
                    (r1, r2, r3) => {
                        micro_kernel(a_block(i), b, b_stride, b_col0 + j0, k0, c0);
                        i += 1;
                        for row in [r1, r2, r3].into_iter().flatten() {
                            micro_kernel(a_block(i), b, b_stride, b_col0 + j0, k0, &mut row[j0..j1]);
                            i += 1;
                        }
                    }
                }
            }
            k0 = k1;
        }
        j0 = j1;
    }
}

/// `c_strip[j] += Σ_dk a_block[dk] · B[k0 + dk, b_col0 + j]`, ascending `dk`,
/// skipping zero coefficients — one rounding per non-zero coefficient, the
/// exact floating-point sequence of the naive kernel.
///
/// Four coefficients are peeled per pass so the strip element is loaded and
/// stored once per four multiply-adds; the four adds stay in program order,
/// so vectorization happens across `j` lanes only and per-element bits are
/// unchanged.
fn micro_kernel(a_block: &[f32], b: &[f32], b_stride: usize, b_col0: usize, k0: usize, c_strip: &mut [f32]) {
    let mut dk = 0;
    while dk + 4 <= a_block.len() {
        let aq = [a_block[dk], a_block[dk + 1], a_block[dk + 2], a_block[dk + 3]];
        quad_strip(aq, b, b_stride, (k0 + dk) * b_stride + b_col0, c_strip);
        dk += 4;
    }
    while dk < a_block.len() {
        axpy_strip(a_block[dk], b, (k0 + dk) * b_stride + b_col0, c_strip);
        dk += 1;
    }
}

/// One four-coefficient pass of the single-row kernel: the strip element is
/// loaded and stored once per four multiply-adds when all four coefficients
/// are non-zero, with per-coefficient axpy (zeros skipped) otherwise.
#[inline]
fn quad_strip(aq: [f32; 4], b: &[f32], b_stride: usize, base: usize, c_strip: &mut [f32]) {
    let width = c_strip.len();
    let [a0, a1, a2, a3] = aq;
    if a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0 {
        let b0 = &b[base..base + width];
        let b1 = &b[base + b_stride..base + b_stride + width];
        let b2 = &b[base + 2 * b_stride..base + 2 * b_stride + width];
        let b3 = &b[base + 3 * b_stride..base + 3 * b_stride + width];
        for ((((c_v, &v0), &v1), &v2), &v3) in c_strip.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
            let mut acc = *c_v;
            acc += a0 * v0;
            acc += a1 * v1;
            acc += a2 * v2;
            acc += a3 * v3;
            *c_v = acc;
        }
    } else {
        // a zero coefficient must be skipped, not multiplied through:
        // `x + 0·b` is not always bit-identical to `x` (signed zeros,
        // non-finite b under injected faults)
        for (t, a_v) in aq.into_iter().enumerate() {
            axpy_strip(a_v, b, base + t * b_stride, c_strip);
        }
    }
}

/// Four-row variant of [`micro_kernel`]: one pass over the `B` panel strip
/// feeds four accumulator rows, so each loaded `B` vector is reused four
/// times and the inner loop is FMA-bound instead of load-bound.
///
/// The joint fast path requires all sixteen coefficients of the quad to be
/// non-zero; any zero drops the quad to four single-row [`quad_strip`]
/// passes. Either way each output element only ever sees its own row's
/// coefficients, ascending in `k` with zeros skipped — per-element bits are
/// identical to the single-row kernel.
#[allow(clippy::too_many_arguments)]
fn micro_kernel_x4(
    a: [&[f32]; 4],
    b: &[f32],
    b_stride: usize,
    b_col0: usize,
    k0: usize,
    c0: &mut [f32],
    c1: &mut [f32],
    c2: &mut [f32],
    c3: &mut [f32],
) {
    let width = c0.len();
    let len = a[0].len();
    let mut dk = 0;
    while dk + 4 <= len {
        let q: [[f32; 4]; 4] = [0, 1, 2, 3].map(|r| [a[r][dk], a[r][dk + 1], a[r][dk + 2], a[r][dk + 3]]);
        let base = (k0 + dk) * b_stride + b_col0;
        if q.iter().flatten().all(|v| *v != 0.0) {
            let b0 = &b[base..base + width];
            let b1 = &b[base + b_stride..base + b_stride + width];
            let b2 = &b[base + 2 * b_stride..base + 2 * b_stride + width];
            let b3 = &b[base + 3 * b_stride..base + 3 * b_stride + width];
            let (c0, c1) = (&mut c0[..width], &mut c1[..width]);
            let (c2, c3) = (&mut c2[..width], &mut c3[..width]);
            for j in 0..width {
                let (v0, v1, v2, v3) = (b0[j], b1[j], b2[j], b3[j]);
                let mut x = c0[j];
                x += q[0][0] * v0;
                x += q[0][1] * v1;
                x += q[0][2] * v2;
                x += q[0][3] * v3;
                c0[j] = x;
                let mut x = c1[j];
                x += q[1][0] * v0;
                x += q[1][1] * v1;
                x += q[1][2] * v2;
                x += q[1][3] * v3;
                c1[j] = x;
                let mut x = c2[j];
                x += q[2][0] * v0;
                x += q[2][1] * v1;
                x += q[2][2] * v2;
                x += q[2][3] * v3;
                c2[j] = x;
                let mut x = c3[j];
                x += q[3][0] * v0;
                x += q[3][1] * v1;
                x += q[3][2] * v2;
                x += q[3][3] * v3;
                c3[j] = x;
            }
        } else {
            quad_strip(q[0], b, b_stride, base, c0);
            quad_strip(q[1], b, b_stride, base, c1);
            quad_strip(q[2], b, b_stride, base, c2);
            quad_strip(q[3], b, b_stride, base, c3);
        }
        dk += 4;
    }
    while dk < len {
        let base = (k0 + dk) * b_stride + b_col0;
        axpy_strip(a[0][dk], b, base, c0);
        axpy_strip(a[1][dk], b, base, c1);
        axpy_strip(a[2][dk], b, base, c2);
        axpy_strip(a[3][dk], b, base, c3);
        dk += 1;
    }
}

/// `c_strip += a_v · b[base..]` for a single coefficient, skipping zeros.
#[inline]
fn axpy_strip(a_v: f32, b: &[f32], base: usize, c_strip: &mut [f32]) {
    if a_v == 0.0 {
        return;
    }
    let b_seg = &b[base..base + c_strip.len()];
    for (c_v, &b_v) in c_strip.iter_mut().zip(b_seg) {
        *c_v += a_v * b_v;
    }
}

/// Column-parallel kernel for `m < threads`: each worker owns a contiguous
/// column band of every output row, accumulates it in a local buffer
/// (L2-resident) **seeded from the existing `C` values**, and the bands are
/// copied back afterwards. Seeding (rather than summing into zeros and
/// adding the prior `C` in one extra rounding) keeps the per-element chain
/// identical to the row-banded path, so the thread-count-dependent dispatch
/// between the two paths can never change an output bit — even for callers
/// accumulating into nonzero `C`.
fn matmul_into_col_parallel(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let threads = crate::par::num_threads();
    let band = n.div_ceil(threads);
    let results: Vec<(usize, usize, Vec<f32>)> = {
        let c_init: &[f32] = c;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let j0 = t * band;
                if j0 >= n {
                    break;
                }
                let j1 = ((t + 1) * band).min(n);
                let width = j1 - j0;
                handles.push(scope.spawn(move || {
                    let mut local = vec![0.0f32; m * width];
                    for i in 0..m {
                        local[i * width..(i + 1) * width]
                            .copy_from_slice(&c_init[i * n + j0..i * n + j0 + width]);
                    }
                    accumulate_band(a, b, &mut local, 0, k, n, width, j0);
                    (j0, width, local)
                }));
            }
            handles.into_iter().map(|h| h.join().expect("matmul worker panicked")).collect()
        })
    };
    for (j0, width, local) in results {
        for i in 0..m {
            c[i * n + j0..i * n + j0 + width].copy_from_slice(&local[i * width..(i + 1) * width]);
        }
    }
}

/// `out += A · B` on raw slices: `A: [m, k]`, `B: [k, n]`,
/// `out: [m, n]` with `m` inferred from `out.len() / n`.
///
/// This is the blocked accumulation core of [`matmul_into`] exposed for plan
/// executors that accumulate directly into a strided view of a larger buffer
/// (e.g. one image's `[out_channels, oh·ow]` rows of a batched NCHW output,
/// which are contiguous). The bit-exactness contract of the module holds
/// unchanged: every output element is accumulated in ascending-`k` order with
/// one rounding per non-zero `a_ik`, zero coefficients skipped.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `(k, n)`.
pub fn gemm_accumulate(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    assert!(n > 0 && out.len().is_multiple_of(n), "gemm_accumulate output not a whole number of rows");
    let m = out.len() / n;
    assert_eq!(a.len(), m * k, "gemm_accumulate A size mismatch");
    assert_eq!(b.len(), k * n, "gemm_accumulate B size mismatch");
    accumulate_band(a, b, out, 0, k, n, n, 0);
}

/// `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]` → `C: [m, n]`.
///
/// # Panics
///
/// Panics if either operand is not rank 2 or the leading dimensions disagree.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (ka, m) = a.shape().as_matrix();
    let (kb, n) = b.shape().as_matrix();
    assert_eq!(ka, kb, "matmul_tn leading dimension mismatch: {} vs {}", a.shape(), b.shape());
    let k = ka;
    let mut c = Tensor::zeros(&[m, n]);
    let a_data = a.data();
    let b_data = b.data();
    par_row_bands(c.data_mut(), n, |first_row, band| {
        // gather the strided A column once per output row (O(k), negligible
        // next to the O(k·n) product) so the blocked contiguous micro-kernel
        // applies unchanged
        let mut a_col = vec![0.0f32; k];
        for (bi, c_row) in band.chunks_mut(n).enumerate() {
            let i = first_row + bi; // column index of A = row index of C
            for (kk, slot) in a_col.iter_mut().enumerate() {
                *slot = a_data[kk * m + i];
            }
            accumulate_band(&a_col, b_data, c_row, 0, k, n, n, 0);
        }
    });
    c
}

/// `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]` → `C: [m, n]`.
///
/// # Panics
///
/// Panics if either operand is not rank 2 or the trailing dimensions disagree.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = a.shape().as_matrix();
    let (n, kb) = b.shape().as_matrix();
    assert_eq!(ka, kb, "matmul_nt trailing dimension mismatch: {} vs {}", a.shape(), b.shape());
    let mut c = Tensor::zeros(&[m, n]);
    matmul_nt_into(a, b, &mut c);
    c
}

/// `C = A · Bᵀ` written into a preallocated output: every element of `c` is
/// overwritten (not accumulated), so callers may pass recycled scratch
/// storage. This is the linear layer's forward kernel.
///
/// # Panics
///
/// Panics on any rank or dimension mismatch between `a`, `b` and `c`.
pub fn matmul_nt_into(a: &Tensor, b: &Tensor, c: &mut Tensor) {
    let (m, ka) = a.shape().as_matrix();
    let (n, kb) = b.shape().as_matrix();
    let (mc, nc) = c.shape().as_matrix();
    assert_eq!(ka, kb, "matmul_nt trailing dimension mismatch: {} vs {}", a.shape(), b.shape());
    assert_eq!((m, n), (mc, nc), "matmul_nt output shape mismatch");
    let k = ka;
    let a_data = a.data();
    let b_data = b.data();
    par_row_bands(c.data_mut(), n, |first_row, band| {
        // tile the band's rows so one L1-resident B row serves a whole tile
        // of dot products before the next B row is streamed in; each dot
        // product remains a single ascending-k accumulator chain
        let rows = band.len() / n;
        let mut r0 = 0;
        while r0 < rows {
            let r1 = (r0 + NT_ROW_TILE).min(rows);
            for j in 0..n {
                let b_row = &b_data[j * k..(j + 1) * k];
                for r in r0..r1 {
                    let i = first_row + r;
                    let a_row = &a_data[i * k..(i + 1) * k];
                    let mut acc = 0.0f32;
                    for (&a_v, &b_v) in a_row.iter().zip(b_row) {
                        acc += a_v * b_v;
                    }
                    band[r * n + j] = acc;
                }
            }
            r0 = r1;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.shape().as_matrix();
        let (_, n) = b.shape().as_matrix();
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.at2(i, kk) * b.at2(kk, j);
                }
                c.data_mut()[i * n + j] = acc;
            }
        }
        c
    }

    fn arange(dims: &[usize]) -> Tensor {
        let vol: usize = dims.iter().product();
        Tensor::from_vec((0..vol).map(|x| (x as f32 * 0.37).sin()).collect(), dims).unwrap()
    }

    fn bits(t: &Tensor) -> Vec<u32> {
        t.data().iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn matmul_matches_naive() {
        let a = arange(&[7, 5]);
        let b = arange(&[5, 9]);
        assert!(matmul(&a, &b).approx_eq(&naive_matmul(&a, &b), 1e-5));
    }

    #[test]
    fn matmul_matches_naive_bitwise() {
        // nonzero data: the zero-skip never fires, so the blocked kernel must
        // replay the naive kernel's exact rounding sequence
        let a = arange(&[5, 7]);
        let b = arange(&[7, 6]);
        assert_eq!(bits(&matmul(&a, &b)), bits(&naive_matmul(&a, &b)));
    }

    #[test]
    fn matmul_bitwise_across_tile_boundaries() {
        // k and n straddle K_BLOCK and J_TILE so every block-edge code path
        // (full 4-unroll, remainder, partial strips) is exercised
        for (m, k, n) in [(3, K_BLOCK + 3, J_TILE + 5), (2, 4 * K_BLOCK + 1, 17), (1, 3, 2 * J_TILE)] {
            let a = arange(&[m, k]);
            let b = arange(&[k, n]);
            assert_eq!(bits(&matmul(&a, &b)), bits(&naive_matmul(&a, &b)), "[{m},{k}]x[{k},{n}]");
        }
    }

    #[test]
    fn zero_coefficients_are_skipped_not_multiplied() {
        // a zero a_ik must contribute nothing even when B holds non-finite
        // values (injected faults): 0·inf would poison the row with NaN
        let mut a = arange(&[2, 5]);
        a.data_mut()[1] = 0.0; // row 0, k=1
        a.data_mut()[7] = 0.0; // row 1, k=2
        let mut b = arange(&[5, 4]);
        b.data_mut()[4] = f32::INFINITY; // k=1, column 0
        b.data_mut()[9] = f32::NAN; // k=2, column 1
        let c = matmul(&a, &b);
        assert!(c.at2(0, 0).is_finite(), "zero-skip must ignore the inf element");
        assert!(c.at2(1, 1).is_finite(), "zero-skip must ignore the NaN element");
        assert!(c.at2(1, 0).is_infinite(), "non-skipped inf must still propagate");
        assert!(c.at2(0, 1).is_nan(), "non-skipped NaN must still propagate");
    }

    #[test]
    fn matmul_identity() {
        let a = arange(&[4, 4]);
        assert!(matmul(&a, &Tensor::eye(4)).approx_eq(&a, 1e-6));
        assert!(matmul(&Tensor::eye(4), &a).approx_eq(&a, 1e-6));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = arange(&[6, 3]); // Aᵀ is [3, 6]
        let b = arange(&[6, 4]);
        let expected = {
            // materialize Aᵀ and multiply naively
            let (k, m) = a.shape().as_matrix();
            let mut at = Tensor::zeros(&[m, k]);
            for i in 0..k {
                for j in 0..m {
                    at.data_mut()[j * k + i] = a.at2(i, j);
                }
            }
            naive_matmul(&at, &b)
        };
        assert!(matmul_tn(&a, &b).approx_eq(&expected, 1e-5));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = arange(&[5, 3]);
        let b = arange(&[7, 3]); // Bᵀ is [3, 7]
        let expected = {
            let (n, k) = b.shape().as_matrix();
            let mut bt = Tensor::zeros(&[k, n]);
            for i in 0..n {
                for j in 0..k {
                    bt.data_mut()[j * n + i] = b.at2(i, j);
                }
            }
            naive_matmul(&a, &bt)
        };
        assert!(matmul_nt(&a, &b).approx_eq(&expected, 1e-5));
    }

    #[test]
    fn matmul_nt_row_tiling_is_bit_invariant() {
        // more rows than NT_ROW_TILE: tiled and untiled element chains are
        // the same single ascending-k accumulator, so bits must match the
        // explicit per-element dot product
        let a = arange(&[3 * NT_ROW_TILE + 1, 9]);
        let b = arange(&[5, 9]);
        let c = matmul_nt(&a, &b);
        let (m, k) = a.shape().as_matrix();
        let (n, _) = b.shape().as_matrix();
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a.at2(i, kk) * b.at2(j, kk);
                }
                assert_eq!(c.at2(i, j).to_bits(), acc.to_bits(), "element ({i},{j})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_mismatch() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn matmul_into_accumulates() {
        let a = Tensor::eye(2);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let mut c = Tensor::ones(&[2, 2]);
        matmul_into(&a, &b, &mut c);
        assert_eq!(c.data(), &[2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn matmul_nt_into_overwrites() {
        let a = arange(&[3, 4]);
        let b = arange(&[5, 4]);
        let mut c = Tensor::filled(&[3, 5], 123.0); // recycled-scratch garbage
        matmul_nt_into(&a, &b, &mut c);
        assert_eq!(bits(&c), bits(&matmul_nt(&a, &b)));
    }

    #[test]
    fn gemm_accumulate_bitwise_matches_matmul_into() {
        // straddle K_BLOCK and J_TILE, seed the output nonzero: the exposed
        // slice core must replay matmul_into's exact rounding chain
        let (m, k, n) = (5, K_BLOCK + 7, J_TILE + 9);
        let a = arange(&[m, k]);
        let b = arange(&[k, n]);
        let mut via_tensor = Tensor::filled(&[m, n], 0.5);
        matmul_into(&a, &b, &mut via_tensor);
        let mut via_slices = vec![0.5f32; m * n];
        gemm_accumulate(a.data(), b.data(), &mut via_slices, k, n);
        let got: Vec<u32> = via_slices.iter().map(|x| x.to_bits()).collect();
        assert_eq!(got, bits(&via_tensor));
    }

    #[test]
    fn large_parallel_matmul_consistent() {
        // Exercise the multi-band path (more rows than threads).
        let a = arange(&[64, 33]);
        let b = arange(&[33, 17]);
        assert!(matmul(&a, &b).approx_eq(&naive_matmul(&a, &b), 1e-4));
    }

    #[test]
    fn wide_short_product_uses_column_parallel_path_correctly() {
        // m = 3 rows (< threads on multi-core hosts), n = 5000 columns:
        // triggers the column-parallel kernel there; verify against naive.
        let a = arange(&[3, 7]);
        let b = arange(&[7, 5000]);
        let got = matmul(&a, &b);
        let expect = naive_matmul(&a, &b);
        assert!(got.approx_eq(&expect, 1e-3));
    }

    #[test]
    fn column_parallel_kernel_direct() {
        // call the kernel directly so it is covered even on single-core
        // hosts where the dispatch condition never selects it
        let a = arange(&[3, 7]);
        let b = arange(&[7, 4500]);
        let mut c = Tensor::zeros(&[3, 4500]);
        matmul_into_col_parallel(a.data(), b.data(), c.data_mut(), 3, 7, 4500);
        assert!(c.approx_eq(&naive_matmul(&a, &b), 1e-3));
    }

    #[test]
    fn column_parallel_kernel_bitwise_matches_row_kernel() {
        // the col path seeds its local bands from C, so both paths replay
        // the same per-element rounding chain — even when C starts nonzero —
        // and the thread-count-dependent dispatch can never change bits
        let a = arange(&[3, 39]);
        let b = arange(&[39, 4400]);
        for seed in [0.0f32, 1e8] {
            let mut col = Tensor::filled(&[3, 4400], seed);
            matmul_into_col_parallel(a.data(), b.data(), col.data_mut(), 3, 39, 4400);
            let mut row = Tensor::filled(&[3, 4400], seed);
            par_row_bands(row.data_mut(), 4400, |first_row, band| {
                accumulate_band(a.data(), b.data(), band, first_row, 39, 4400, 4400, 0);
            });
            assert_eq!(bits(&col), bits(&row), "C seeded with {seed}");
        }
    }

    #[test]
    fn wide_short_product_accumulates_into_existing_values() {
        let a = arange(&[2, 4]);
        let b = arange(&[4, 4200]);
        let mut c = Tensor::ones(&[2, 4200]);
        matmul_into(&a, &b, &mut c);
        let mut expect = naive_matmul(&a, &b);
        for v in expect.data_mut() {
            *v += 1.0;
        }
        assert!(c.approx_eq(&expect, 1e-3));
    }
}
