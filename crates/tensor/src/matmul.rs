//! Matrix products: the compute core of the workspace.
//!
//! Three variants cover everything `ftclip-nn` needs:
//!
//! * [`matmul`]    — `C = A · B`       (forward passes)
//! * [`matmul_tn`] — `C = Aᵀ · B`      (input-gradient of linear layers)
//! * [`matmul_nt`] — `C = A · Bᵀ`      (weight-gradient of linear layers)
//!
//! All variants parallelize over contiguous bands of output rows
//! ([`crate::par_row_bands`]) and use an `i-k-j` loop order so the innermost
//! loop streams through contiguous memory of both the output row and one
//! operand row.

use crate::par::par_row_bands;
use crate::Tensor;

/// `C = A · B` for `A: [m, k]`, `B: [k, n]` → `C: [m, n]`.
///
/// # Panics
///
/// Panics if either operand is not rank 2 or the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use ftclip_tensor::{matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
/// assert_eq!(matmul(&a, &b).data(), &[19.0, 22.0, 43.0, 50.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = a.shape().as_matrix();
    let (kb, n) = b.shape().as_matrix();
    assert_eq!(ka, kb, "matmul inner dimension mismatch: {} vs {}", a.shape(), b.shape());
    let mut c = Tensor::zeros(&[m, n]);
    matmul_into(a, b, &mut c);
    c
}

/// `C += A · B`, writing into a preallocated output (used by the conv kernels
/// to avoid reallocating per batch item).
///
/// # Panics
///
/// Panics on any rank or dimension mismatch between `a`, `b` and `c`.
pub fn matmul_into(a: &Tensor, b: &Tensor, c: &mut Tensor) {
    let (m, ka) = a.shape().as_matrix();
    let (kb, n) = b.shape().as_matrix();
    let (mc, nc) = c.shape().as_matrix();
    assert_eq!(ka, kb, "matmul inner dimension mismatch");
    assert_eq!((m, n), (mc, nc), "matmul output shape mismatch");
    let k = ka;
    // Wide-and-short products (few output rows, huge column count — the
    // batched-convolution shape) parallelize poorly over rows; split the
    // columns across threads instead.
    if m < crate::par::num_threads() && n >= 4096 {
        matmul_into_col_parallel(a.data(), b.data(), c.data_mut(), m, k, n);
        return;
    }
    let a_data = a.data();
    let b_data = b.data();
    par_row_bands(c.data_mut(), n, |first_row, band| {
        for (bi, c_row) in band.chunks_mut(n).enumerate() {
            let i = first_row + bi;
            let a_row = &a_data[i * k..(i + 1) * k];
            for (kk, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = &b_data[kk * n..(kk + 1) * n];
                for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                    *c_v += a_ik * b_v;
                }
            }
        }
    });
}

/// Column-parallel kernel for `m < threads`: each worker owns a contiguous
/// column band of every output row, computes it into a local buffer
/// (L2-resident) and the results are assembled afterwards.
fn matmul_into_col_parallel(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let threads = crate::par::num_threads();
    let band = n.div_ceil(threads);
    let results: Vec<(usize, usize, Vec<f32>)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let j0 = t * band;
            if j0 >= n {
                break;
            }
            let j1 = ((t + 1) * band).min(n);
            let width = j1 - j0;
            handles.push(scope.spawn(move || {
                let mut local = vec![0.0f32; m * width];
                for i in 0..m {
                    let a_row = &a[i * k..(i + 1) * k];
                    let c_row = &mut local[i * width..(i + 1) * width];
                    for (kk, &a_ik) in a_row.iter().enumerate() {
                        if a_ik == 0.0 {
                            continue;
                        }
                        let b_seg = &b[kk * n + j0..kk * n + j1];
                        for (c_v, &b_v) in c_row.iter_mut().zip(b_seg) {
                            *c_v += a_ik * b_v;
                        }
                    }
                }
                (j0, width, local)
            }));
        }
        handles.into_iter().map(|h| h.join().expect("matmul worker panicked")).collect()
    });
    for (j0, width, local) in results {
        for i in 0..m {
            let dst = &mut c[i * n + j0..i * n + j0 + width];
            let src = &local[i * width..(i + 1) * width];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
    }
}

/// `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]` → `C: [m, n]`.
///
/// # Panics
///
/// Panics if either operand is not rank 2 or the leading dimensions disagree.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (ka, m) = a.shape().as_matrix();
    let (kb, n) = b.shape().as_matrix();
    assert_eq!(ka, kb, "matmul_tn leading dimension mismatch: {} vs {}", a.shape(), b.shape());
    let k = ka;
    let mut c = Tensor::zeros(&[m, n]);
    let a_data = a.data();
    let b_data = b.data();
    par_row_bands(c.data_mut(), n, |first_row, band| {
        for (bi, c_row) in band.chunks_mut(n).enumerate() {
            let i = first_row + bi; // column index of A = row index of C
            for kk in 0..k {
                let a_ki = a_data[kk * m + i];
                if a_ki == 0.0 {
                    continue;
                }
                let b_row = &b_data[kk * n..(kk + 1) * n];
                for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                    *c_v += a_ki * b_v;
                }
            }
        }
    });
    c
}

/// `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]` → `C: [m, n]`.
///
/// # Panics
///
/// Panics if either operand is not rank 2 or the trailing dimensions disagree.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, ka) = a.shape().as_matrix();
    let (n, kb) = b.shape().as_matrix();
    assert_eq!(ka, kb, "matmul_nt trailing dimension mismatch: {} vs {}", a.shape(), b.shape());
    let k = ka;
    let mut c = Tensor::zeros(&[m, n]);
    let a_data = a.data();
    let b_data = b.data();
    par_row_bands(c.data_mut(), n, |first_row, band| {
        for (bi, c_row) in band.chunks_mut(n).enumerate() {
            let i = first_row + bi;
            let a_row = &a_data[i * k..(i + 1) * k];
            for (j, c_v) in c_row.iter_mut().enumerate() {
                let b_row = &b_data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&a_v, &b_v) in a_row.iter().zip(b_row) {
                    acc += a_v * b_v;
                }
                *c_v = acc;
            }
        }
    });
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.shape().as_matrix();
        let (_, n) = b.shape().as_matrix();
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.at2(i, kk) * b.at2(kk, j);
                }
                c.data_mut()[i * n + j] = acc;
            }
        }
        c
    }

    fn arange(dims: &[usize]) -> Tensor {
        let vol: usize = dims.iter().product();
        Tensor::from_vec((0..vol).map(|x| (x as f32 * 0.37).sin()).collect(), dims).unwrap()
    }

    #[test]
    fn matmul_matches_naive() {
        let a = arange(&[7, 5]);
        let b = arange(&[5, 9]);
        assert!(matmul(&a, &b).approx_eq(&naive_matmul(&a, &b), 1e-5));
    }

    #[test]
    fn matmul_identity() {
        let a = arange(&[4, 4]);
        assert!(matmul(&a, &Tensor::eye(4)).approx_eq(&a, 1e-6));
        assert!(matmul(&Tensor::eye(4), &a).approx_eq(&a, 1e-6));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = arange(&[6, 3]); // Aᵀ is [3, 6]
        let b = arange(&[6, 4]);
        let expected = {
            // materialize Aᵀ and multiply naively
            let (k, m) = a.shape().as_matrix();
            let mut at = Tensor::zeros(&[m, k]);
            for i in 0..k {
                for j in 0..m {
                    at.data_mut()[j * k + i] = a.at2(i, j);
                }
            }
            naive_matmul(&at, &b)
        };
        assert!(matmul_tn(&a, &b).approx_eq(&expected, 1e-5));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = arange(&[5, 3]);
        let b = arange(&[7, 3]); // Bᵀ is [3, 7]
        let expected = {
            let (n, k) = b.shape().as_matrix();
            let mut bt = Tensor::zeros(&[k, n]);
            for i in 0..n {
                for j in 0..k {
                    bt.data_mut()[j * n + i] = b.at2(i, j);
                }
            }
            naive_matmul(&a, &bt)
        };
        assert!(matmul_nt(&a, &b).approx_eq(&expected, 1e-5));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_mismatch() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn matmul_into_accumulates() {
        let a = Tensor::eye(2);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let mut c = Tensor::ones(&[2, 2]);
        matmul_into(&a, &b, &mut c);
        assert_eq!(c.data(), &[2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn large_parallel_matmul_consistent() {
        // Exercise the multi-band path (more rows than threads).
        let a = arange(&[64, 33]);
        let b = arange(&[33, 17]);
        assert!(matmul(&a, &b).approx_eq(&naive_matmul(&a, &b), 1e-4));
    }

    #[test]
    fn wide_short_product_uses_column_parallel_path_correctly() {
        // m = 3 rows (< threads on multi-core hosts), n = 5000 columns:
        // triggers the column-parallel kernel there; verify against naive.
        let a = arange(&[3, 7]);
        let b = arange(&[7, 5000]);
        let got = matmul(&a, &b);
        let expect = naive_matmul(&a, &b);
        assert!(got.approx_eq(&expect, 1e-3));
    }

    #[test]
    fn column_parallel_kernel_direct() {
        // call the kernel directly so it is covered even on single-core
        // hosts where the dispatch condition never selects it
        let a = arange(&[3, 7]);
        let b = arange(&[7, 4500]);
        let mut c = Tensor::zeros(&[3, 4500]);
        matmul_into_col_parallel(a.data(), b.data(), c.data_mut(), 3, 7, 4500);
        assert!(c.approx_eq(&naive_matmul(&a, &b), 1e-3));
    }

    #[test]
    fn wide_short_product_accumulates_into_existing_values() {
        let a = arange(&[2, 4]);
        let b = arange(&[4, 4200]);
        let mut c = Tensor::ones(&[2, 4200]);
        matmul_into(&a, &b, &mut c);
        let mut expect = naive_matmul(&a, &b);
        for v in expect.data_mut() {
            *v += 1.0;
        }
        assert!(c.approx_eq(&expect, 1e-3));
    }
}
