use std::fmt;

use crate::TensorError;

/// The dimension list of a [`crate::Tensor`].
///
/// A `Shape` is an ordered list of dimension sizes, e.g. `[N, C, H, W]` for a
/// batch of feature maps. Dimensions of size zero are permitted only through
/// the fallible constructor and are rejected there, so every constructed
/// `Shape` has a strictly positive volume.
///
/// # Example
///
/// ```
/// use ftclip_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4, 4]).unwrap();
/// assert_eq!(s.rank(), 4);
/// assert_eq!(s.volume(), 96);
/// assert_eq!(s[1], 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a dimension list.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] if `dims` is empty or any
    /// dimension is zero.
    pub fn new(dims: &[usize]) -> Result<Self, TensorError> {
        if dims.is_empty() {
            return Err(TensorError::InvalidShape {
                reason: "shape must have at least one dimension".into(),
            });
        }
        if dims.contains(&0) {
            return Err(TensorError::InvalidShape { reason: format!("zero-sized dimension in {dims:?}") });
        }
        Ok(Shape(dims.to_vec()))
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of all dimensions).
    pub fn volume(&self) -> usize {
        self.0.iter().product()
    }

    /// The dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Returns the size of dimension `i`, or `None` when `i >= rank()`.
    pub fn get(&self, i: usize) -> Option<usize> {
        self.0.get(i).copied()
    }

    /// Interprets the shape as a matrix `[rows, cols]`.
    ///
    /// # Panics
    ///
    /// Panics if the rank is not 2.
    pub fn as_matrix(&self) -> (usize, usize) {
        assert_eq!(self.rank(), 2, "expected rank-2 shape, got {self}");
        (self.0[0], self.0[1])
    }

    /// Interprets the shape as an NCHW batch `[n, c, h, w]`.
    ///
    /// # Panics
    ///
    /// Panics if the rank is not 4.
    pub fn as_nchw(&self) -> (usize, usize, usize, usize) {
        assert_eq!(self.rank(), 4, "expected rank-4 shape, got {self}");
        (self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "×")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl std::ops::Index<usize> for Shape {
    type Output = usize;

    fn index(&self, i: usize) -> &usize {
        &self.0[i]
    }
}

impl TryFrom<&[usize]> for Shape {
    type Error = TensorError;

    fn try_from(dims: &[usize]) -> Result<Self, TensorError> {
        Shape::new(dims)
    }
}

impl TryFrom<Vec<usize>> for Shape {
    type Error = TensorError;

    fn try_from(dims: Vec<usize>) -> Result<Self, TensorError> {
        Shape::new(&dims)
    }
}

impl AsRef<[usize]> for Shape {
    fn as_ref(&self) -> &[usize] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_empty() {
        assert!(Shape::new(&[]).is_err());
    }

    #[test]
    fn new_rejects_zero_dim() {
        assert!(Shape::new(&[2, 0, 3]).is_err());
    }

    #[test]
    fn volume_is_product() {
        let s = Shape::new(&[2, 3, 4]).unwrap();
        assert_eq!(s.volume(), 24);
    }

    #[test]
    fn display_uses_times_sign() {
        let s = Shape::new(&[1, 28, 28]).unwrap();
        assert_eq!(s.to_string(), "[1×28×28]");
    }

    #[test]
    fn as_matrix_roundtrip() {
        let s = Shape::new(&[5, 7]).unwrap();
        assert_eq!(s.as_matrix(), (5, 7));
    }

    #[test]
    #[should_panic(expected = "rank-2")]
    fn as_matrix_panics_on_rank3() {
        Shape::new(&[1, 2, 3]).unwrap().as_matrix();
    }

    #[test]
    fn as_nchw_roundtrip() {
        let s = Shape::new(&[8, 3, 32, 32]).unwrap();
        assert_eq!(s.as_nchw(), (8, 3, 32, 32));
    }

    #[test]
    fn try_from_slice() {
        let s: Shape = (&[2usize, 2][..]).try_into().unwrap();
        assert_eq!(s.volume(), 4);
    }

    #[test]
    fn index_and_get_agree() {
        let s = Shape::new(&[4, 5, 6]).unwrap();
        assert_eq!(s[2], 6);
        assert_eq!(s.get(2), Some(6));
        assert_eq!(s.get(3), None);
    }
}
