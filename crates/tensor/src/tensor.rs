use std::fmt;

use crate::{Shape, TensorError};

/// An owned, contiguous, row-major `f32` tensor.
///
/// `Tensor` is the single numeric container used throughout the FT-ClipAct
/// workspace: network parameters, activations, gradients and dataset batches
/// are all `Tensor`s. Storage is always contiguous, which is what allows the
/// fault-injection framework to treat a parameter tensor as a flat array of
/// IEEE-754 words and flip individual bits in it.
///
/// # Example
///
/// ```
/// use ftclip_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// assert!(t.iter().all(|&x| x == 0.0));
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or contains a zero-sized dimension.
    pub fn zeros(dims: &[usize]) -> Self {
        Tensor::filled(dims, 0.0)
    }

    /// Creates a tensor filled with ones.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or contains a zero-sized dimension.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::filled(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or contains a zero-sized dimension.
    pub fn filled(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims).expect("invalid tensor shape");
        let data = vec![value; shape.volume()];
        Tensor { shape, data }
    }

    /// Creates the `n × n` identity matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor that takes ownership of `data`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the shape volume and [`TensorError::InvalidShape`] for malformed
    /// shapes.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims)?;
        if shape.volume() != data.len() {
            return Err(TensorError::LengthMismatch { expected: shape.volume(), got: data.len() });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a rank-1 tensor from a slice.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor::from_vec(data.to_vec(), &[data.len()]).expect("non-empty slice")
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The shape of the tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor has no elements. Shapes forbid zero-sized
    /// dimensions, so this is always `false`; it exists for API completeness.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying storage in row-major order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying storage in row-major order.
    ///
    /// This is the hook used by the fault-injection framework and the
    /// optimizers: both need raw access to the IEEE-754 words of a parameter
    /// tensor.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Iterator over elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }

    /// Element at a rank-2 index.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the index is out of bounds.
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        let (rows, cols) = self.shape.as_matrix();
        assert!(r < rows && c < cols, "index ({r},{c}) out of bounds for {rows}x{cols}");
        self.data[r * cols + c]
    }

    /// Element at a rank-4 (NCHW) index.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4 or the index is out of bounds.
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        let (nn, cc, hh, ww) = self.shape.as_nchw();
        assert!(n < nn && c < cc && h < hh && w < ww, "index out of bounds");
        self.data[((n * cc + c) * hh + h) * ww + w]
    }

    /// Sets the element at a rank-4 (NCHW) index.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4 or the index is out of bounds.
    pub fn set4(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        let (nn, cc, hh, ww) = self.shape.as_nchw();
        assert!(n < nn && c < cc && h < hh && w < ww, "index out of bounds");
        self.data[((n * cc + c) * hh + h) * ww + w] = v;
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the volumes differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor, TensorError> {
        Tensor::from_vec(self.data.clone(), dims)
    }

    /// Reshapes in place without copying the data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the volumes differ.
    pub fn reshape_in_place(&mut self, dims: &[usize]) -> Result<(), TensorError> {
        let shape = Shape::new(dims)?;
        if shape.volume() != self.data.len() {
            return Err(TensorError::LengthMismatch { expected: shape.volume(), got: self.data.len() });
        }
        self.shape = shape;
        Ok(())
    }

    /// Copies rows `range` of the leading (batch) dimension into a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the leading dimension.
    pub fn slice_batch(&self, range: std::ops::Range<usize>) -> Tensor {
        let n = self.shape[0];
        assert!(range.end <= n, "batch range {range:?} out of bounds for leading dim {n}");
        assert!(range.start < range.end, "empty batch range");
        let stride: usize = self.shape.dims()[1..].iter().product();
        let mut dims = self.shape.dims().to_vec();
        dims[0] = range.end - range.start;
        let data = self.data[range.start * stride..range.end * stride].to_vec();
        Tensor::from_vec(data, &dims).expect("slice volume matches")
    }

    /// Stacks tensors of identical shape along a new leading dimension.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or the shapes differ.
    pub fn stack(items: &[&Tensor]) -> Tensor {
        assert!(!items.is_empty(), "cannot stack zero tensors");
        let inner = items[0].shape.dims();
        let mut data = Vec::with_capacity(items.len() * items[0].len());
        for t in items {
            assert_eq!(t.shape.dims(), inner, "stack requires identical shapes");
            data.extend_from_slice(&t.data);
        }
        let mut dims = vec![items.len()];
        dims.extend_from_slice(inner);
        Tensor::from_vec(data, &dims).expect("stack volume matches")
    }

    // ------------------------------------------------------------------
    // Elementwise arithmetic
    // ------------------------------------------------------------------

    /// Returns a new tensor with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let data = self.data.iter().map(|&x| f(x)).collect();
        Tensor { shape: self.shape.clone(), data }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Returns `self[i] op other[i]` for every element.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip_with shape mismatch: {} vs {}", self.shape, other.shape);
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect();
        Tensor { shape: self.shape.clone(), data }
    }

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a * b)
    }

    /// `self += alpha * other`, the BLAS `axpy` primitive used by the
    /// optimizers.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Sets every element to zero, preserving the shape.
    pub fn fill(&mut self, value: f32) {
        for x in &mut self.data {
            *x = value;
        }
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.len() as f32
    }

    /// Maximum element. NaNs are ignored; returns `f32::NEG_INFINITY` if all
    /// elements are NaN.
    pub fn max(&self) -> f32 {
        self.data
            .iter()
            .copied()
            .filter(|x| !x.is_nan())
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element. NaNs are ignored; returns `f32::INFINITY` if all
    /// elements are NaN.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().filter(|x| !x.is_nan()).fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element of each row of a rank-2 tensor.
    ///
    /// This is the classification decision: for logits of shape
    /// `[batch, classes]` it returns the predicted class per sample. Ties are
    /// broken toward the lower index; NaN logits never win, and an all-NaN row
    /// (which faulted networks do produce) yields class 0.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn argmax_rows(&self) -> Vec<usize> {
        let (rows, cols) = self.shape.as_matrix();
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &self.data[r * cols..(r + 1) * cols];
            let mut best = 0usize;
            let mut best_v = f32::NEG_INFINITY;
            for (i, &v) in row.iter().enumerate() {
                if v > best_v {
                    best_v = v;
                    best = i;
                }
            }
            out.push(best);
        }
        out
    }

    /// Squared L2 norm of all elements.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Returns `true` when every element differs from `other` by at most
    /// `tol` (absolute). Useful in tests.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        assert_eq!(self.shape, other.shape, "approx_eq shape mismatch");
        self.data.iter().zip(&other.data).all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.len() <= 8 {
            write!(f, "{:?}", self.data)
        } else {
            write!(
                f,
                "[{:.4}, {:.4}, … ; n={} mean={:.4}]",
                self.data[0],
                self.data[1],
                self.len(),
                self.mean()
            )
        }
    }
}

impl Default for Tensor {
    /// A single-element zero tensor of shape `[1]`.
    fn default() -> Self {
        Tensor::zeros(&[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = Tensor::zeros(&[2, 2]);
        let o = Tensor::ones(&[2, 2]);
        assert_eq!(z.sum(), 0.0);
        assert_eq!(o.sum(), 4.0);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![1.0; 3], &[2, 2]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 4], &[2, 2]).is_ok());
    }

    #[test]
    fn eye_diagonal() {
        let e = Tensor::eye(3);
        assert_eq!(e.at2(0, 0), 1.0);
        assert_eq!(e.at2(1, 2), 0.0);
        assert_eq!(e.sum(), 3.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let r = t.reshape(&[2, 2]).unwrap();
        assert_eq!(r.at2(1, 0), 3.0);
        assert!(t.reshape(&[3, 2]).is_err());
    }

    #[test]
    fn slice_batch_copies_rows() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]).unwrap();
        let s = t.slice_batch(1..3);
        assert_eq!(s.shape().dims(), &[2, 4]);
        assert_eq!(s.at2(0, 0), 4.0);
        assert_eq!(s.at2(1, 3), 11.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_batch_checks_range() {
        Tensor::zeros(&[2, 2]).slice_batch(1..3);
    }

    #[test]
    fn stack_adds_leading_dim() {
        let a = Tensor::ones(&[2, 2]);
        let b = Tensor::zeros(&[2, 2]);
        let s = Tensor::stack(&[&a, &b]);
        assert_eq!(s.shape().dims(), &[2, 2, 2]);
        assert_eq!(s.sum(), 4.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0, 5.0]);
        assert_eq!(a.add(&b).data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, 10.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_slice(&[1.0, 1.0]);
        let g = Tensor::from_slice(&[2.0, 4.0]);
        a.axpy(-0.5, &g);
        assert_eq!(a.data(), &[0.0, -1.0]);
    }

    #[test]
    fn argmax_rows_basic() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.5, 0.2, 0.3], &[2, 3]).unwrap();
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn argmax_rows_ignores_nan() {
        let t = Tensor::from_vec(vec![f32::NAN, 0.5, 0.1, f32::NAN, f32::NAN, f32::NAN], &[2, 3]).unwrap();
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn max_ignores_nan() {
        let t = Tensor::from_slice(&[1.0, f32::NAN, 3.0]);
        assert_eq!(t.max(), 3.0);
    }

    #[test]
    fn at4_row_major_layout() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 2, 2]).unwrap();
        // element (n=1, c=2, h=1, w=0) = ((1*3+2)*2+1)*2+0 = 22
        assert_eq!(t.at4(1, 2, 1, 0), 22.0);
    }

    #[test]
    fn debug_is_never_empty() {
        let t = Tensor::zeros(&[1]);
        assert!(!format!("{t:?}").is_empty());
        let big = Tensor::zeros(&[100]);
        assert!(format!("{big:?}").contains("n=100"));
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[1.0005, 2.0]);
        assert!(a.approx_eq(&b, 1e-3));
        assert!(!a.approx_eq(&b, 1e-5));
    }
}
