//! Random weight initializers.
//!
//! All initializers take an explicit RNG so every experiment in the workspace
//! is reproducible from a single seed. The normal sampler uses Box–Muller so
//! no distribution crate is needed.

use rand::Rng;

use crate::Tensor;

/// He (Kaiming) normal initialization: `N(0, sqrt(2 / fan_in))`.
///
/// The standard initializer for ReLU networks; all conv and FC layers in the
/// model zoo use it.
///
/// # Panics
///
/// Panics if `fan_in == 0` or the shape is invalid.
pub fn he_normal<R: Rng + ?Sized>(dims: &[usize], fan_in: usize, rng: &mut R) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let std = (2.0 / fan_in as f32).sqrt();
    normal(dims, 0.0, std, rng)
}

/// Xavier/Glorot uniform initialization: `U(±sqrt(6 / (fan_in + fan_out)))`.
///
/// # Panics
///
/// Panics if `fan_in + fan_out == 0` or the shape is invalid.
pub fn xavier_uniform<R: Rng + ?Sized>(dims: &[usize], fan_in: usize, fan_out: usize, rng: &mut R) -> Tensor {
    assert!(fan_in + fan_out > 0, "fan_in + fan_out must be positive");
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform_init(dims, -bound, bound, rng)
}

/// Uniform initialization on `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi` or the shape is invalid.
pub fn uniform_init<R: Rng + ?Sized>(dims: &[usize], lo: f32, hi: f32, rng: &mut R) -> Tensor {
    assert!(lo < hi, "empty uniform range [{lo}, {hi})");
    let volume: usize = dims.iter().product();
    let data = (0..volume).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(data, dims).expect("volume matches by construction")
}

/// Normal initialization `N(mean, std²)` via Box–Muller.
fn normal<R: Rng + ?Sized>(dims: &[usize], mean: f32, std: f32, rng: &mut R) -> Tensor {
    let volume: usize = dims.iter().product();
    let mut data = Vec::with_capacity(volume);
    while data.len() < volume {
        let u1: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(mean + std * r * theta.cos());
        if data.len() < volume {
            data.push(mean + std * r * theta.sin());
        }
    }
    Tensor::from_vec(data, dims).expect("volume matches by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn he_normal_std_close_to_target() {
        let mut rng = StdRng::seed_from_u64(7);
        let fan_in = 128;
        let t = he_normal(&[10_000], fan_in, &mut rng);
        let mean = t.mean();
        let var = t.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / t.len() as f32;
        let target = 2.0 / fan_in as f32;
        assert!((mean).abs() < 0.01, "mean {mean} too far from 0");
        assert!((var - target).abs() / target < 0.1, "var {var} vs target {target}");
    }

    #[test]
    fn xavier_uniform_within_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = xavier_uniform(&[1000], 50, 50, &mut rng);
        let bound = (6.0f32 / 100.0).sqrt();
        assert!(t.max() <= bound && t.min() >= -bound);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = he_normal(&[64], 8, &mut StdRng::seed_from_u64(42));
        let b = he_normal(&[64], 8, &mut StdRng::seed_from_u64(42));
        assert_eq!(a.data(), b.data());
    }

    #[test]
    #[should_panic(expected = "empty uniform range")]
    fn uniform_rejects_empty_range() {
        uniform_init(&[4], 1.0, 1.0, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn weights_concentrated_near_zero() {
        // The FT-ClipAct premise: trained/initialized weights sit near zero,
        // so MSB exponent flips create huge outliers. Sanity-check magnitude.
        let mut rng = StdRng::seed_from_u64(11);
        let t = he_normal(&[4096], 256, &mut rng);
        assert!(t.max() < 1.0 && t.min() > -1.0);
    }
}
