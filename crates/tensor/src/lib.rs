//! Dense `f32` tensor substrate for the FT-ClipAct reproduction.
//!
//! This crate provides the numeric foundation on which the rest of the
//! workspace (the CNN engine in `ftclip-nn`, the fault-injection framework in
//! `ftclip-fault` and the FT-ClipAct methodology in `ftclip-core`) is built:
//!
//! * [`Tensor`] — an owned, contiguous, row-major `f32` tensor with an
//!   arbitrary number of dimensions (networks use NCHW).
//! * [`Shape`] — a lightweight dimension list with explicit validation.
//! * [`matmul`], [`matmul_tn`], [`matmul_nt`] — cache-blocked, multi-threaded
//!   matrix products (the only compute-heavy primitives the workspace needs).
//! * [`im2col`]/[`col2im`] — the standard convolution lowering used by
//!   `ftclip-nn`'s `Conv2d` forward and backward passes.
//!
//! # Example
//!
//! ```
//! use ftclip_tensor::{Tensor, matmul};
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
//! let b = Tensor::eye(2);
//! let c = matmul(&a, &b);
//! assert_eq!(c.data(), a.data());
//! ```
//!
//! # Design notes
//!
//! * Everything is `f32`: the paper injects bit flips into IEEE-754
//!   single-precision weight words, so the memory representation of
//!   parameters must be exactly `f32`.
//! * `unsafe` is denied workspace-wide with one sanctioned exception: the
//!   runtime-dispatched x86-64 SIMD bodies of the int8 kernels (see
//!   `int8::simd`), which `core::arch` makes unavoidably unsafe. Every
//!   other crate still forbids it outright.
//! * Threading uses `std::thread::scope`; no runtime dependency is needed.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod failpoint;
mod im2col;
mod init;
mod int8;
mod matmul;
mod par;
mod shape;
mod tensor;

pub use error::TensorError;
pub use im2col::{
    col2im, conv_output_size, im2col, im2col_batch, im2col_batch_into, im2col_image_overwrite, Conv2dGeometry,
};
pub use init::{he_normal, uniform_init, xavier_uniform};
pub use int8::{
    gemm_i8_accumulate, im2col_i16_pairs_image_overwrite, im2col_i8_image_overwrite, interleave_widen_pairs,
    matmul_i16_pairs_into, matmul_i8_nt_into,
};
pub use matmul::{gemm_accumulate, matmul, matmul_into, matmul_nt, matmul_nt_into, matmul_tn};
pub use par::{num_threads, par_row_bands, with_thread_limit};
pub use shape::Shape;
pub use tensor::Tensor;
