//! Int8 micro-kernels for the quantized inference path.
//!
//! The quantized engine (`ftclip_quant`) stores weights and activations as
//! `i8` and accumulates matrix products in `i32`. Unlike the `f32` kernels
//! in [`crate::matmul`], whose accumulation order is pinned element-by-element
//! to preserve bit-identity of the float path, integer addition is exact and
//! associative — these kernels are free to unroll and re-associate, which is
//! exactly what lets the int8 path autovectorize past the float path's
//! single-rounding-chain constraint. Every kernel below is still
//! deterministic: the same inputs always produce the same `i32` sums, in any
//! association order.
//!
//! Products are sign-extended before multiplying, so no intermediate can
//! overflow: `|i8·i8| ≤ 16384` and the reduction runs in `i32` (a dot product
//! would need `k > 2^17` same-sign maximal products to wrap, far beyond any
//! layer in the paper's models).

use crate::im2col::Conv2dGeometry;

/// `out[m,n] += a[m,k] · b[k,n]` over `i8` operands with `i32` accumulation.
///
/// Row-major, like [`crate::gemm_accumulate`]; `m` is implied by
/// `out.len() / n`. The inner loop processes four `k` taps per pass over the
/// output row, re-associating freely (exact in integer arithmetic).
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `(k, n)`.
pub fn gemm_i8_accumulate(a: &[i8], b: &[i8], out: &mut [i32], k: usize, n: usize) {
    assert!(n > 0, "gemm_i8_accumulate needs n > 0");
    assert_eq!(out.len() % n, 0, "output length {} not a multiple of n {}", out.len(), n);
    let m = out.len() / n;
    assert_eq!(a.len(), m * k, "lhs length mismatch");
    assert_eq!(b.len(), k * n, "rhs length mismatch");
    for (a_row, out_row) in a.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
        let mut kk = 0;
        while kk + 4 <= k {
            let (a0, a1, a2, a3) =
                (a_row[kk] as i32, a_row[kk + 1] as i32, a_row[kk + 2] as i32, a_row[kk + 3] as i32);
            let b0 = &b[kk * n..kk * n + n];
            let b1 = &b[(kk + 1) * n..(kk + 1) * n + n];
            let b2 = &b[(kk + 2) * n..(kk + 2) * n + n];
            let b3 = &b[(kk + 3) * n..(kk + 3) * n + n];
            for (j, slot) in out_row.iter_mut().enumerate() {
                *slot += a0 * b0[j] as i32 + a1 * b1[j] as i32 + a2 * b2[j] as i32 + a3 * b3[j] as i32;
            }
            kk += 4;
        }
        while kk < k {
            let a_ik = a_row[kk] as i32;
            let b_row = &b[kk * n..kk * n + n];
            for (slot, &b_kj) in out_row.iter_mut().zip(b_row) {
                *slot += a_ik * b_kj as i32;
            }
            kk += 1;
        }
    }
}

/// `out[m,n] = a[m,k] · b[n,k]ᵀ` over `i8` operands with `i32` accumulation
/// (dot-product form — both operands are walked contiguously).
///
/// The fully-connected kernel of the quantized engine: `a` holds the batch
/// activations, `b` the weight matrix in its natural
/// `[out_features, in_features]` layout — no transpose copy. (Convolutions
/// use [`matmul_i16_pairs_into`] instead, whose layout avoids the per-output
/// lane reduction this dot-product form pays.)
///
/// On x86-64 the kernel dispatches at runtime to an AVX-512 or AVX2 body
/// built on `vpmaddwd` (sign-extend both operands to `i16`, multiply, and
/// pair-sum into `i32` lanes — exact, since `|i8·i8| ≤ 16384` and a pair sum
/// fits `i16`-product headroom in `i32` trivially); integer re-association
/// keeps every path bit-identical to the scalar fallback.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `(k, n)`.
pub fn matmul_i8_nt_into(a: &[i8], b: &[i8], out: &mut [i32], k: usize, n: usize) {
    assert!(n > 0, "matmul_i8_nt_into needs n > 0");
    assert_eq!(out.len() % n, 0, "output length {} not a multiple of n {}", out.len(), n);
    let m = out.len() / n;
    assert_eq!(a.len(), m * k, "lhs length mismatch");
    assert_eq!(b.len(), n * k, "rhs length mismatch");
    #[cfg(target_arch = "x86_64")]
    if k > 0 && simd::nt_dispatch(a, b, out, k, n) {
        return;
    }
    nt_scalar(a, b, out, k, n);
}

/// Portable body of [`matmul_i8_nt_into`]: four independent accumulators per
/// dot product for instruction-level parallelism (exact re-association).
fn nt_scalar(a: &[i8], b: &[i8], out: &mut [i32], k: usize, n: usize) {
    for (a_row, out_row) in a.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
        for (slot, b_row) in out_row.iter_mut().zip(b.chunks_exact(k)) {
            let mut acc = [0i32; 4];
            let mut kk = 0;
            while kk + 4 <= k {
                acc[0] += a_row[kk] as i32 * b_row[kk] as i32;
                acc[1] += a_row[kk + 1] as i32 * b_row[kk + 1] as i32;
                acc[2] += a_row[kk + 2] as i32 * b_row[kk + 2] as i32;
                acc[3] += a_row[kk + 3] as i32 * b_row[kk + 3] as i32;
                kk += 4;
            }
            let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
            while kk < k {
                sum += a_row[kk] as i32 * b_row[kk] as i32;
                kk += 1;
            }
            *slot = sum;
        }
    }
}

/// `out[m,n] = a[m,k] · B` where `a` holds **pre-widened** `i16` rows of an
/// even-padded width `k` and `b` holds the right-hand matrix in the
/// **pair-interleaved** layout produced by [`im2col_i16_pairs_image_overwrite`]:
/// element `(kk, j)` lives at `b[(kk / 2) · 2n + 2j + (kk % 2)]`.
///
/// This is the convolution hot path, shaped around `vpmaddwd` with *no
/// horizontal reductions*: one 32-bit broadcast of an `a` tap pair against a
/// vector of interleaved `b` pairs yields 16 (AVX-512) or 8 (AVX2) finished
/// `i32` column partials per instruction, accumulated vertically and stored
/// straight into `out` — the dot-product-form kernels above pay a multi-µop
/// lane reduction per output element, which dominates at the small
/// `n = oh·ow` of the later conv stages. Both operands are pre-widened to
/// `i16` (the executor pads odd `c·k·k` with a zero tap), so the inner loop
/// has no `vpmovsxbw` port pressure either.
///
/// Exact for operands in the `i8` value range: each `vpmaddwd` pair-sum is
/// `≤ 2·16129` and the `i32` accumulation cannot wrap for any realistic `k`.
///
/// # Panics
///
/// Panics if `k` is odd or the slice lengths are inconsistent with `(k, n)`.
pub fn matmul_i16_pairs_into(a: &[i16], b: &[i16], out: &mut [i32], k: usize, n: usize) {
    assert!(n > 0, "matmul_i16_pairs_into needs n > 0");
    assert_eq!(k % 2, 0, "matmul_i16_pairs_into needs an even (padded) k, got {k}");
    assert_eq!(out.len() % n, 0, "output length {} not a multiple of n {}", out.len(), n);
    let m = out.len() / n;
    assert_eq!(a.len(), m * k, "lhs length mismatch");
    assert_eq!(b.len(), k * n, "rhs length mismatch");
    #[cfg(target_arch = "x86_64")]
    if k > 0 && simd::pairs_dispatch(a, b, out, k, n) {
        return;
    }
    pairs_scalar(a, b, out, k, n);
}

/// Portable body of [`matmul_i16_pairs_into`].
fn pairs_scalar(a: &[i16], b: &[i16], out: &mut [i32], k: usize, n: usize) {
    for (a_row, out_row) in a.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
        for (j, slot) in out_row.iter_mut().enumerate() {
            let mut sum = 0i32;
            for p in 0..k / 2 {
                let pair = &b[p * 2 * n + 2 * j..p * 2 * n + 2 * j + 2];
                sum += a_row[2 * p] as i32 * pair[0] as i32 + a_row[2 * p + 1] as i32 * pair[1] as i32;
            }
            *slot = sum;
        }
    }
}

/// Runtime-dispatched x86-64 SIMD bodies of [`matmul_i8_nt_into`].
///
/// The one sanctioned `unsafe` island in the workspace: `core::arch`
/// intrinsics are unsafe to call by construction, and the features they
/// need are only known at runtime. The exposure is kept minimal — the
/// public API stays fully safe, every kernel is bounds-pinned by
/// [`matmul_i8_nt_into`]'s asserts before dispatch, and
/// `simd_dispatch_matches_scalar_kernel` pins each body to the portable
/// scalar kernel bit for bit (integer accumulation is exact, so
/// re-association cannot diverge).
#[cfg(target_arch = "x86_64")]
mod simd {
    #![allow(unsafe_code)]

    /// Picks the widest available body and runs it; `false` means no SIMD
    /// feature is available and the caller must use the scalar kernel.
    pub(super) fn nt_dispatch(a: &[i8], b: &[i8], out: &mut [i32], k: usize, n: usize) -> bool {
        if is_x86_feature_detected!("avx512f")
            && is_x86_feature_detected!("avx512bw")
            && is_x86_feature_detected!("avx512vl")
        {
            // SAFETY: the required target features were just detected, and
            // the caller's asserts pin every slice length the kernel reads.
            unsafe { nt_avx512(a, b, out, k, n) };
            return true;
        }
        if is_x86_feature_detected!("avx2") {
            // SAFETY: as above, for the AVX2 body.
            unsafe { nt_avx2(a, b, out, k, n) };
            return true;
        }
        false
    }

    /// Picks the widest available body of the pair-interleaved kernel;
    /// `false` means no SIMD feature is available and the caller must use
    /// the scalar one.
    pub(super) fn pairs_dispatch(a: &[i16], b: &[i16], out: &mut [i32], k: usize, n: usize) -> bool {
        if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512bw") {
            // SAFETY: the required target features were just detected, and
            // the caller's asserts pin every slice length the kernel reads.
            unsafe { pairs_avx512(a, b, out, k, n) };
            return true;
        }
        if is_x86_feature_detected!("avx2") {
            // SAFETY: as above, for the AVX2 body.
            unsafe { pairs_avx2(a, b, out, k, n) };
            return true;
        }
        false
    }

    /// AVX-512 body of the pair-interleaved kernel: one `vpbroadcastd` of an
    /// `a` tap pair against a full-width load of 16 interleaved `b` column
    /// pairs per `vpmaddwd` — 32 MACs finishing 16 `i32` column partials,
    /// accumulated vertically across `k` and stored without any lane
    /// reduction. The main block tiles four output rows over 64 columns
    /// (sixteen accumulators) so every `b` load is shared four ways — the
    /// kernel re-streams `b` from L2 per row tile, so this quarters its
    /// bandwidth demand. Leftover columns run 16-wide, then one masked tail.
    ///
    /// # Safety
    ///
    /// Caller must ensure `avx512f` and `avx512bw` are available and that
    /// the slice lengths satisfy `matmul_i16_pairs_into`'s contract.
    #[target_feature(enable = "avx512f,avx512bw")]
    unsafe fn pairs_avx512(a: &[i16], b: &[i16], out: &mut [i32], k: usize, n: usize) {
        use std::arch::x86_64::{
            __m512i, _mm512_add_epi32, _mm512_loadu_si512, _mm512_madd_epi16, _mm512_mask_storeu_epi32,
            _mm512_maskz_loadu_epi16, _mm512_set1_epi32, _mm512_setzero_si512, _mm512_storeu_si512,
        };
        let m = out.len() / n;
        let pairs = k / 2;
        let (a_ptr, b_ptr, out_ptr) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        let mut r0 = 0usize;
        while r0 < m {
            let rows = (m - r0).min(4);
            let mut j = 0usize;
            while j + 64 <= n {
                let mut acc = [[_mm512_setzero_si512(); 4]; 4];
                for p in 0..pairs {
                    let base = b_ptr.add(p * 2 * n + 2 * j);
                    let vb = [
                        _mm512_loadu_si512(base.cast::<__m512i>()),
                        _mm512_loadu_si512(base.add(32).cast::<__m512i>()),
                        _mm512_loadu_si512(base.add(64).cast::<__m512i>()),
                        _mm512_loadu_si512(base.add(96).cast::<__m512i>()),
                    ];
                    for (t, row_acc) in acc[..rows].iter_mut().enumerate() {
                        // both taps of the pair in one 32-bit broadcast —
                        // the row is even-length, so the read is in bounds
                        let va =
                            _mm512_set1_epi32(a_ptr.add((r0 + t) * k + 2 * p).cast::<i32>().read_unaligned());
                        for (slot, &vbu) in row_acc.iter_mut().zip(&vb) {
                            *slot = _mm512_add_epi32(*slot, _mm512_madd_epi16(va, vbu));
                        }
                    }
                }
                for (t, row_acc) in acc[..rows].iter().enumerate() {
                    let o_row = out_ptr.add((r0 + t) * n);
                    for (u, &slot) in row_acc.iter().enumerate() {
                        _mm512_storeu_si512(o_row.add(j + 16 * u).cast::<__m512i>(), slot);
                    }
                }
                j += 64;
            }
            for t in 0..rows {
                let a_row = a_ptr.add((r0 + t) * k);
                let o_row = out_ptr.add((r0 + t) * n);
                let mut jj = j;
                while jj + 16 <= n {
                    let mut acc = _mm512_setzero_si512();
                    for p in 0..pairs {
                        let va = _mm512_set1_epi32(a_row.add(2 * p).cast::<i32>().read_unaligned());
                        let vb = _mm512_loadu_si512(b_ptr.add(p * 2 * n + 2 * jj).cast::<__m512i>());
                        acc = _mm512_add_epi32(acc, _mm512_madd_epi16(va, vb));
                    }
                    _mm512_storeu_si512(o_row.add(jj).cast::<__m512i>(), acc);
                    jj += 16;
                }
                if jj < n {
                    let tail = n - jj;
                    let load_mask: u32 = (1u32 << (2 * tail)) - 1;
                    let store_mask: u16 = (1u16 << tail) - 1;
                    let mut acc = _mm512_setzero_si512();
                    for p in 0..pairs {
                        let va = _mm512_set1_epi32(a_row.add(2 * p).cast::<i32>().read_unaligned());
                        let vb = _mm512_maskz_loadu_epi16(load_mask, b_ptr.add(p * 2 * n + 2 * jj));
                        acc = _mm512_add_epi32(acc, _mm512_madd_epi16(va, vb));
                    }
                    _mm512_mask_storeu_epi32(o_row.add(jj), store_mask, acc);
                }
            }
            r0 += rows;
        }
    }

    /// AVX2 body of the pair-interleaved kernel: the same reduction-free
    /// broadcast/`vpmaddwd` shape at 8 `i32` columns per vector, tiling two
    /// output rows over 32 columns (eight accumulators — the 16-register
    /// file caps the tile) so every `b` load is shared, with a scalar
    /// column tail.
    ///
    /// # Safety
    ///
    /// Caller must ensure `avx2` is available and that the slice lengths
    /// satisfy `matmul_i16_pairs_into`'s contract.
    #[target_feature(enable = "avx2")]
    unsafe fn pairs_avx2(a: &[i16], b: &[i16], out: &mut [i32], k: usize, n: usize) {
        use std::arch::x86_64::{
            __m256i, _mm256_add_epi32, _mm256_loadu_si256, _mm256_madd_epi16, _mm256_set1_epi32,
            _mm256_setzero_si256, _mm256_storeu_si256,
        };
        let m = out.len() / n;
        let pairs = k / 2;
        let (a_ptr, b_ptr, out_ptr) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        let mut r0 = 0usize;
        while r0 < m {
            let rows = (m - r0).min(2);
            let mut j = 0usize;
            while j + 32 <= n {
                let mut acc = [[_mm256_setzero_si256(); 4]; 2];
                for p in 0..pairs {
                    let base = b_ptr.add(p * 2 * n + 2 * j);
                    let vb = [
                        _mm256_loadu_si256(base.cast::<__m256i>()),
                        _mm256_loadu_si256(base.add(16).cast::<__m256i>()),
                        _mm256_loadu_si256(base.add(32).cast::<__m256i>()),
                        _mm256_loadu_si256(base.add(48).cast::<__m256i>()),
                    ];
                    for (t, row_acc) in acc[..rows].iter_mut().enumerate() {
                        let va =
                            _mm256_set1_epi32(a_ptr.add((r0 + t) * k + 2 * p).cast::<i32>().read_unaligned());
                        for (slot, &vbu) in row_acc.iter_mut().zip(&vb) {
                            *slot = _mm256_add_epi32(*slot, _mm256_madd_epi16(va, vbu));
                        }
                    }
                }
                for (t, row_acc) in acc[..rows].iter().enumerate() {
                    let o_row = out_ptr.add((r0 + t) * n);
                    for (u, &slot) in row_acc.iter().enumerate() {
                        _mm256_storeu_si256(o_row.add(j + 8 * u).cast::<__m256i>(), slot);
                    }
                }
                j += 32;
            }
            for t in 0..rows {
                let a_row = a_ptr.add((r0 + t) * k);
                let o_row = out_ptr.add((r0 + t) * n);
                let mut jj = j;
                while jj + 8 <= n {
                    let mut acc = _mm256_setzero_si256();
                    for p in 0..pairs {
                        let va = _mm256_set1_epi32(a_row.add(2 * p).cast::<i32>().read_unaligned());
                        let vb = _mm256_loadu_si256(b_ptr.add(p * 2 * n + 2 * jj).cast::<__m256i>());
                        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
                    }
                    _mm256_storeu_si256(o_row.add(jj).cast::<__m256i>(), acc);
                    jj += 8;
                }
                while jj < n {
                    let a_slice = std::slice::from_raw_parts(a_row, k);
                    let mut sum = 0i32;
                    for (p, pair) in a_slice.chunks_exact(2).enumerate() {
                        let bb = b_ptr.add(p * 2 * n + 2 * jj);
                        sum += pair[0] as i32 * bb.read() as i32 + pair[1] as i32 * bb.add(1).read() as i32;
                    }
                    *o_row.add(jj) = sum;
                    jj += 1;
                }
            }
            r0 += rows;
        }
    }

    /// Picks the widest available body of the widen-interleave pass;
    /// `false` means the caller must use its scalar loop.
    pub(super) fn interleave_dispatch(r0: &[i8], r1: &[i8], dst: &mut [i16]) -> bool {
        if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512bw") {
            // SAFETY: the required target features were just detected, and
            // the caller slices `r0`/`r1`/`dst` to consistent lengths.
            unsafe { interleave_avx512(r0, r1, dst) };
            return true;
        }
        if is_x86_feature_detected!("avx2") {
            // SAFETY: as above, for the AVX2 body.
            unsafe { interleave_avx2(r0, r1, dst) };
            return true;
        }
        false
    }

    /// AVX-512 body of the widen-interleave pass: two 32-byte row segments
    /// sign-extend to `i16` and one pair of `vpermt2w` shuffles interleaves
    /// them into two full-width stores; scalar tail under 32 columns.
    ///
    /// # Safety
    ///
    /// Caller must ensure `avx512f` and `avx512bw` are available and that
    /// `r0.len() == r1.len()` and `dst.len() == 2 · r0.len()`.
    #[target_feature(enable = "avx512f,avx512bw")]
    unsafe fn interleave_avx512(r0: &[i8], r1: &[i8], dst: &mut [i16]) {
        use std::arch::x86_64::{
            __m256i, __m512i, _mm256_loadu_si256, _mm512_cvtepi8_epi16, _mm512_loadu_si512,
            _mm512_permutex2var_epi16, _mm512_storeu_si512,
        };
        let l = r0.len();
        // `vpermt2w` index vectors: lane t of the low (high) result selects
        // element t/2 of the first (second) 16-column half from `a` when t is
        // even, from `b` (offset 32) when t is odd
        let mut idx = [[0i16; 32]; 2];
        for t in 0..16 {
            idx[0][2 * t] = t as i16;
            idx[0][2 * t + 1] = t as i16 + 32;
            idx[1][2 * t] = t as i16 + 16;
            idx[1][2 * t + 1] = t as i16 + 48;
        }
        let vi0 = _mm512_loadu_si512(idx[0].as_ptr().cast::<__m512i>());
        let vi1 = _mm512_loadu_si512(idx[1].as_ptr().cast::<__m512i>());
        let mut j = 0usize;
        while j + 32 <= l {
            let va = _mm512_cvtepi8_epi16(_mm256_loadu_si256(r0.as_ptr().add(j).cast::<__m256i>()));
            let vb = _mm512_cvtepi8_epi16(_mm256_loadu_si256(r1.as_ptr().add(j).cast::<__m256i>()));
            let lo = _mm512_permutex2var_epi16(va, vi0, vb);
            let hi = _mm512_permutex2var_epi16(va, vi1, vb);
            _mm512_storeu_si512(dst.as_mut_ptr().add(2 * j).cast::<__m512i>(), lo);
            _mm512_storeu_si512(dst.as_mut_ptr().add(2 * j + 32).cast::<__m512i>(), hi);
            j += 32;
        }
        for jj in j..l {
            dst[2 * jj] = r0[jj] as i16;
            dst[2 * jj + 1] = r1[jj] as i16;
        }
    }

    /// AVX2 body of the widen-interleave pass: in-lane `vpunpck` interleaves
    /// with a cross-lane fixup permute; scalar tail under 16 columns.
    ///
    /// # Safety
    ///
    /// Caller must ensure `avx2` is available and that `r0.len() == r1.len()`
    /// and `dst.len() == 2 · r0.len()`.
    #[target_feature(enable = "avx2")]
    unsafe fn interleave_avx2(r0: &[i8], r1: &[i8], dst: &mut [i16]) {
        use std::arch::x86_64::{
            __m128i, __m256i, _mm256_cvtepi8_epi16, _mm256_permute2x128_si256, _mm256_storeu_si256,
            _mm256_unpackhi_epi16, _mm256_unpacklo_epi16, _mm_loadu_si128,
        };
        let l = r0.len();
        let mut j = 0usize;
        while j + 16 <= l {
            let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(r0.as_ptr().add(j).cast::<__m128i>()));
            let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(r1.as_ptr().add(j).cast::<__m128i>()));
            let lo = _mm256_unpacklo_epi16(va, vb);
            let hi = _mm256_unpackhi_epi16(va, vb);
            let out0 = _mm256_permute2x128_si256(lo, hi, 0x20);
            let out1 = _mm256_permute2x128_si256(lo, hi, 0x31);
            _mm256_storeu_si256(dst.as_mut_ptr().add(2 * j).cast::<__m256i>(), out0);
            _mm256_storeu_si256(dst.as_mut_ptr().add(2 * j + 16).cast::<__m256i>(), out1);
            j += 16;
        }
        for jj in j..l {
            dst[2 * jj] = r0[jj] as i16;
            dst[2 * jj + 1] = r1[jj] as i16;
        }
    }

    /// AVX-512 body: 32 `i8` taps per `vpmaddwd`, four `a` rows sharing
    /// every `b`-row load, masked loads for the `k % 32` tail so short conv
    /// patches (e.g. `ic·k·k = 27`) stay fully vectorized.
    ///
    /// # Safety
    ///
    /// Caller must ensure `avx512f`, `avx512bw` and `avx512vl` are available
    /// and that the slice lengths satisfy [`matmul_i8_nt_into`]'s contract.
    ///
    /// [`matmul_i8_nt_into`]: super::matmul_i8_nt_into
    #[target_feature(enable = "avx512f,avx512bw,avx512vl")]
    unsafe fn nt_avx512(a: &[i8], b: &[i8], out: &mut [i32], k: usize, n: usize) {
        use std::arch::x86_64::{
            __m256i, _mm256_loadu_si256, _mm256_maskz_loadu_epi8, _mm512_add_epi32, _mm512_cvtepi8_epi16,
            _mm512_madd_epi16, _mm512_reduce_add_epi32, _mm512_setzero_si512,
        };
        let m = out.len() / n;
        let tail = k % 32;
        let body = k - tail;
        let tail_mask: u32 = if tail == 0 { 0 } else { (1u32 << tail) - 1 };
        let (a_ptr, b_ptr) = (a.as_ptr(), b.as_ptr());
        let mut i0 = 0usize;
        while i0 < m {
            let rows = (m - i0).min(4);
            for j in 0..n {
                let bj = b_ptr.add(j * k);
                let mut acc = [_mm512_setzero_si512(); 4];
                let mut kk = 0usize;
                while kk < body {
                    let vb = _mm512_cvtepi8_epi16(_mm256_loadu_si256(bj.add(kk).cast::<__m256i>()));
                    for (t, slot) in acc[..rows].iter_mut().enumerate() {
                        let va = _mm512_cvtepi8_epi16(_mm256_loadu_si256(
                            a_ptr.add((i0 + t) * k + kk).cast::<__m256i>(),
                        ));
                        *slot = _mm512_add_epi32(*slot, _mm512_madd_epi16(va, vb));
                    }
                    kk += 32;
                }
                if tail != 0 {
                    let vb = _mm512_cvtepi8_epi16(_mm256_maskz_loadu_epi8(tail_mask, bj.add(kk)));
                    for (t, slot) in acc[..rows].iter_mut().enumerate() {
                        let va = _mm512_cvtepi8_epi16(_mm256_maskz_loadu_epi8(
                            tail_mask,
                            a_ptr.add((i0 + t) * k + kk),
                        ));
                        *slot = _mm512_add_epi32(*slot, _mm512_madd_epi16(va, vb));
                    }
                }
                for (t, &slot) in acc[..rows].iter().enumerate() {
                    out[(i0 + t) * n + j] = _mm512_reduce_add_epi32(slot);
                }
            }
            i0 += rows;
        }
    }

    /// AVX2 body: 16 `i8` taps per `vpmaddwd`, four `a` rows sharing every
    /// `b`-row load, scalar `k % 16` tail.
    ///
    /// # Safety
    ///
    /// Caller must ensure `avx2` is available and that the slice lengths
    /// satisfy [`matmul_i8_nt_into`]'s contract.
    ///
    /// [`matmul_i8_nt_into`]: super::matmul_i8_nt_into
    #[target_feature(enable = "avx2")]
    unsafe fn nt_avx2(a: &[i8], b: &[i8], out: &mut [i32], k: usize, n: usize) {
        use std::arch::x86_64::{
            __m128i, __m256i, _mm256_add_epi32, _mm256_castsi256_si128, _mm256_cvtepi8_epi16,
            _mm256_extracti128_si256, _mm256_madd_epi16, _mm256_setzero_si256, _mm_add_epi32,
            _mm_cvtsi128_si32, _mm_loadu_si128, _mm_shuffle_epi32,
        };
        /// Horizontal sum of the eight `i32` lanes.
        ///
        /// # Safety
        ///
        /// Caller must ensure `avx2` is available.
        #[target_feature(enable = "avx2")]
        unsafe fn hsum(v: __m256i) -> i32 {
            let s = _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
            let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b01_00_11_10));
            let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_00_01));
            _mm_cvtsi128_si32(s)
        }
        let m = out.len() / n;
        let tail = k % 16;
        let body = k - tail;
        let (a_ptr, b_ptr) = (a.as_ptr(), b.as_ptr());
        let mut i0 = 0usize;
        while i0 < m {
            let rows = (m - i0).min(4);
            for j in 0..n {
                let bj = b_ptr.add(j * k);
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = [_mm256_setzero_si256(); 4];
                let mut kk = 0usize;
                while kk < body {
                    let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(bj.add(kk).cast::<__m128i>()));
                    for (t, slot) in acc[..rows].iter_mut().enumerate() {
                        let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                            a_ptr.add((i0 + t) * k + kk).cast::<__m128i>(),
                        ));
                        *slot = _mm256_add_epi32(*slot, _mm256_madd_epi16(va, vb));
                    }
                    kk += 16;
                }
                for (t, &slot) in acc[..rows].iter().enumerate() {
                    let mut sum = hsum(slot);
                    let a_row = &a[(i0 + t) * k..(i0 + t) * k + k];
                    for kx in body..k {
                        sum += a_row[kx] as i32 * b_row[kx] as i32;
                    }
                    out[(i0 + t) * n + j] = sum;
                }
            }
            i0 += rows;
        }
    }
}

/// Unrolls one `i8` image (a `[c, h, w]` slice of a batch) into a column
/// matrix `[c·k·k, oh·ow]`, **overwriting every element of `dst`** — padding
/// positions are written as explicit `0`, so recycled storage needs no
/// zero-fill pass.
///
/// The `i8` twin of [`crate::im2col_image_overwrite`], with the same stride-1
/// `copy_from_slice` fast path; zero-point-0 symmetric quantization makes a
/// literal `0` byte the correct padding value.
///
/// # Panics
///
/// Panics if `image` is not `c·h·w` elements or `dst` is not
/// `c·k·k × oh·ow` elements.
pub fn im2col_i8_image_overwrite(
    image: &[i8],
    c: usize,
    h: usize,
    w: usize,
    geom: Conv2dGeometry,
    dst: &mut [i8],
) {
    let (oh, ow) = geom.output_size(h, w);
    let k = geom.kernel;
    let l = oh * ow;
    assert_eq!(image.len(), c * h * w, "im2col_i8_image_overwrite image size mismatch");
    assert_eq!(dst.len(), c * k * k * l, "im2col_i8_image_overwrite destination size mismatch");
    let (stride, pad) = (geom.stride, geom.pad);
    for ci in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ci * k + ky) * k + kx;
                let tap = &mut dst[row * l..(row + 1) * l];
                if stride == 1 && ow == w {
                    // "same"-style geometry (every conv in the paper's
                    // models): source and destination share the row stride,
                    // so the tap's whole in-bounds block is ONE contiguous
                    // copy at a constant offset — the few wrapped-in
                    // elements at the row seams are zeroed afterwards.
                    // This replaces `oh` short per-row copies (whose memcpy
                    // dispatch overhead dominates at conv-sized rows) with
                    // a single bulk move.
                    let lo = pad.saturating_sub(kx).min(ow);
                    let hi = (w + pad).saturating_sub(kx).min(ow).max(lo);
                    let y0 = pad.saturating_sub(ky).min(oh);
                    let y1 = (h + pad).saturating_sub(ky).min(oh).max(y0);
                    tap[..y0 * ow].fill(0);
                    tap[y1 * ow..].fill(0);
                    if y0 < y1 && lo < hi {
                        let dst_first = y0 * ow + lo;
                        let dst_last = (y1 - 1) * ow + hi;
                        let src_first = (ci * h + (y0 + ky) - pad) * w + (lo + kx) - pad;
                        tap[dst_first..dst_last]
                            .copy_from_slice(&image[src_first..src_first + (dst_last - dst_first)]);
                        for oy in y0..y1 {
                            // zero the row-seam edges the bulk copy filled
                            // with wrapped neighbours (≤ `pad` each side)
                            for slot in &mut tap[oy * ow..oy * ow + lo] {
                                *slot = 0;
                            }
                            for slot in &mut tap[oy * ow + hi..(oy + 1) * ow] {
                                *slot = 0;
                            }
                        }
                    } else {
                        tap[y0 * ow..y1 * ow].fill(0);
                    }
                    continue;
                }
                for oy in 0..oh {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    let dst_row = &mut tap[oy * ow..oy * ow + ow];
                    if iy < 0 || iy >= h as isize {
                        dst_row.fill(0);
                        continue;
                    }
                    let src_row = &image[(ci * h + iy as usize) * w..(ci * h + iy as usize + 1) * w];
                    if stride == 1 {
                        // ix = ox + kx - pad: one contiguous run, zero edges
                        let lo = pad.saturating_sub(kx).min(ow);
                        let hi = (w + pad).saturating_sub(kx).min(ow).max(lo);
                        dst_row[..lo].fill(0);
                        let src_lo = lo + kx - pad;
                        dst_row[lo..hi].copy_from_slice(&src_row[src_lo..src_lo + (hi - lo)]);
                        dst_row[hi..].fill(0);
                    } else {
                        for (ox, slot) in dst_row.iter_mut().enumerate() {
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            *slot = if ix < 0 || ix >= w as isize { 0 } else { src_row[ix as usize] };
                        }
                    }
                }
            }
        }
    }
}

/// Unrolls one `i8` image (a `[c, h, w]` slice of a batch) into the
/// **pair-interleaved** sign-extended `i16` matrix consumed by
/// [`matmul_i16_pairs_into`], overwriting every element of `dst` (padding
/// positions — and the phantom tap added when `c·k·k` is odd — are written
/// as explicit `0`).
///
/// Logical element `(kk, j)` of the plain `[c·k·k, oh·ow]` im2col matrix
/// lands at `dst[(kk / 2) · 2l + 2j + (kk % 2)]` with `l = oh·ow`: each pair
/// of adjacent taps is interleaved column-by-column, which is exactly the
/// operand shape `vpmaddwd` wants opposite a broadcast tap pair. `dst` must
/// be `(c·k·k rounded up to even) · oh·ow` elements.
///
/// Like the f32 gather, each `(tap, oy)` row is one contiguous source run
/// with zeroed edges — but written at stride 2, so the store stream stays
/// sequential in cache lines while producing the interleaved layout in a
/// single pass. Widening to `i16` happens here, during the gather, so the
/// matmul's inner loops need no element conversions at all.
///
/// # Panics
///
/// Panics if `image` is not `c·h·w` elements or `dst` is not
/// `(c·k·k + (c·k·k & 1)) × oh·ow` elements.
pub fn im2col_i16_pairs_image_overwrite(
    image: &[i8],
    c: usize,
    h: usize,
    w: usize,
    geom: Conv2dGeometry,
    dst: &mut [i16],
) {
    let (oh, ow) = geom.output_size(h, w);
    let k = geom.kernel;
    let kk = c * k * k;
    let kk_pad = kk + (kk & 1);
    let l = oh * ow;
    assert_eq!(image.len(), c * h * w, "im2col_i16_pairs_image_overwrite image size mismatch");
    assert_eq!(dst.len(), kk_pad * l, "im2col_i16_pairs_image_overwrite destination size mismatch");
    let (stride, pad) = (geom.stride, geom.pad);
    for tap in 0..kk {
        let ci = tap / (k * k);
        let ky = (tap / k) % k;
        let kx = tap % k;
        let (p, s) = (tap / 2, tap % 2);
        for oy in 0..oh {
            let iy = (oy * stride + ky) as isize - pad as isize;
            // both interleave slots of this pair-row's `oy` stripe; writes
            // below touch only slot `s` at indices 2·ox + s
            let drow = &mut dst[p * 2 * l + 2 * oy * ow..p * 2 * l + 2 * (oy * ow + ow)];
            if iy < 0 || iy >= h as isize {
                for ox in 0..ow {
                    drow[2 * ox + s] = 0;
                }
                continue;
            }
            let src_row = &image[(ci * h + iy as usize) * w..(ci * h + iy as usize + 1) * w];
            if stride == 1 {
                // ix = ox + kx - pad: one contiguous source run, zero edges
                let lo = pad.saturating_sub(kx).min(ow);
                let hi = (w + pad).saturating_sub(kx).min(ow).max(lo);
                for ox in 0..lo {
                    drow[2 * ox + s] = 0;
                }
                let src = &src_row[lo + kx - pad..hi + kx - pad];
                for (ox, &v) in (lo..hi).zip(src) {
                    drow[2 * ox + s] = v as i16;
                }
                for ox in hi..ow {
                    drow[2 * ox + s] = 0;
                }
            } else {
                for ox in 0..ow {
                    let ix = (ox * stride + kx) as isize - pad as isize;
                    drow[2 * ox + s] =
                        if ix < 0 || ix >= w as isize { 0 } else { src_row[ix as usize] as i16 };
                }
            }
        }
    }
    if kk_pad != kk {
        // phantom tap paired with the last real one: always zero, so the
        // even-width kernel contract holds without affecting any sum
        let base = (kk_pad / 2 - 1) * 2 * l + 1;
        for j in 0..l {
            dst[base + 2 * j] = 0;
        }
    }
}

/// Widens a row-major `[rows, l]` `i8` matrix into the pair-interleaved
/// `i16` layout of [`matmul_i16_pairs_into`]: rows `2p` and `2p + 1` become
/// pair-row `p` with their columns interleaved (`dst[p·2l + 2j + s] =
/// src[(2p + s)·l + j]`), and an odd row count gains a phantom all-zero
/// partner row.
///
/// This is the production path to the interleaved operand: build the plain
/// im2col matrix with [`im2col_i8_image_overwrite`] (long contiguous `memcpy`
/// runs), then transpose-widen pairs of rows here — the SIMD bodies turn a
/// pair of 32-byte row segments into two full-width interleaved stores, where
/// a direct strided gather pays a scalar store per element.
/// [`im2col_i16_pairs_image_overwrite`] produces the identical layout in one
/// (slower) pass and serves as its reference.
///
/// # Panics
///
/// Panics if `src` is not `rows · l` elements or `dst` is not
/// `(rows + (rows & 1)) · l` elements.
pub fn interleave_widen_pairs(src: &[i8], rows: usize, l: usize, dst: &mut [i16]) {
    let rows_pad = rows + (rows & 1);
    assert_eq!(src.len(), rows * l, "interleave_widen_pairs source size mismatch");
    assert_eq!(dst.len(), rows_pad * l, "interleave_widen_pairs destination size mismatch");
    for p in 0..rows / 2 {
        let r0 = &src[2 * p * l..2 * p * l + l];
        let r1 = &src[(2 * p + 1) * l..(2 * p + 1) * l + l];
        let d = &mut dst[p * 2 * l..(p + 1) * 2 * l];
        #[cfg(target_arch = "x86_64")]
        if simd::interleave_dispatch(r0, r1, d) {
            continue;
        }
        for j in 0..l {
            d[2 * j] = r0[j] as i16;
            d[2 * j + 1] = r1[j] as i16;
        }
    }
    if rows_pad != rows {
        let r0 = &src[(rows - 1) * l..];
        let d = &mut dst[(rows_pad / 2 - 1) * 2 * l..];
        for j in 0..l {
            d[2 * j] = r0[j] as i16;
            d[2 * j + 1] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::im2col::im2col_image_overwrite;

    fn pattern(len: usize, mul: usize, md: usize) -> Vec<i8> {
        (0..len).map(|i| (((i * mul) % md) as i32 - md as i32 / 2) as i8).collect()
    }

    fn naive_gemm(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Vec<i32> {
        let mut out = vec![0i32; m * n];
        for i in 0..m {
            for kk in 0..k {
                for j in 0..n {
                    out[i * n + j] += a[i * k + kk] as i32 * b[kk * n + j] as i32;
                }
            }
        }
        out
    }

    #[test]
    fn gemm_i8_matches_naive_across_remainder_shapes() {
        // exercise k % 4 == 0..=3 to cover both the unrolled body and tail
        for (m, k, n) in [(3, 8, 5), (2, 7, 4), (4, 6, 3), (1, 5, 9), (5, 1, 2)] {
            let a = pattern(m * k, 37, 255);
            let b = pattern(k * n, 29, 251);
            let mut out = vec![7i32; m * n]; // accumulate on top of garbage
            gemm_i8_accumulate(&a, &b, &mut out, k, n);
            let expect: Vec<i32> = naive_gemm(&a, &b, m, k, n).iter().map(|x| x + 7).collect();
            assert_eq!(out, expect, "shape ({m},{k},{n})");
        }
    }

    #[test]
    fn nt_form_matches_gemm_of_transpose() {
        for (m, k, n) in [(3, 9, 4), (2, 8, 6), (1, 3, 1)] {
            let a = pattern(m * k, 41, 253);
            let b_nt = pattern(n * k, 23, 249); // [n, k]
                                                // transpose to [k, n] and run the accumulating kernel
            let mut b_t = vec![0i8; k * n];
            for j in 0..n {
                for kk in 0..k {
                    b_t[kk * n + j] = b_nt[j * k + kk];
                }
            }
            let mut want = vec![0i32; m * n];
            gemm_i8_accumulate(&a, &b_t, &mut want, k, n);
            let mut got = vec![-1i32; m * n]; // overwrite semantics
            matmul_i8_nt_into(&a, &b_nt, &mut got, k, n);
            assert_eq!(got, want, "shape ({m},{k},{n})");
        }
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        // all -128 × all -128 over a long k: products are +16384 each
        let (m, k, n) = (1, 1024, 1);
        let a = vec![-128i8; m * k];
        let b = vec![-128i8; n * k];
        let mut out = vec![0i32; m * n];
        matmul_i8_nt_into(&a, &b, &mut out, k, n);
        assert_eq!(out[0], 16384 * k as i32);
    }

    #[test]
    fn simd_dispatch_matches_scalar_kernel() {
        // whatever body the runtime dispatch picks must agree with the
        // portable one on every tail class (k % 32 spanning 0, short, long)
        for (m, k, n) in [(5, 27, 7), (3, 16, 4), (2, 32, 3), (6, 33, 5), (4, 72, 2), (1, 3, 9)] {
            let a = pattern(m * k, 37, 255);
            let b = pattern(n * k, 29, 251);
            let mut want = vec![0i32; m * n];
            nt_scalar(&a, &b, &mut want, k, n);
            let mut got = vec![-7i32; m * n];
            matmul_i8_nt_into(&a, &b, &mut got, k, n);
            assert_eq!(got, want, "shape ({m},{k},{n})");
        }
    }

    /// Converts a `[n, k]` NT-form matrix into the pair-interleaved layout
    /// (`k` padded up to even with zero taps).
    fn to_pairs(b_nt: &[i8], k: usize, n: usize) -> (Vec<i16>, usize) {
        let k_pad = k + (k & 1);
        let mut out = vec![0i16; k_pad * n];
        for j in 0..n {
            for kk in 0..k {
                out[(kk / 2) * 2 * n + 2 * j + (kk % 2)] = b_nt[j * k + kk] as i16;
            }
        }
        (out, k_pad)
    }

    /// Widens `[m, k]` rows to `i16`, padding each to an even length.
    fn widen_pad(a: &[i8], m: usize, k: usize) -> Vec<i16> {
        let k_pad = k + (k & 1);
        let mut out = vec![0i16; m * k_pad];
        for (dst, src) in out.chunks_exact_mut(k_pad).zip(a.chunks_exact(k)) {
            for (d, &v) in dst.iter_mut().zip(src) {
                *d = v as i16;
            }
        }
        out
    }

    #[test]
    fn pairs_dispatch_matches_scalar_kernel() {
        // column counts straddle every tile boundary of the SIMD bodies
        // (64/16/masked-tail on AVX-512, 32/8/scalar-tail on AVX2)
        for (m, k, n) in
            [(5, 28, 7), (3, 16, 64), (2, 32, 70), (6, 34, 33), (4, 72, 2), (1, 4, 9), (7, 28, 65)]
        {
            let a: Vec<i16> = pattern(m * k, 37, 255).iter().map(|&x| x as i16).collect();
            let (b, _) = to_pairs(&pattern(n * k, 29, 251), k, n);
            let mut want = vec![0i32; m * n];
            pairs_scalar(&a, &b, &mut want, k, n);
            let mut got = vec![-7i32; m * n];
            matmul_i16_pairs_into(&a, &b, &mut got, k, n);
            assert_eq!(got, want, "shape ({m},{k},{n})");
        }
    }

    #[test]
    fn pairs_kernel_agrees_with_the_i8_kernel() {
        // the interleaved layout plus zero-tap padding must reproduce the
        // dot-product kernel exactly, including for odd k
        for (m, k, n) in [(4, 27, 6), (2, 33, 3), (3, 72, 17), (1, 1, 5)] {
            let a8 = pattern(m * k, 37, 255);
            let b8 = pattern(n * k, 29, 251);
            let mut want = vec![0i32; m * n];
            matmul_i8_nt_into(&a8, &b8, &mut want, k, n);
            let a16 = widen_pad(&a8, m, k);
            let (b16, k_pad) = to_pairs(&b8, k, n);
            let mut got = vec![0i32; m * n];
            matmul_i16_pairs_into(&a16, &b16, &mut got, k_pad, n);
            assert_eq!(got, want, "shape ({m},{k},{n})");
        }
    }

    #[test]
    fn pairs_gather_is_the_interleaved_im2col() {
        for geom in [
            Conv2dGeometry::new(3, 1, 1),
            Conv2dGeometry::new(2, 2, 0),
            Conv2dGeometry::new(3, 2, 2),
            Conv2dGeometry::new(3, 1, 0),
        ] {
            let (c, h, w) = (3, 5, 4);
            let img = pattern(c * h * w, 31, 247);
            let (oh, ow) = geom.output_size(h, w);
            let kk = c * geom.kernel * geom.kernel;
            let kk_pad = kk + (kk & 1);
            let l = oh * ow;
            let mut cols = vec![99i8; kk * l];
            let mut pairs = vec![99i16; kk_pad * l];
            im2col_i8_image_overwrite(&img, c, h, w, geom, &mut cols);
            im2col_i16_pairs_image_overwrite(&img, c, h, w, geom, &mut pairs);
            for tap in 0..kk {
                for j in 0..l {
                    assert_eq!(
                        pairs[(tap / 2) * 2 * l + 2 * j + (tap % 2)],
                        cols[tap * l + j] as i16,
                        "geom {geom:?} tap {tap} col {j}"
                    );
                }
            }
            if kk_pad != kk {
                // the phantom tap row must come out zero even on a dirty buffer
                for j in 0..l {
                    assert_eq!(pairs[(kk_pad / 2 - 1) * 2 * l + 2 * j + 1], 0, "geom {geom:?} col {j}");
                }
            }
        }
    }

    #[test]
    fn interleave_matches_the_reference_gather() {
        // the production two-pass path (i8 im2col, then widen-interleave)
        // must reproduce the single-pass reference layout exactly
        for geom in [
            Conv2dGeometry::new(3, 1, 1),
            Conv2dGeometry::new(2, 2, 0),
            Conv2dGeometry::new(3, 2, 2),
            Conv2dGeometry::new(3, 1, 0),
        ] {
            let (c, h, w) = (3, 5, 4);
            let img = pattern(c * h * w, 31, 247);
            let (oh, ow) = geom.output_size(h, w);
            let kk = c * geom.kernel * geom.kernel;
            let kk_pad = kk + (kk & 1);
            let l = oh * ow;
            let mut want = vec![99i16; kk_pad * l];
            im2col_i16_pairs_image_overwrite(&img, c, h, w, geom, &mut want);
            let mut cols = vec![99i8; kk * l];
            im2col_i8_image_overwrite(&img, c, h, w, geom, &mut cols);
            let mut got = vec![-5i16; kk_pad * l];
            interleave_widen_pairs(&cols, kk, l, &mut got);
            assert_eq!(got, want, "geom {geom:?}");
        }
    }

    #[test]
    fn interleave_handles_every_tail_class() {
        // row lengths straddle the 32- and 16-column SIMD blocks and their
        // scalar tails, for both even and odd row counts
        for (rows, l) in [(2, 37), (4, 16), (3, 5), (2, 70), (5, 64), (1, 3)] {
            let src = pattern(rows * l, 37, 255);
            let rows_pad = rows + (rows & 1);
            let mut got = vec![-5i16; rows_pad * l];
            interleave_widen_pairs(&src, rows, l, &mut got);
            for r in 0..rows_pad {
                for j in 0..l {
                    let want = if r < rows { src[r * l + j] as i16 } else { 0 };
                    assert_eq!(got[(r / 2) * 2 * l + 2 * j + (r % 2)], want, "rows {rows} l {l} ({r},{j})");
                }
            }
        }
    }

    #[test]
    fn i8_unroll_matches_f32_unroll_elementwise() {
        // the i8 gather must place bytes exactly where the f32 gather places
        // floats, for every geometry class the executor uses
        for geom in [
            Conv2dGeometry::new(3, 1, 1),
            Conv2dGeometry::new(2, 2, 0),
            Conv2dGeometry::new(3, 2, 2),
            Conv2dGeometry::new(3, 1, 0),
        ] {
            let (c, h, w) = (3, 5, 4);
            let img = pattern(c * h * w, 31, 247);
            let img_f: Vec<f32> = img.iter().map(|&x| x as f32).collect();
            let (oh, ow) = geom.output_size(h, w);
            let rows = c * geom.kernel * geom.kernel;
            let l = oh * ow;
            let mut dst = vec![99i8; rows * l];
            let mut dst_f = vec![f32::NAN; rows * l];
            im2col_i8_image_overwrite(&img, c, h, w, geom, &mut dst);
            im2col_image_overwrite(&img_f, c, h, w, geom, &mut dst_f);
            for (i, (&b, &f)) in dst.iter().zip(&dst_f).enumerate() {
                assert_eq!(b as f32, f, "geom {geom:?} slot {i}");
            }
        }
    }
}
