//! Deterministic failpoint harness for chaos-testing the execution layers.
//!
//! A *failpoint* is a named site in the codebase where a fault can be
//! injected on demand: an I/O error, a short (torn) write, a latency spike
//! or an outright panic. Sites are compiled in unconditionally but cost a
//! single relaxed atomic load when no schedule is installed, so production
//! binaries pay nothing for carrying them.
//!
//! Schedules are installed either programmatically ([`configure`], used by
//! the chaos test suites) or from the `FTCLIP_FAILPOINTS` environment
//! variable, read once on first use. The grammar is a `;`-separated list of
//! entries:
//!
//! ```text
//! FTCLIP_FAILPOINTS="seed=42;store.cell_write=short_write:0.25;serve.cell=panic:0.05*3"
//! ```
//!
//! * `seed=N` — seeds the deterministic activation schedule (default 0).
//! * `site=action[:prob][*limit]` — arm `site` with `action`, firing on a
//!   given evaluation with probability `prob` (default 1.0), at most
//!   `limit` times (default unlimited).
//! * actions: `io_error`, `short_write`, `delay(MS)`, `panic`, `off`.
//!
//! Activation is a pure function of `(seed, site name, per-site evaluation
//! index)` — no wall clock, no OS randomness — so a schedule replays
//! identically run-to-run, which is what lets the chaos suite assert
//! byte-identical recovery against a pinned seed.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once, PoisonError};
use std::time::Duration;

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Return an injected `std::io::Error` from the site.
    IoError,
    /// Truncate the write issued at the site (torn-write simulation).
    ShortWrite,
    /// Sleep for the given number of milliseconds, then proceed normally.
    Delay(u64),
    /// Panic with a message naming the site.
    Panic,
}

struct Site {
    action: FailAction,
    prob: f64,
    limit: u64,
    evals: AtomicU64,
    fired: AtomicU64,
}

struct Registry {
    seed: u64,
    sites: HashMap<String, Site>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();
static REGISTRY: Mutex<Option<std::sync::Arc<Registry>>> = Mutex::new(None);

fn lock_registry() -> std::sync::MutexGuard<'static, Option<std::sync::Arc<Registry>>> {
    REGISTRY.lock().unwrap_or_else(PoisonError::into_inner)
}

fn init_from_env() {
    ENV_INIT.call_once(|| {
        if let Ok(spec) = std::env::var("FTCLIP_FAILPOINTS") {
            if !spec.trim().is_empty() {
                if let Err(e) = configure(&spec) {
                    eprintln!("warning: ignoring invalid FTCLIP_FAILPOINTS: {e}");
                }
            }
        }
    });
}

/// Whether any failpoint schedule is currently installed.
///
/// This is the zero-cost fast path: after the one-time environment check it
/// is a single relaxed atomic load, so sites can call it unconditionally.
#[inline]
pub fn enabled() -> bool {
    init_from_env();
    ENABLED.load(Ordering::Relaxed)
}

/// Installs a failpoint schedule, replacing any previous one.
///
/// See the module docs for the grammar. Configuration is process-global:
/// test suites that install schedules must serialize on a shared lock.
pub fn configure(spec: &str) -> Result<(), String> {
    let registry = parse_spec(spec)?;
    let has_sites = !registry.sites.is_empty();
    *lock_registry() = has_sites.then(|| std::sync::Arc::new(registry));
    ENABLED.store(has_sites, Ordering::Relaxed);
    Ok(())
}

/// Removes the installed schedule; every site reverts to a no-op.
pub fn clear() {
    *lock_registry() = None;
    ENABLED.store(false, Ordering::Relaxed);
}

/// Per-site activation counts for the installed schedule: `(site, fired)`.
///
/// Sorted by site name so chaos probes can publish stable recovery stats.
pub fn stats() -> Vec<(String, u64)> {
    let guard = lock_registry();
    let Some(registry) = guard.as_ref() else {
        return Vec::new();
    };
    let mut out: Vec<(String, u64)> = registry
        .sites
        .iter()
        .map(|(name, s)| (name.clone(), s.fired.load(Ordering::Relaxed)))
        .collect();
    out.sort();
    out
}

/// Evaluates `site` against the installed schedule.
///
/// Returns the action to perform if the site fires on this evaluation. The
/// decision is deterministic in `(seed, site, evaluation index)`; callers
/// that just need the decision (no I/O semantics) can match on the result
/// directly, but most sites go through [`check_io`], [`write_len`] or
/// [`fires`] instead.
pub fn evaluate(site: &str) -> Option<FailAction> {
    if !enabled() {
        return None;
    }
    let registry = lock_registry().as_ref().cloned()?;
    let s = registry.sites.get(site)?;
    let n = s.evals.fetch_add(1, Ordering::SeqCst);
    let x = splitmix64(registry.seed ^ fnv1a(site.as_bytes()) ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let u = (x >> 11) as f64 / (1u64 << 53) as f64;
    if u >= s.prob {
        return None;
    }
    let won = s
        .fired
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |f| (f < s.limit).then_some(f + 1))
        .is_ok();
    won.then_some(s.action)
}

/// Evaluates `site` and reports whether it fired, performing any side
/// effect: `delay` sleeps, `panic` panics, `io_error`/`short_write` simply
/// report `true` (for sites with no I/O to fail, e.g. cache bypasses).
pub fn fires(site: &str) -> bool {
    match evaluate(site) {
        None => false,
        Some(FailAction::Delay(ms)) => {
            std::thread::sleep(Duration::from_millis(ms));
            true
        }
        Some(FailAction::Panic) => panic!("failpoint {site}: injected panic"),
        Some(FailAction::IoError) | Some(FailAction::ShortWrite) => true,
    }
}

/// Evaluates `site` on an I/O path with nothing to truncate: injected I/O
/// errors surface as `Err`, delays sleep, panics panic, short writes are
/// treated as a no-op (use [`write_len`] on write paths instead).
pub fn check_io(site: &str) -> io::Result<()> {
    match evaluate(site) {
        None | Some(FailAction::ShortWrite) => Ok(()),
        Some(FailAction::Delay(ms)) => {
            std::thread::sleep(Duration::from_millis(ms));
            Ok(())
        }
        Some(FailAction::Panic) => panic!("failpoint {site}: injected panic"),
        Some(FailAction::IoError) => Err(io::Error::other(format!("failpoint {site}: injected I/O error"))),
    }
}

/// Evaluates `site` for a write of `len` bytes.
///
/// Returns the number of bytes the caller should actually write: `len`
/// normally, a truncated count when a short write fires, or `Err` for an
/// injected I/O error. Delays sleep, panics panic.
pub fn write_len(site: &str, len: usize) -> io::Result<usize> {
    match evaluate(site) {
        None => Ok(len),
        Some(FailAction::ShortWrite) => Ok(len / 2),
        Some(FailAction::Delay(ms)) => {
            std::thread::sleep(Duration::from_millis(ms));
            Ok(len)
        }
        Some(FailAction::Panic) => panic!("failpoint {site}: injected panic"),
        Some(FailAction::IoError) => Err(io::Error::other(format!("failpoint {site}: injected I/O error"))),
    }
}

fn parse_spec(spec: &str) -> Result<Registry, String> {
    let mut seed = 0u64;
    let mut sites = HashMap::new();
    for entry in spec.split(';') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (name, value) = entry
            .split_once('=')
            .ok_or_else(|| format!("entry `{entry}` is not `name=value`"))?;
        let (name, value) = (name.trim(), value.trim());
        if name == "seed" {
            seed = value.parse::<u64>().map_err(|_| format!("seed `{value}` is not a u64"))?;
            continue;
        }
        let (value, limit) = match value.split_once('*') {
            Some((v, l)) => {
                (v.trim(), l.trim().parse::<u64>().map_err(|_| format!("limit `{l}` is not a u64"))?)
            }
            None => (value, u64::MAX),
        };
        let (action, prob) = match value.split_once(':') {
            Some((a, p)) => {
                let p = p
                    .trim()
                    .parse::<f64>()
                    .map_err(|_| format!("probability `{p}` is not a number"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability {p} is outside [0, 1]"));
                }
                (a.trim(), p)
            }
            None => (value, 1.0),
        };
        let action = match action {
            "io_error" => FailAction::IoError,
            "short_write" => FailAction::ShortWrite,
            "panic" => FailAction::Panic,
            "off" => continue,
            a if a.starts_with("delay(") && a.ends_with(')') => {
                let ms = &a["delay(".len()..a.len() - 1];
                FailAction::Delay(ms.parse::<u64>().map_err(|_| format!("delay `{ms}` is not a u64"))?)
            }
            a => return Err(format!("unknown action `{a}`")),
        };
        sites.insert(
            name.to_string(),
            Site {
                action,
                prob,
                limit,
                evals: AtomicU64::new(0),
                fired: AtomicU64::new(0),
            },
        );
    }
    Ok(Registry { seed, sites })
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    // Schedules are process-global; every test that installs one holds this.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn unarmed_sites_are_noops() {
        let _g = guard();
        clear();
        assert!(!enabled());
        assert_eq!(evaluate("store.cell_write"), None);
        assert!(check_io("store.cell_write").is_ok());
        assert_eq!(write_len("store.cell_write", 40).unwrap(), 40);
        assert!(!fires("store.cell_write"));
    }

    #[test]
    fn io_error_fires_deterministically() {
        let _g = guard();
        configure("seed=7;a=io_error").unwrap();
        assert!(check_io("a").is_err());
        assert!(check_io("other").is_ok());
        clear();
        assert!(check_io("a").is_ok());
    }

    #[test]
    fn short_write_halves_the_length() {
        let _g = guard();
        configure("a=short_write").unwrap();
        assert_eq!(write_len("a", 40).unwrap(), 20);
        assert_eq!(write_len("a", 1).unwrap(), 0);
        clear();
    }

    #[test]
    fn limits_cap_activations() {
        let _g = guard();
        configure("a=io_error*2").unwrap();
        assert!(check_io("a").is_err());
        assert!(check_io("a").is_err());
        assert!(check_io("a").is_ok());
        assert!(check_io("a").is_ok());
        assert_eq!(stats(), vec![("a".to_string(), 2)]);
        clear();
    }

    #[test]
    fn probability_schedule_is_deterministic_in_the_seed() {
        let _g = guard();
        let run = |seed: u64| -> Vec<bool> {
            configure(&format!("seed={seed};a=io_error:0.5")).unwrap();
            (0..64).map(|_| check_io("a").is_err()).collect()
        };
        let a1 = run(42);
        let a2 = run(42);
        let b = run(43);
        clear();
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        let hits = a1.iter().filter(|&&x| x).count();
        assert!((8..=56).contains(&hits), "p=0.5 schedule fired {hits}/64 times");
    }

    #[test]
    #[should_panic(expected = "failpoint boom: injected panic")]
    fn panic_action_panics_with_the_site_name() {
        let _g = guard();
        configure("boom=panic").unwrap();
        let _ = fires("boom");
    }

    #[test]
    fn spec_errors_are_reported() {
        let _g = guard();
        assert!(configure("a").is_err());
        assert!(configure("seed=x").is_err());
        assert!(configure("a=explode").is_err());
        assert!(configure("a=io_error:1.5").is_err());
        assert!(configure("a=io_error*x").is_err());
        assert!(configure("a=delay(ms)").is_err());
        // `off` disarms a site; an all-off spec leaves the harness disabled
        configure("a=off").unwrap();
        assert!(!enabled());
        clear();
    }
}
