use std::error::Error;
use std::fmt;

/// Errors produced by fallible tensor constructors and reshaping operations.
///
/// Hot-path arithmetic (elementwise ops, matmul) panics on shape mismatch
/// instead of returning `Result`; those panics are documented on each method.
/// This type is reserved for the boundary where user-provided data enters the
/// crate ([`crate::Tensor::from_vec`], [`crate::Tensor::reshape`], …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by the shape differs from the length of
    /// the provided buffer.
    LengthMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        got: usize,
    },
    /// A shape with zero dimensions (or a zero-sized dimension where it is not
    /// allowed) was provided.
    InvalidShape {
        /// Human-readable description of what was wrong.
        reason: String,
    },
    /// Two shapes that were required to match did not.
    ShapeMismatch {
        /// The shape the operation expected.
        expected: Vec<usize>,
        /// The shape the operation received.
        got: Vec<usize>,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, got } => {
                write!(f, "buffer length {got} does not match shape volume {expected}")
            }
            TensorError::InvalidShape { reason } => write!(f, "invalid shape: {reason}"),
            TensorError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected:?}, got {got:?}")
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = TensorError::LengthMismatch { expected: 4, got: 3 };
        let s = e.to_string();
        assert!(s.contains('4') && s.contains('3'));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn shape_mismatch_display_lists_both_shapes() {
        let e = TensorError::ShapeMismatch { expected: vec![2, 2], got: vec![4] };
        let s = e.to_string();
        assert!(s.contains("[2, 2]") && s.contains("[4]"));
    }
}
