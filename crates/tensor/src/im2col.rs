//! Convolution lowering: `im2col` / `col2im`.
//!
//! `ftclip-nn`'s `Conv2d` computes a convolution as a single matrix product:
//! the input image is unrolled into a "column" matrix whose rows are the
//! receptive-field patches, then multiplied by the filter matrix. The reverse
//! scatter (`col2im`) accumulates patch gradients back into an image and is
//! used by the backward pass.

use crate::Tensor;

/// Static geometry of a 2-D convolution: kernel, stride and zero padding.
///
/// # Example
///
/// ```
/// use ftclip_tensor::Conv2dGeometry;
///
/// let g = Conv2dGeometry::new(3, 1, 1); // 3×3 kernel, stride 1, pad 1 ("same")
/// assert_eq!(g.output_size(32, 32), (32, 32));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dGeometry {
    /// Kernel height and width (square kernels only — all paper models use
    /// square kernels).
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding applied to each spatial border.
    pub pad: usize,
}

impl Conv2dGeometry {
    /// Creates a geometry description.
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0` or `stride == 0`.
    pub fn new(kernel: usize, stride: usize, pad: usize) -> Self {
        assert!(kernel > 0, "kernel must be positive");
        assert!(stride > 0, "stride must be positive");
        Conv2dGeometry { kernel, stride, pad }
    }

    /// Output spatial size for an `h × w` input.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input.
    pub fn output_size(&self, h: usize, w: usize) -> (usize, usize) {
        (
            conv_output_size(h, self.kernel, self.stride, self.pad),
            conv_output_size(w, self.kernel, self.stride, self.pad),
        )
    }
}

/// Output length of a 1-D convolution: `(input + 2·pad − kernel) / stride + 1`.
///
/// # Panics
///
/// Panics if the kernel is larger than the padded input.
pub fn conv_output_size(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    let padded = input + 2 * pad;
    assert!(padded >= kernel, "kernel {kernel} larger than padded input {padded}");
    (padded - kernel) / stride + 1
}

/// Unrolls one image `[c, h, w]` into a column matrix
/// `[c·k·k, oh·ow]` under geometry `geom`.
///
/// Column `(oy · ow + ox)` holds the receptive field of output pixel
/// `(oy, ox)` flattened channel-major; zero padding contributes zeros.
///
/// # Panics
///
/// Panics if `image` is not rank 3.
pub fn im2col(image: &Tensor, geom: Conv2dGeometry) -> Tensor {
    let dims = image.shape().dims();
    assert_eq!(dims.len(), 3, "im2col expects [c, h, w], got {}", image.shape());
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    let (oh, ow) = geom.output_size(h, w);
    let k = geom.kernel;
    let rows = c * k * k;
    let cols = oh * ow;
    let mut out = Tensor::zeros(&[rows, cols]);
    let src = image.data();
    let dst = out.data_mut();
    for ci in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ci * k + ky) * k + kx;
                let row_base = row * cols;
                for oy in 0..oh {
                    // input y of this kernel tap, as isize to handle padding
                    let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue; // stays zero
                    }
                    let src_base = (ci * h + iy as usize) * w;
                    let dst_base = row_base + oy * ow;
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        dst[dst_base + ox] = src[src_base + ix as usize];
                    }
                }
            }
        }
    }
    out
}

/// Unrolls a whole batch `[n, c, h, w]` into one column matrix
/// `[c·k·k, n·oh·ow]`, where image `i`'s patches occupy columns
/// `i·oh·ow .. (i+1)·oh·ow`.
///
/// Batching the unroll lets a convolution over the batch run as a single
/// large matrix product, which parallelizes far better than one product per
/// image — the fault campaigns spend most of their time here.
///
/// # Panics
///
/// Panics if `images` is not rank 4.
pub fn im2col_batch(images: &Tensor, geom: Conv2dGeometry) -> Tensor {
    let (n, c, h, w) = images.shape().as_nchw();
    let (oh, ow) = geom.output_size(h, w);
    let k = geom.kernel;
    let rows = c * k * k;
    let total_cols = n * oh * ow;
    let mut out = Tensor::zeros(&[rows, total_cols]);
    im2col_batch_into(images, geom, out.data_mut());
    out
}

/// [`im2col_batch`] writing into caller-provided storage — the allocation-free
/// entry point used by the inference scratch arena.
///
/// Padding positions are left untouched (they must read as zero), so `dst`
/// **must be zero-filled** on entry; passing recycled storage without zeroing
/// it first produces garbage patches.
///
/// # Panics
///
/// Panics if `images` is not rank 4 or `dst` is not exactly
/// `c·k·k × n·oh·ow` elements.
pub fn im2col_batch_into(images: &Tensor, geom: Conv2dGeometry, dst: &mut [f32]) {
    let (n, c, h, w) = images.shape().as_nchw();
    let (oh, ow) = geom.output_size(h, w);
    let k = geom.kernel;
    let rows = c * k * k;
    let l = oh * ow;
    let total_cols = n * l;
    assert_eq!(dst.len(), rows * total_cols, "im2col_batch_into destination size mismatch");
    let src = images.data();
    let img_stride = c * h * w;
    for i in 0..n {
        let img_base = i * img_stride;
        let col_base = i * l;
        for ci in 0..c {
            for ky in 0..k {
                for kx in 0..k {
                    let row = (ci * k + ky) * k + kx;
                    let row_base = row * total_cols + col_base;
                    for oy in 0..oh {
                        let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let src_base = img_base + (ci * h + iy as usize) * w;
                        let dst_base = row_base + oy * ow;
                        for ox in 0..ow {
                            let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            dst[dst_base + ox] = src[src_base + ix as usize];
                        }
                    }
                }
            }
        }
    }
}

/// Unrolls **one** image (a `[c, h, w]` slice of a batch) into a column
/// matrix `[c·k·k, oh·ow]`, **overwriting every element of `dst`** — padding
/// positions are written as explicit `0.0`, so recycled storage needs no
/// zero-fill pass.
///
/// This is the gather step of the im2col-elided convolution plan: instead of
/// materializing one batch-wide column matrix (`n·oh·ow` columns, often tens
/// of megabytes), the executor unrolls one image at a time into a small
/// cache-resident buffer that is reused across the whole batch. The values
/// written are exactly those of [`im2col_batch_into`] for the corresponding
/// image, so any kernel consuming them is bit-identical to the batched path.
///
/// For stride-1 geometries each `(channel, tap, output-row)` maps to one
/// contiguous input run, which is copied with `copy_from_slice` instead of a
/// per-element loop.
///
/// # Panics
///
/// Panics if `image` is not `c·h·w` elements or `dst` is not
/// `c·k·k × oh·ow` elements.
pub fn im2col_image_overwrite(
    image: &[f32],
    c: usize,
    h: usize,
    w: usize,
    geom: Conv2dGeometry,
    dst: &mut [f32],
) {
    let (oh, ow) = geom.output_size(h, w);
    let k = geom.kernel;
    let l = oh * ow;
    assert_eq!(image.len(), c * h * w, "im2col_image_overwrite image size mismatch");
    assert_eq!(dst.len(), c * k * k * l, "im2col_image_overwrite destination size mismatch");
    let (stride, pad) = (geom.stride, geom.pad);
    for ci in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ci * k + ky) * k + kx;
                let row_base = row * l;
                for oy in 0..oh {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    let dst_row = &mut dst[row_base + oy * ow..row_base + oy * ow + ow];
                    if iy < 0 || iy >= h as isize {
                        dst_row.fill(0.0);
                        continue;
                    }
                    let src_row = &image[(ci * h + iy as usize) * w..(ci * h + iy as usize + 1) * w];
                    if stride == 1 {
                        // ix = ox + kx - pad: one contiguous run, zero edges
                        let lo = pad.saturating_sub(kx).min(ow);
                        let hi = (w + pad).saturating_sub(kx).min(ow).max(lo);
                        dst_row[..lo].fill(0.0);
                        let src_lo = lo + kx - pad;
                        dst_row[lo..hi].copy_from_slice(&src_row[src_lo..src_lo + (hi - lo)]);
                        dst_row[hi..].fill(0.0);
                    } else {
                        for (ox, slot) in dst_row.iter_mut().enumerate() {
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            *slot = if ix < 0 || ix >= w as isize { 0.0 } else { src_row[ix as usize] };
                        }
                    }
                }
            }
        }
    }
}

/// Scatters a column matrix `[c·k·k, oh·ow]` back into an image `[c, h, w]`,
/// **accumulating** overlapping contributions (the adjoint of [`im2col`]).
///
/// # Panics
///
/// Panics if `col` is not rank 2 or its shape is inconsistent with
/// `(c, h, w)` under `geom`.
pub fn col2im(col: &Tensor, c: usize, h: usize, w: usize, geom: Conv2dGeometry) -> Tensor {
    let (oh, ow) = geom.output_size(h, w);
    let k = geom.kernel;
    let (rows, cols) = col.shape().as_matrix();
    assert_eq!(rows, c * k * k, "col2im row count mismatch");
    assert_eq!(cols, oh * ow, "col2im column count mismatch");
    let mut out = Tensor::zeros(&[c, h, w]);
    let src = col.data();
    let dst = out.data_mut();
    for ci in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ci * k + ky) * k + kx;
                let row_base = row * cols;
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let dst_base = (ci * h + iy as usize) * w;
                    let src_base = row_base + oy * ow;
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        dst[dst_base + ix as usize] += src[src_base + ox];
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_size_same_padding() {
        assert_eq!(conv_output_size(32, 3, 1, 1), 32);
        assert_eq!(conv_output_size(32, 2, 2, 0), 16);
        assert_eq!(conv_output_size(28, 5, 1, 0), 24);
    }

    #[test]
    #[should_panic(expected = "larger than padded input")]
    fn output_size_rejects_oversized_kernel() {
        conv_output_size(2, 5, 1, 0);
    }

    #[test]
    fn im2col_identity_kernel1() {
        // 1×1 kernel stride 1: col matrix equals the flattened image.
        let img = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 2, 2]).unwrap();
        let col = im2col(&img, Conv2dGeometry::new(1, 1, 0));
        assert_eq!(col.shape().dims(), &[3, 4]);
        assert_eq!(col.data(), img.data());
    }

    #[test]
    fn im2col_known_patch() {
        // 1 channel, 3×3 image, 2×2 kernel, stride 1, no pad → 4 patches.
        let img = Tensor::from_vec((1..=9).map(|x| x as f32).collect(), &[1, 3, 3]).unwrap();
        let col = im2col(&img, Conv2dGeometry::new(2, 1, 0));
        assert_eq!(col.shape().dims(), &[4, 4]);
        // patch at output (0,0) = [1,2,4,5] read down the first column
        let first_patch: Vec<f32> = (0..4).map(|r| col.at2(r, 0)).collect();
        assert_eq!(first_patch, vec![1.0, 2.0, 4.0, 5.0]);
        // patch at output (1,1) = [5,6,8,9]
        let last_patch: Vec<f32> = (0..4).map(|r| col.at2(r, 3)).collect();
        assert_eq!(last_patch, vec![5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn im2col_pad_contributes_zeros() {
        let img = Tensor::ones(&[1, 2, 2]);
        let col = im2col(&img, Conv2dGeometry::new(3, 1, 1));
        // "same" conv: 4 output pixels; corner patch has 4 ones, 5 zeros
        assert_eq!(col.shape().dims(), &[9, 4]);
        let corner: Vec<f32> = (0..9).map(|r| col.at2(r, 0)).collect();
        assert_eq!(corner.iter().filter(|&&x| x == 1.0).count(), 4);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property the backward pass relies on.
        let geom = Conv2dGeometry::new(3, 2, 1);
        let (c, h, w) = (2, 5, 4);
        let x = Tensor::from_vec((0..c * h * w).map(|i| ((i * 37) % 11) as f32 - 5.0).collect(), &[c, h, w])
            .unwrap();
        let col = im2col(&x, geom);
        let (rows, cols) = col.shape().as_matrix();
        let y =
            Tensor::from_vec((0..rows * cols).map(|i| ((i * 13) % 7) as f32 - 3.0).collect(), &[rows, cols])
                .unwrap();
        let lhs: f32 = col.data().iter().zip(y.data()).map(|(&a, &b)| a * b).sum();
        let back = col2im(&y, c, h, w, geom);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(&a, &b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    fn geometry_output_size_helper() {
        let g = Conv2dGeometry::new(2, 2, 0);
        assert_eq!(g.output_size(8, 8), (4, 4));
    }

    #[test]
    fn im2col_image_overwrite_matches_batched_unroll_bitwise() {
        // dirty destination + every geometry class: stride-1 padded (the run
        // fast path incl. edges), strided unpadded, strided padded fallback
        for geom in [Conv2dGeometry::new(3, 1, 1), Conv2dGeometry::new(2, 2, 0), Conv2dGeometry::new(3, 2, 2)]
        {
            let (n, c, h, w) = (2, 3, 5, 4);
            let batch = Tensor::from_vec(
                (0..n * c * h * w).map(|i| ((i * 29) % 17) as f32 - 8.0).collect(),
                &[n, c, h, w],
            )
            .unwrap();
            let big = im2col_batch(&batch, geom);
            let (oh, ow) = geom.output_size(h, w);
            let l = oh * ow;
            let rows = c * geom.kernel * geom.kernel;
            let mut dst = vec![f32::NAN; rows * l]; // garbage must be fully overwritten
            for i in 0..n {
                im2col_image_overwrite(
                    &batch.data()[i * c * h * w..(i + 1) * c * h * w],
                    c,
                    h,
                    w,
                    geom,
                    &mut dst,
                );
                for r in 0..rows {
                    for j in 0..l {
                        assert_eq!(
                            dst[r * l + j].to_bits(),
                            big.at2(r, i * l + j).to_bits(),
                            "geom {geom:?} image {i} row {r} col {j}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn im2col_batch_matches_per_image() {
        let geom = Conv2dGeometry::new(3, 2, 1);
        let (n, c, h, w) = (3, 2, 5, 4);
        let batch = Tensor::from_vec(
            (0..n * c * h * w).map(|i| ((i * 31) % 23) as f32 - 11.0).collect(),
            &[n, c, h, w],
        )
        .unwrap();
        let big = im2col_batch(&batch, geom);
        let (oh, ow) = geom.output_size(h, w);
        let l = oh * ow;
        let (rows, total_cols) = big.shape().as_matrix();
        assert_eq!(total_cols, n * l);
        for i in 0..n {
            let img = batch.slice_batch(i..i + 1).reshape(&[c, h, w]).unwrap();
            let single = im2col(&img, geom);
            for r in 0..rows {
                for j in 0..l {
                    assert_eq!(
                        big.at2(r, i * l + j),
                        single.at2(r, j),
                        "mismatch at image {i} row {r} col {j}"
                    );
                }
            }
        }
    }
}
