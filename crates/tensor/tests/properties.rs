//! Property-based tests for the tensor substrate.

use ftclip_tensor::{col2im, im2col, matmul, matmul_nt, matmul_tn, Conv2dGeometry, Tensor};
use proptest::prelude::*;

fn tensor_strategy(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |v| Tensor::from_vec(v, &[r, c]).unwrap())
    })
}

fn matrix_pair(max_dim: usize) -> impl Strategy<Value = (Tensor, Tensor)> {
    (1..=max_dim, 1..=max_dim, 1..=max_dim).prop_flat_map(|(m, k, n)| {
        let a = proptest::collection::vec(-5.0f32..5.0, m * k)
            .prop_map(move |v| Tensor::from_vec(v, &[m, k]).unwrap());
        let b = proptest::collection::vec(-5.0f32..5.0, k * n)
            .prop_map(move |v| Tensor::from_vec(v, &[k, n]).unwrap());
        (a, b)
    })
}

proptest! {
    #[test]
    fn add_commutes(t in tensor_strategy(8)) {
        let doubled = t.add(&t);
        let scaled = t.map(|x| 2.0 * x);
        prop_assert!(doubled.approx_eq(&scaled, 1e-5));
    }

    #[test]
    fn sub_self_is_zero(t in tensor_strategy(8)) {
        let z = t.sub(&t);
        prop_assert_eq!(z.sum(), 0.0);
    }

    #[test]
    fn reshape_preserves_sum(t in tensor_strategy(8)) {
        let flat = t.reshape(&[t.len()]).unwrap();
        prop_assert_eq!(t.sum(), flat.sum());
    }

    #[test]
    fn matmul_identity_left(t in tensor_strategy(8)) {
        let (rows, _) = t.shape().as_matrix();
        let prod = matmul(&Tensor::eye(rows), &t);
        prop_assert!(prod.approx_eq(&t, 1e-4));
    }

    #[test]
    fn matmul_distributes_over_addition((a, b) in matrix_pair(6), ) {
        // A·(B+B) == A·B + A·B
        let b2 = b.add(&b);
        let lhs = matmul(&a, &b2);
        let ab = matmul(&a, &b);
        let rhs = ab.add(&ab);
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn matmul_tn_consistent_with_matmul((a, b) in matrix_pair(6)) {
        // (Aᵀ)ᵀ·B via matmul_tn on the transposed operand must equal A·B.
        let (m, k) = a.shape().as_matrix();
        let mut at = Tensor::zeros(&[k, m]);
        for i in 0..m {
            for j in 0..k {
                at.data_mut()[j * m + i] = a.at2(i, j);
            }
        }
        let lhs = matmul_tn(&at, &b);
        let rhs = matmul(&a, &b);
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn matmul_nt_consistent_with_matmul((a, b) in matrix_pair(6)) {
        let (k, n) = b.shape().as_matrix();
        let mut bt = Tensor::zeros(&[n, k]);
        for i in 0..k {
            for j in 0..n {
                bt.data_mut()[j * k + i] = b.at2(i, j);
            }
        }
        let lhs = matmul_nt(&a, &bt);
        let rhs = matmul(&a, &b);
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn argmax_rows_within_bounds(t in tensor_strategy(8)) {
        let (_, cols) = t.shape().as_matrix();
        for idx in t.argmax_rows() {
            prop_assert!(idx < cols);
        }
    }

    #[test]
    fn im2col_col2im_adjoint(
        c in 1usize..3, h in 3usize..8, w in 3usize..8,
        kernel in 1usize..4, stride in 1usize..3, pad in 0usize..2,
        seed in 0u64..1000,
    ) {
        prop_assume!(h + 2 * pad >= kernel && w + 2 * pad >= kernel);
        let geom = Conv2dGeometry::new(kernel, stride, pad);
        let vol = c * h * w;
        let x = Tensor::from_vec(
            (0..vol).map(|i| (((i as u64).wrapping_mul(seed + 1) % 17) as f32) - 8.0).collect(),
            &[c, h, w],
        ).unwrap();
        let col = im2col(&x, geom);
        let (rows, cols) = col.shape().as_matrix();
        let y = Tensor::from_vec(
            (0..rows * cols).map(|i| (((i as u64).wrapping_mul(seed + 3) % 13) as f32) - 6.0).collect(),
            &[rows, cols],
        ).unwrap();
        let lhs: f32 = col.data().iter().zip(y.data()).map(|(&p, &q)| p * q).sum();
        let back = col2im(&y, c, h, w, geom);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(&p, &q)| p * q).sum();
        prop_assert!((lhs - rhs).abs() <= 1e-2 * (1.0 + lhs.abs()), "adjoint mismatch {} vs {}", lhs, rhs);
    }

    #[test]
    fn stack_then_slice_roundtrip(t in tensor_strategy(6)) {
        let stacked = Tensor::stack(&[&t, &t]);
        let first = stacked.slice_batch(0..1);
        let expect = {
            let mut dims = vec![1usize];
            dims.extend_from_slice(t.shape().dims());
            t.reshape(&dims).unwrap()
        };
        prop_assert!(first.approx_eq(&expect, 0.0));
    }
}
