//! Property-based tests for the tensor substrate.

use ftclip_tensor::{col2im, im2col, matmul, matmul_nt, matmul_tn, Conv2dGeometry, Tensor};
use proptest::prelude::*;

/// The reference the blocked kernel must replay bit-for-bit: a naive
/// `i-j-k` triple loop accumulating each element in ascending-`k` order.
fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape().as_matrix();
    let (_, n) = b.shape().as_matrix();
    let mut c = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a.at2(i, kk) * b.at2(kk, j);
            }
            c.data_mut()[i * n + j] = acc;
        }
    }
    c
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|x| x.to_bits()).collect()
}

/// Deterministic nonzero pseudo-random fill (the kernel's zero-skip makes
/// exact zeros follow a different — deliberately different — code path,
/// covered by `matmul_with_zero_coefficients_matches_skip_reference`).
fn nonzero_fill(dims: &[usize], seed: u64) -> Tensor {
    let vol: usize = dims.iter().product();
    let data = (0..vol)
        .map(|i| {
            let x = ((i as u64).wrapping_mul(6364136223846793005).wrapping_add(seed) >> 33) as u32;
            let mag = 0.1 + (x % 1000) as f32 / 250.0;
            if x.is_multiple_of(2) {
                mag
            } else {
                -mag
            }
        })
        .collect();
    Tensor::from_vec(data, dims).unwrap()
}

/// The blocked kernel must be bit-identical to the naive triple loop on the
/// shapes its tiling finds awkward: degenerate, tall-skinny, wide-short and
/// sizes straddling the 512-column / 64-k tile boundaries.
#[test]
fn blocked_matmul_bitwise_on_odd_shapes() {
    for &(m, k, n) in &[
        (1usize, 1usize, 1usize), // degenerate
        (70, 3, 2),               // tall-skinny
        (2, 7, 4097),             // wide-short (column-parallel dispatch range)
        (5, 67, 513),             // one past the K_BLOCK=64 / J_TILE=512 edges
        (3, 128, 512),            // exact tile multiples
        (9, 65, 31),              // 4-wide unroll remainder (65 = 16·4 + 1)
    ] {
        let a = nonzero_fill(&[m, k], 11);
        let b = nonzero_fill(&[k, n], 23);
        assert_eq!(
            bits(&matmul(&a, &b)),
            bits(&naive_matmul(&a, &b)),
            "blocked kernel diverged from naive on [{m},{k}]x[{k},{n}]"
        );
    }
}

/// With exact-zero coefficients the kernel skips the multiply entirely; the
/// reference with the same skip rule must still match bit-for-bit.
#[test]
fn matmul_with_zero_coefficients_matches_skip_reference() {
    let (m, k, n) = (6usize, 70usize, 130usize);
    let mut a = nonzero_fill(&[m, k], 5);
    for i in 0..a.len() {
        if i % 3 == 0 {
            a.data_mut()[i] = 0.0;
        }
    }
    let b = nonzero_fill(&[k, n], 7);
    let mut expect = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for kk in 0..k {
            let a_ik = a.at2(i, kk);
            if a_ik == 0.0 {
                continue;
            }
            for j in 0..n {
                expect.data_mut()[i * n + j] += a_ik * b.at2(kk, j);
            }
        }
    }
    assert_eq!(bits(&matmul(&a, &b)), bits(&expect));
}

fn tensor_strategy(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |v| Tensor::from_vec(v, &[r, c]).unwrap())
    })
}

fn matrix_pair(max_dim: usize) -> impl Strategy<Value = (Tensor, Tensor)> {
    (1..=max_dim, 1..=max_dim, 1..=max_dim).prop_flat_map(|(m, k, n)| {
        let a = proptest::collection::vec(-5.0f32..5.0, m * k)
            .prop_map(move |v| Tensor::from_vec(v, &[m, k]).unwrap());
        let b = proptest::collection::vec(-5.0f32..5.0, k * n)
            .prop_map(move |v| Tensor::from_vec(v, &[k, n]).unwrap());
        (a, b)
    })
}

proptest! {
    #[test]
    fn add_commutes(t in tensor_strategy(8)) {
        let doubled = t.add(&t);
        let scaled = t.map(|x| 2.0 * x);
        prop_assert!(doubled.approx_eq(&scaled, 1e-5));
    }

    #[test]
    fn sub_self_is_zero(t in tensor_strategy(8)) {
        let z = t.sub(&t);
        prop_assert_eq!(z.sum(), 0.0);
    }

    #[test]
    fn reshape_preserves_sum(t in tensor_strategy(8)) {
        let flat = t.reshape(&[t.len()]).unwrap();
        prop_assert_eq!(t.sum(), flat.sum());
    }

    #[test]
    fn matmul_identity_left(t in tensor_strategy(8)) {
        let (rows, _) = t.shape().as_matrix();
        let prod = matmul(&Tensor::eye(rows), &t);
        prop_assert!(prod.approx_eq(&t, 1e-4));
    }

    #[test]
    fn matmul_distributes_over_addition((a, b) in matrix_pair(6), ) {
        // A·(B+B) == A·B + A·B
        let b2 = b.add(&b);
        let lhs = matmul(&a, &b2);
        let ab = matmul(&a, &b);
        let rhs = ab.add(&ab);
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn matmul_tn_consistent_with_matmul((a, b) in matrix_pair(6)) {
        // (Aᵀ)ᵀ·B via matmul_tn on the transposed operand must equal A·B.
        let (m, k) = a.shape().as_matrix();
        let mut at = Tensor::zeros(&[k, m]);
        for i in 0..m {
            for j in 0..k {
                at.data_mut()[j * m + i] = a.at2(i, j);
            }
        }
        let lhs = matmul_tn(&at, &b);
        let rhs = matmul(&a, &b);
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn matmul_nt_consistent_with_matmul((a, b) in matrix_pair(6)) {
        let (k, n) = b.shape().as_matrix();
        let mut bt = Tensor::zeros(&[n, k]);
        for i in 0..k {
            for j in 0..n {
                bt.data_mut()[j * k + i] = b.at2(i, j);
            }
        }
        let lhs = matmul_nt(&a, &bt);
        let rhs = matmul(&a, &b);
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn blocked_matmul_bitwise_matches_naive(
        m in 1usize..16, k in 1usize..140, n in 1usize..40,
        sa in 0u64..1000, sb in 0u64..1000,
    ) {
        // random shapes, nonzero data: the blocked/unrolled kernel must
        // replay the naive kernel's exact per-element rounding sequence
        let a = nonzero_fill(&[m, k], sa);
        let b = nonzero_fill(&[k, n], sb);
        prop_assert_eq!(bits(&matmul(&a, &b)), bits(&naive_matmul(&a, &b)));
    }

    #[test]
    fn argmax_rows_within_bounds(t in tensor_strategy(8)) {
        let (_, cols) = t.shape().as_matrix();
        for idx in t.argmax_rows() {
            prop_assert!(idx < cols);
        }
    }

    #[test]
    fn im2col_col2im_adjoint(
        c in 1usize..3, h in 3usize..8, w in 3usize..8,
        kernel in 1usize..4, stride in 1usize..3, pad in 0usize..2,
        seed in 0u64..1000,
    ) {
        prop_assume!(h + 2 * pad >= kernel && w + 2 * pad >= kernel);
        let geom = Conv2dGeometry::new(kernel, stride, pad);
        let vol = c * h * w;
        let x = Tensor::from_vec(
            (0..vol).map(|i| (((i as u64).wrapping_mul(seed + 1) % 17) as f32) - 8.0).collect(),
            &[c, h, w],
        ).unwrap();
        let col = im2col(&x, geom);
        let (rows, cols) = col.shape().as_matrix();
        let y = Tensor::from_vec(
            (0..rows * cols).map(|i| (((i as u64).wrapping_mul(seed + 3) % 13) as f32) - 6.0).collect(),
            &[rows, cols],
        ).unwrap();
        let lhs: f32 = col.data().iter().zip(y.data()).map(|(&p, &q)| p * q).sum();
        let back = col2im(&y, c, h, w, geom);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(&p, &q)| p * q).sum();
        prop_assert!((lhs - rhs).abs() <= 1e-2 * (1.0 + lhs.abs()), "adjoint mismatch {} vs {}", lhs, rhs);
    }

    #[test]
    fn stack_then_slice_roundtrip(t in tensor_strategy(6)) {
        let stacked = Tensor::stack(&[&t, &t]);
        let first = stacked.slice_batch(0..1);
        let expect = {
            let mut dims = vec![1usize];
            dims.extend_from_slice(t.shape().dims());
            t.reshape(&dims).unwrap()
        };
        prop_assert!(first.approx_eq(&expect, 0.0));
    }
}
