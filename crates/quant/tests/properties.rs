//! Property-based tests for the quantization scheme and the bit-flip
//! injectors (satellites of the int8 subsystem):
//!
//! * quantize → dequantize round-trip error is bounded by half a
//!   quantization step for in-range values;
//! * bit-flip injection is self-inverse (flipping the same bit twice
//!   restores the original word) on both IEEE-754 `f32` and int8 encodings,
//!   uniform and stratified.

use ftclip_fault::{BitPosition, FaultModel, Quadrant};
use ftclip_quant::{dequantize_value, quantize_value, scale_for};
use proptest::prelude::*;

fn stratified_models() -> impl Strategy<Value = FaultModel> {
    prop_oneof![
        Just(FaultModel::BitFlip),
        Just(FaultModel::BitFlipAt(BitPosition::Sign)),
        Just(FaultModel::BitFlipAt(BitPosition::Exponent)),
        Just(FaultModel::BitFlipAt(BitPosition::Mantissa)),
        Just(FaultModel::BitFlipAt(BitPosition::Quadrant(Quadrant::Q1))),
        Just(FaultModel::BitFlipAt(BitPosition::Quadrant(Quadrant::Q3))),
        (0u8..32).prop_map(|b| FaultModel::BitFlipAt(BitPosition::Exact(b))),
    ]
}

proptest! {
    #[test]
    fn quantize_dequantize_round_trip_is_within_half_a_step(
        absmax in 1e-3f32..1e3,
        frac in -1.0f32..1.0,
    ) {
        let scale = scale_for(absmax);
        let x = absmax * frac; // always within the representable range
        let back = dequantize_value(quantize_value(x, scale), scale);
        prop_assert!(
            (back - x).abs() <= scale / 2.0 + scale * 1e-5,
            "x={x} back={back} scale={scale}"
        );
    }

    #[test]
    fn quantized_values_never_leave_the_symmetric_range(
        absmax in 1e-3f32..1e3,
        x in -1e6f32..1e6,
    ) {
        let q = quantize_value(x, scale_for(absmax));
        prop_assert!((-127..=127).contains(&(q as i32)), "quantize produced {q}");
    }

    #[test]
    fn f32_bit_flips_are_self_inverse(word in any::<u32>(), bit in 0u8..32, model in stratified_models()) {
        let flipped = model.apply_to_word(word, bit);
        prop_assert_ne!(flipped, word, "a flip must change the word");
        prop_assert_eq!(model.apply_to_word(flipped, bit), word, "double flip must restore");
    }

    #[test]
    fn int8_bit_flips_are_self_inverse(byte in any::<u8>(), bit in 0u8..8, model in stratified_models()) {
        let flipped = model.apply_to_byte(byte, bit);
        prop_assert_ne!(flipped, byte, "a flip must change the byte");
        prop_assert_eq!(model.apply_to_byte(flipped, bit), byte, "double flip must restore");
    }

    #[test]
    fn stuck_at_faults_are_idempotent_not_involutive(word in any::<u32>(), bit in 0u8..32) {
        for model in [FaultModel::StuckAt0, FaultModel::StuckAt1] {
            let once = model.apply_to_word(word, bit);
            prop_assert_eq!(model.apply_to_word(once, bit), once, "stuck-at must be idempotent");
        }
    }
}
