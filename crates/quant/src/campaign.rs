//! Rate × repetition fault campaigns over a quantized plan.

use ftclip_fault::{
    derive_seed, CampaignCache, CampaignConfig, CampaignError, CampaignResult, FaultModel, RateConvergence,
    RunRecord,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::inject::QuantInjection;
use crate::plan::QuantizedPlan;

/// The int8 twin of [`ftclip_fault::Campaign`]: sweeps
/// [`CampaignConfig::fault_rates`] × repetitions over a [`QuantizedPlan`],
/// injecting byte-level faults and measuring accuracy through a
/// caller-supplied evaluator.
///
/// Cell semantics are shared with the f32 executor bit for bit where they
/// can be: run `(i, rep)` seeds its RNG with
/// [`derive_seed`]`(config.seed, i, rep)`, a zero-fault sample reports the
/// clean accuracy without evaluating, cells round-trip through the
/// [`CampaignCache`] protocol, and an adaptive [`CampaignConfig::stopping`]
/// rule stops each rate on the same doubling boundaries (`min_reps`,
/// `2·min_reps`, … capped at `max_reps`) with the same bootstrap half-width
/// test. [`CampaignConfig::target`] is ignored: the quantized weight memory
/// is one address space of weight bytes (biases stay `f32` and are not
/// injectable).
#[derive(Debug)]
pub struct QuantCampaign<'a> {
    plan: &'a mut QuantizedPlan,
    config: &'a CampaignConfig,
}

impl<'a> QuantCampaign<'a> {
    /// Creates a campaign over `plan`.
    ///
    /// # Errors
    ///
    /// Propagates [`CampaignConfig::validate`] failures.
    pub fn new(plan: &'a mut QuantizedPlan, config: &'a CampaignConfig) -> Result<Self, CampaignError> {
        config.validate()?;
        Ok(QuantCampaign { plan, config })
    }

    /// The fault model the campaign injects.
    pub fn model(&self) -> FaultModel {
        self.config.model
    }

    /// Runs the campaign serially, reading and recording cells through
    /// `cache`. `eval` measures the plan's accuracy (the fault state is
    /// whatever the campaign has applied when it calls).
    ///
    /// With `config.stopping` set, each rate samples on the doubling
    /// boundaries and stops as soon as the bootstrap interval over its
    /// accuracies is tighter than the target (reported in
    /// [`CampaignResult::convergence`]); otherwise the fixed
    /// `config.repetitions` grid runs exhaustively.
    pub fn run_cached(
        &mut self,
        cache: &dyn CampaignCache,
        eval: &mut dyn FnMut(&QuantizedPlan) -> f64,
    ) -> CampaignResult {
        let clean_accuracy = match cache.clean_accuracy() {
            Some(a) => a,
            None => {
                let a = eval(self.plan);
                cache.record_clean(a);
                a
            }
        };
        let rates = self.config.fault_rates.clone();
        let mut accuracies: Vec<Vec<f64>> = vec![Vec::new(); rates.len()];
        let mut runs = Vec::new();
        let mut convergence = None;
        match self.config.stopping {
            None => {
                for (i, &rate) in rates.iter().enumerate() {
                    for rep in 0..self.config.repetitions {
                        let record = self.cell(i, rate, rep, clean_accuracy, cache, eval);
                        accuracies[i].push(record.accuracy);
                        runs.push(record);
                    }
                }
            }
            Some(rule) => {
                let mut report = Vec::with_capacity(rates.len());
                for (i, &rate) in rates.iter().enumerate() {
                    // the wave scheduler's doubling boundaries: min_reps,
                    // 2·min_reps, … capped at max_reps — stopping decisions
                    // depend only on this rate's accuracy prefix, so the
                    // serial schedule samples exactly the same cells
                    let mut boundary = rule.min_reps.min(rule.max_reps);
                    loop {
                        while accuracies[i].len() < boundary {
                            let rep = accuracies[i].len();
                            let record = self.cell(i, rate, rep, clean_accuracy, cache, eval);
                            accuracies[i].push(record.accuracy);
                            runs.push(record);
                        }
                        if rule.satisfied(&accuracies[i]) || boundary >= rule.max_reps {
                            break;
                        }
                        boundary = (boundary * 2).min(rule.max_reps);
                    }
                    let half_width = rule.half_width(&accuracies[i]);
                    report.push(RateConvergence {
                        rate_index: i,
                        reps_used: accuracies[i].len(),
                        half_width,
                        converged: half_width <= rule.target_half_width,
                    });
                }
                convergence = Some(report);
            }
        }
        CampaignResult {
            fault_rates: rates,
            accuracies,
            runs,
            clean_accuracy,
            convergence,
        }
    }

    /// One campaign cell: cache lookup, else sample → apply → eval → undo.
    fn cell(
        &mut self,
        i: usize,
        rate: f64,
        rep: usize,
        clean_accuracy: f64,
        cache: &dyn CampaignCache,
        eval: &mut dyn FnMut(&QuantizedPlan) -> f64,
    ) -> RunRecord {
        if let Some(record) = cache.lookup(i, rep) {
            assert_eq!((record.rate_index, record.repetition), (i, rep), "cache returned a mislabeled cell");
            return record;
        }
        let mut rng = StdRng::seed_from_u64(derive_seed(self.config.seed, i, rep));
        let injection = QuantInjection::sample(self.plan, self.config.model, rate, &mut rng);
        let fault_count = injection.fault_count();
        let accuracy = if fault_count == 0 {
            clean_accuracy
        } else {
            let handle = injection.apply(self.plan);
            let accuracy = eval(self.plan);
            handle.undo(self.plan);
            accuracy
        };
        let record = RunRecord { rate_index: i, repetition: rep, fault_count, accuracy };
        cache.record(&record);
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclip_fault::{InjectionTarget, NoCache, StoppingRule};
    use ftclip_nn::{Layer, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plan() -> QuantizedPlan {
        let net = Sequential::new(vec![Layer::flatten(), Layer::linear(16, 4, 3), Layer::relu()]);
        let mut rng = StdRng::seed_from_u64(2);
        let calib = ftclip_tensor::uniform_init(&[4, 1, 4, 4], -1.0, 1.0, &mut rng);
        QuantizedPlan::quantize(&net, &calib).unwrap()
    }

    fn config(rates: Vec<f64>, reps: usize, stopping: Option<StoppingRule>) -> CampaignConfig {
        CampaignConfig {
            fault_rates: rates,
            repetitions: reps,
            seed: 42,
            model: FaultModel::BitFlip,
            target: InjectionTarget::AllWeights,
            stopping,
        }
    }

    #[test]
    fn fixed_grid_runs_every_cell_and_restores_the_plan() {
        let mut p = plan();
        let before: Vec<i8> = (0..p.node_weight_lens().len())
            .flat_map(|n| p.weights_mut(n).to_vec())
            .collect();
        let cfg = config(vec![0.0, 0.01], 3, None);
        let mut evals = 0usize;
        let result =
            QuantCampaign::new(&mut p, &cfg)
                .unwrap()
                .run_cached(&NoCache, &mut |qp: &QuantizedPlan| {
                    evals += 1;
                    qp.weight_words() as f64 * 0.0 + 0.5
                });
        assert_eq!(result.runs.len(), 6);
        assert_eq!(result.accuracies.len(), 2);
        // rate 0.0 samples zero faults → clean accuracy without evaluating
        assert!(result.accuracies[0].iter().all(|&a| a == result.clean_accuracy));
        assert!(result.convergence.is_none());
        let after: Vec<i8> = (0..p.node_weight_lens().len())
            .flat_map(|n| p.weights_mut(n).to_vec())
            .collect();
        assert_eq!(after, before, "campaign must leave the plan clean");
    }

    #[test]
    fn cells_are_seed_deterministic_across_runs() {
        let cfg = config(vec![0.02], 4, None);
        let run = || {
            let mut p = plan();
            QuantCampaign::new(&mut p, &cfg)
                .unwrap()
                .run_cached(&NoCache, &mut |qp| {
                    qp.execute(&ftclip_tensor::Tensor::ones(&[1, 1, 4, 4])).data()[0] as f64
                })
                .accuracies
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn adaptive_run_reports_convergence_per_rate() {
        let mut p = plan();
        let cfg =
            config(vec![0.01], 8, Some(StoppingRule { target_half_width: 0.5, min_reps: 2, max_reps: 8 }));
        let result = QuantCampaign::new(&mut p, &cfg).unwrap().run_cached(&NoCache, &mut |_| 0.75);
        let conv = result.convergence.expect("adaptive run must report convergence");
        assert_eq!(conv.len(), 1);
        // constant accuracies: the interval collapses at min_reps
        assert_eq!(conv[0].reps_used, 2);
        assert!(conv[0].converged);
        assert_eq!(result.accuracies[0].len(), 2);
    }

    struct FixedCache(Vec<RunRecord>);

    impl CampaignCache for FixedCache {
        fn lookup(&self, rate_index: usize, repetition: usize) -> Option<RunRecord> {
            self.0
                .iter()
                .copied()
                .find(|r| (r.rate_index, r.repetition) == (rate_index, repetition))
        }
    }

    #[test]
    fn cache_hits_skip_evaluation() {
        let cfg = config(vec![0.02], 2, None);
        let cache = FixedCache(vec![
            RunRecord { rate_index: 0, repetition: 0, fault_count: 5, accuracy: 0.25 },
            RunRecord { rate_index: 0, repetition: 1, fault_count: 3, accuracy: 0.75 },
        ]);
        let mut p = plan();
        let mut evals = 0usize;
        let result = QuantCampaign::new(&mut p, &cfg).unwrap().run_cached(&cache, &mut |_| {
            evals += 1;
            0.0
        });
        assert_eq!(result.accuracies[0], vec![0.25, 0.75]);
        assert_eq!(evals, 1, "only the clean-accuracy evaluation runs on a full cache");
    }
}
