//! The precision axis experiments select on.

use std::fmt;
use std::str::FromStr;

/// Numeric precision of an inference engine: the trained `f32` network, or
/// its post-training int8 quantization ([`crate::QuantizedPlan`]).
///
/// `Precision` enters the experiment-spec fingerprint (and, through distinct
/// session labels, the store's cell addressing), so campaigns over the two
/// precisions never share cached cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// IEEE-754 single precision — the paper's native path.
    #[default]
    F32,
    /// Post-training symmetric int8 quantization.
    Int8,
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Precision::F32 => "f32",
            Precision::Int8 => "int8",
        })
    }
}

impl FromStr for Precision {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "f32" => Ok(Precision::F32),
            "int8" => Ok(Precision::Int8),
            other => Err(format!("unknown precision '{other}' (expected f32|int8)")),
        }
    }
}

impl Precision {
    /// Width in bits of one weight word under this precision — the encoding
    /// a [`ftclip_fault::BitPosition`] stratum is resolved against.
    pub fn word_bits(self) -> u8 {
        match self {
            Precision::F32 => 32,
            Precision::Int8 => 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips() {
        for p in [Precision::F32, Precision::Int8] {
            assert_eq!(p.to_string().parse::<Precision>().unwrap(), p);
        }
        assert!("fp16".parse::<Precision>().is_err());
    }

    #[test]
    fn default_is_f32() {
        assert_eq!(Precision::default(), Precision::F32);
        assert_eq!(Precision::default().word_bits(), 32);
        assert_eq!(Precision::Int8.word_bits(), 8);
    }
}
