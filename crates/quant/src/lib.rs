//! Post-training int8 quantization for the FT-ClipAct reproduction.
//!
//! The paper's entire resilience analysis runs in `f32`; this crate adds the
//! second precision of the study: a **post-training quantized int8 inference
//! engine** plus byte-level fault injection over the quantized weight
//! memory. The pieces:
//!
//! * [`Precision`] — the `f32` / `int8` axis experiments select on.
//! * [`QuantizedPlan`] — a trained [`ftclip_nn::Sequential`] lowered through
//!   the graph-IR fusion decisions ([`ftclip_nn::ForwardPlan::node_descs`])
//!   into int8 nodes: per-tensor symmetric scales (zero-point 0) for weights
//!   and activations, calibrated over a held-out batch
//!   ([`QuantizedPlan::quantize`]).
//! * [`QuantInjection`] — [`ftclip_fault::FaultModel`] faults sampled over
//!   the int8 weight bytes, including [`ftclip_fault::BitPosition`]
//!   strata resolved against the 8-bit encoding (where `Exponent` is the
//!   empty stratum — int8 has no exponent field, which is exactly the
//!   structural difference the `fig_bitpos` experiment measures).
//! * [`QuantCampaign`] — the rate × repetition campaign grid over a
//!   quantized plan, sharing the fault crate's seed derivation, cell cache
//!   protocol and adaptive stopping rule.
//!
//! # Arithmetic contract
//!
//! Matrix products accumulate in `i32` ([`ftclip_tensor::gemm_i8_accumulate`],
//! [`ftclip_tensor::matmul_i8_nt_into`]); integer addition is exact and
//! associative, so the kernels re-associate freely for speed and are still
//! deterministic — the same plan and input always produce the same logits.
//! Dequantization, bias, activation and pooling run in `f32` per node, then
//! requantize for the next node; the final compute node emits `f32` logits.
//!
//! The `f32` path is untouched by everything in this crate: quantization
//! reads the trained network immutably, and all int8 state lives in the
//! [`QuantizedPlan`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod inject;
mod plan;
mod precision;
mod qtensor;

pub use campaign::QuantCampaign;
pub use inject::{AppliedQuantInjection, QuantInjection};
pub use plan::{QuantError, QuantizedPlan};
pub use precision::Precision;
pub use qtensor::{dequantize_value, quantize_slice, quantize_value, scale_for};
