//! Lowering a trained network into an int8 plan, and executing it.

use ftclip_nn::{Activation, Layer, PlanNode, Scratch, Sequential, Span};
use ftclip_tensor::{
    conv_output_size, im2col_i8_image_overwrite, interleave_widen_pairs, matmul_i16_pairs_into,
    matmul_i8_nt_into, Conv2dGeometry, Tensor,
};

use crate::qtensor::{absmax, quantize_slice, quantize_value, scale_for};

/// Why a network cannot be lowered to int8.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantError {
    /// The plan contains a layer kind the int8 executor has no kernel for.
    Unsupported {
        /// Index of the offending layer.
        layer: usize,
        /// Its kind, for the error message.
        kind: String,
    },
    /// The network has no compute (conv / linear) nodes to quantize.
    NoComputeNodes,
    /// The calibration batch produced a non-finite activation.
    BadCalibration {
        /// Index of the layer whose output was non-finite.
        layer: usize,
    },
}

impl std::fmt::Display for QuantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantError::Unsupported { layer, kind } => {
                write!(f, "layer {layer} ({kind}) has no int8 lowering")
            }
            QuantError::NoComputeNodes => write!(f, "network has no conv/linear nodes to quantize"),
            QuantError::BadCalibration { layer } => {
                write!(f, "calibration produced a non-finite activation at layer {layer}")
            }
        }
    }
}

impl std::error::Error for QuantError {}

/// One lowered node. Weights are stored quantized; biases stay `f32` and are
/// added after dequantization (the standard post-training scheme — bias
/// precision is never the bottleneck and keeps the accumulator path simple).
#[derive(Debug, Clone)]
enum QNode {
    Conv {
        /// `[oc, ic·k·k]` row-major quantized filter matrix.
        weight: Vec<i8>,
        w_scale: f32,
        bias: Vec<f32>,
        ic: usize,
        oc: usize,
        geom: Conv2dGeometry,
        act: Option<Activation>,
        /// Fused trailing max-pool `(kernel, stride)`.
        pool: Option<(usize, usize)>,
        in_scale: f32,
        /// `None` → this node emits the plan's `f32` output.
        out_scale: Option<f32>,
    },
    Linear {
        /// `[out_f, in_f]` row-major quantized weight matrix.
        weight: Vec<i8>,
        w_scale: f32,
        bias: Vec<f32>,
        in_f: usize,
        out_f: usize,
        act: Option<Activation>,
        in_scale: f32,
        out_scale: Option<f32>,
    },
    /// Flatten: dims-only, the quantized buffer is already contiguous.
    Flatten,
}

/// A trained [`Sequential`] lowered to int8: quantized weights, calibrated
/// activation scales, and the graph-IR fusion structure
/// ([`ftclip_nn::ForwardPlan::node_descs`]) baked into executable nodes.
///
/// Unlike the f32 [`ftclip_nn::ForwardPlan`] (pure structure, parameters
/// read live), a quantized plan **owns** its weight bytes — they are the
/// int8 weight memory the byte-level fault injector corrupts.
#[derive(Debug, Clone)]
pub struct QuantizedPlan {
    nodes: Vec<QNode>,
    input_scale: f32,
}

impl QuantizedPlan {
    /// Post-training quantization: lowers `net` through its compiled forward
    /// plan, calibrating every activation scale over `calib` (a held-out
    /// `[n, c, h, w]` batch run once through the `f32` engine).
    ///
    /// Per-tensor symmetric scheme: weight scale = `absmax / 127` per node,
    /// activation scale likewise from the calibration batch; zero-points are
    /// all 0. The final compute node keeps its output in `f32` (logits).
    ///
    /// # Errors
    ///
    /// [`QuantError::Unsupported`] for layers without an int8 kernel,
    /// [`QuantError::NoComputeNodes`] for a network with nothing to
    /// quantize, [`QuantError::BadCalibration`] if the batch produces
    /// non-finite activations.
    pub fn quantize(net: &Sequential, calib: &Tensor) -> Result<Self, QuantError> {
        let descs = net.plan(calib.shape().dims()).node_descs();
        let last_compute = descs
            .iter()
            .rposition(|d| matches!(d, PlanNode::ConvAct { .. } | PlanNode::LinearAct { .. }))
            .ok_or(QuantError::NoComputeNodes)?;
        let mut scratch = Scratch::new();
        let mut cur = calib.clone();
        let mut act_scale = scale_for(absmax(cur.data()));
        let input_scale = act_scale;
        let mut nodes = Vec::new();
        for (di, desc) in descs.iter().enumerate() {
            let r = desc.layers();
            let next = net.execute(&cur, Span::range(r.start, r.end), &mut scratch);
            match *desc {
                PlanNode::Elided { .. } => {}
                PlanNode::Reshape { .. } => nodes.push(QNode::Flatten),
                PlanNode::ConvAct { conv, act, pool } => {
                    let Layer::Conv2d(c) = &net.layers()[conv] else {
                        unreachable!("plan node mislabeled layer {conv}")
                    };
                    let m = absmax(next.data());
                    if !m.is_finite() {
                        return Err(QuantError::BadCalibration { layer: conv });
                    }
                    let out_scale = (di != last_compute).then(|| scale_for(m));
                    let w_scale = scale_for(absmax(c.weight().data()));
                    nodes.push(QNode::Conv {
                        weight: quantize_slice(c.weight().data(), w_scale),
                        w_scale,
                        bias: c.bias().data().to_vec(),
                        ic: c.in_channels(),
                        oc: c.out_channels(),
                        geom: c.geometry(),
                        act: activation_of(net, act),
                        pool: pool.map(|pi| match &net.layers()[pi] {
                            Layer::MaxPool2d(p) => (p.kernel(), p.stride()),
                            other => panic!("plan node expects a max-pool, found {}", other.kind()),
                        }),
                        in_scale: act_scale,
                        out_scale,
                    });
                    act_scale = out_scale.unwrap_or(1.0);
                }
                PlanNode::LinearAct { lin, act } => {
                    let Layer::Linear(l) = &net.layers()[lin] else {
                        unreachable!("plan node mislabeled layer {lin}")
                    };
                    let m = absmax(next.data());
                    if !m.is_finite() {
                        return Err(QuantError::BadCalibration { layer: lin });
                    }
                    let out_scale = (di != last_compute).then(|| scale_for(m));
                    let w_scale = scale_for(absmax(l.weight().data()));
                    nodes.push(QNode::Linear {
                        weight: quantize_slice(l.weight().data(), w_scale),
                        w_scale,
                        bias: l.bias().data().to_vec(),
                        in_f: l.in_features(),
                        out_f: l.out_features(),
                        act: activation_of(net, act),
                        in_scale: act_scale,
                        out_scale,
                    });
                    act_scale = out_scale.unwrap_or(1.0);
                }
                PlanNode::Opaque { layer } => {
                    return Err(QuantError::Unsupported {
                        layer,
                        kind: net.layers()[layer].kind().to_string(),
                    });
                }
            }
            cur = next;
        }
        Ok(QuantizedPlan { nodes, input_scale })
    }

    /// The calibrated scale the network input is quantized with.
    pub fn input_scale(&self) -> f32 {
        self.input_scale
    }

    /// Total number of int8 weight words across all nodes — the address
    /// space of the byte-level fault injector.
    pub fn weight_words(&self) -> usize {
        self.node_weight_lens().iter().sum()
    }

    /// Per-node weight word counts, in node order (prefix sums give the
    /// injector's word → node mapping).
    pub(crate) fn node_weight_lens(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .map(|n| match n {
                QNode::Conv { weight, .. } | QNode::Linear { weight, .. } => weight.len(),
                QNode::Flatten => 0,
            })
            .collect()
    }

    /// Mutable access to one node's weight bytes (fault injection).
    pub(crate) fn weights_mut(&mut self, node: usize) -> &mut [i8] {
        match &mut self.nodes[node] {
            QNode::Conv { weight, .. } | QNode::Linear { weight, .. } => weight,
            QNode::Flatten => &mut [],
        }
    }

    /// Runs the int8 engine on a `[n, c, h, w]` batch, returning `f32`
    /// logits `[n, classes]`.
    ///
    /// Deterministic: `i32` accumulation is exact, so the result never
    /// depends on evaluation order. Activations are quantized per node with
    /// the calibrated scales; the last compute node emits `f32`.
    ///
    /// # Panics
    ///
    /// Panics if `x`'s shape is inconsistent with the lowered network.
    pub fn execute(&self, x: &Tensor) -> Tensor {
        let mut dims = x.shape().dims().to_vec();
        let n = dims[0];
        let mut q = quantize_slice(x.data(), self.input_scale);
        let mut logits: Option<(Vec<f32>, usize)> = None;
        for node in &self.nodes {
            match node {
                QNode::Flatten => {
                    let rest: usize = dims[1..].iter().product();
                    dims = vec![n, rest];
                }
                QNode::Conv {
                    weight,
                    w_scale,
                    bias,
                    ic,
                    oc,
                    geom,
                    act,
                    pool,
                    in_scale,
                    out_scale,
                } => {
                    assert_eq!(dims.len(), 4, "conv node expects rank-4 input, got {dims:?}");
                    assert_eq!(dims[1], *ic, "conv input channel mismatch");
                    let (h, w) = (dims[2], dims[3]);
                    let (oh, ow) = geom.output_size(h, w);
                    let l = oh * ow;
                    let kk = ic * geom.kernel * geom.kernel;
                    let chw = ic * h * w;
                    let (out_h, out_w) = match pool {
                        Some((pk, ps)) => {
                            (conv_output_size(oh, *pk, *ps, 0), conv_output_size(ow, *pk, *ps, 0))
                        }
                        None => (oh, ow),
                    };
                    let out_l = out_h * out_w;
                    let dq = in_scale * w_scale;
                    // widen the (possibly fault-corrupted) i8 filter rows to
                    // i16 once per batch, padded to an even tap count, so the
                    // pair-interleaved matmul runs conversion-free
                    let kk_pad = kk + (kk & 1);
                    let mut wide = vec![0i16; oc * kk_pad];
                    for (dst, src) in wide.chunks_exact_mut(kk_pad).zip(weight.chunks_exact(kk)) {
                        for (d, &v) in dst.iter_mut().zip(src) {
                            *d = v as i16;
                        }
                    }
                    let mut cols8 = vec![0i8; kk * l];
                    let mut cols = vec![0i16; kk_pad * l];
                    let mut acc = vec![0i32; oc * l];
                    let mut stage = vec![0f32; oc * l];
                    let mut pooled = vec![0f32; oc * out_l];
                    let mut q_out = vec![0i8; if out_scale.is_some() { n * oc * out_l } else { 0 }];
                    let mut f_out = vec![0f32; if out_scale.is_none() { n * oc * out_l } else { 0 }];
                    for i in 0..n {
                        im2col_i8_image_overwrite(&q[i * chw..(i + 1) * chw], *ic, h, w, *geom, &mut cols8);
                        interleave_widen_pairs(&cols8, kk, l, &mut cols);
                        matmul_i16_pairs_into(&wide, &cols, &mut acc, kk_pad, l);
                        for ((seg, dst), &b) in acc.chunks(l).zip(stage.chunks_mut(l)).zip(bias) {
                            match act {
                                // the overwhelmingly common activation gets
                                // a branch-free fused loop the vectorizer
                                // can take; everything else goes through the
                                // generic per-element path
                                Some(Activation::Relu) => {
                                    for (s, &v) in dst.iter_mut().zip(seg) {
                                        *s = (v as f32 * dq + b).max(0.0);
                                    }
                                }
                                Some(a) => {
                                    for (s, &v) in dst.iter_mut().zip(seg) {
                                        *s = a.apply_scalar(v as f32 * dq + b);
                                    }
                                }
                                None => {
                                    for (s, &v) in dst.iter_mut().zip(seg) {
                                        *s = v as f32 * dq + b;
                                    }
                                }
                            }
                        }
                        let planes: &[f32] = match pool {
                            Some((pk, ps)) => {
                                max_pool_planes(&stage, *oc, oh, ow, *pk, *ps, &mut pooled);
                                &pooled
                            }
                            None => &stage,
                        };
                        match out_scale {
                            Some(s) => {
                                for (dst, &v) in
                                    q_out[i * oc * out_l..(i + 1) * oc * out_l].iter_mut().zip(planes)
                                {
                                    *dst = quantize_value(v, *s);
                                }
                            }
                            None => f_out[i * oc * out_l..(i + 1) * oc * out_l].copy_from_slice(planes),
                        }
                    }
                    dims = vec![n, *oc, out_h, out_w];
                    match out_scale {
                        Some(_) => q = q_out,
                        None => logits = Some((f_out, oc * out_l)),
                    }
                }
                QNode::Linear { weight, w_scale, bias, in_f, out_f, act, in_scale, out_scale } => {
                    assert_eq!(dims.len(), 2, "linear node expects rank-2 input, got {dims:?}");
                    assert_eq!(dims[1], *in_f, "linear input feature mismatch");
                    let mut acc = vec![0i32; n * out_f];
                    matmul_i8_nt_into(&q, weight, &mut acc, *in_f, *out_f);
                    let dq = in_scale * w_scale;
                    dims = vec![n, *out_f];
                    match out_scale {
                        Some(s) => {
                            let mut q_out = vec![0i8; n * out_f];
                            for (row, q_row) in acc.chunks(*out_f).zip(q_out.chunks_mut(*out_f)) {
                                for ((dst, &v), &b) in q_row.iter_mut().zip(row).zip(bias) {
                                    let y = v as f32 * dq + b;
                                    *dst = quantize_value(act.map_or(y, |a| a.apply_scalar(y)), *s);
                                }
                            }
                            q = q_out;
                        }
                        None => {
                            let mut f_out = vec![0f32; n * out_f];
                            for (row, f_row) in acc.chunks(*out_f).zip(f_out.chunks_mut(*out_f)) {
                                for ((dst, &v), &b) in f_row.iter_mut().zip(row).zip(bias) {
                                    let y = v as f32 * dq + b;
                                    *dst = act.map_or(y, |a| a.apply_scalar(y));
                                }
                            }
                            logits = Some((f_out, *out_f));
                        }
                    }
                }
            }
        }
        let (data, per_image) = logits.expect("plan has a final f32 compute node");
        Tensor::from_vec(data, &[n, per_image]).expect("logit volume matches")
    }

    /// Top-1 classification accuracy over `(images, labels)`, evaluated in
    /// batches of `batch` images.
    ///
    /// # Panics
    ///
    /// Panics if `images` is not rank 4 or `labels` is shorter than the
    /// batch dimension.
    pub fn accuracy(&self, images: &Tensor, labels: &[usize], batch: usize) -> f64 {
        let n = images.shape()[0];
        assert!(labels.len() >= n, "labels shorter than the image batch");
        if n == 0 {
            return 0.0;
        }
        let batch = batch.max(1);
        let mut correct = 0usize;
        let mut start = 0usize;
        while start < n {
            let end = (start + batch).min(n);
            let logits = self.execute(&images.slice_batch(start..end));
            for (pred, &label) in logits.argmax_rows().iter().zip(&labels[start..end]) {
                correct += usize::from(*pred == label);
            }
            start = end;
        }
        correct as f64 / n as f64
    }
}

/// The fused activation at layer index `act`, read from the network.
fn activation_of(net: &Sequential, act: Option<usize>) -> Option<Activation> {
    act.map(|ai| match &net.layers()[ai] {
        Layer::Activation(a) => a.func,
        other => panic!("plan node expects an activation at layer {ai}, found {}", other.kind()),
    })
}

/// Max-pools `c` contiguous `h × w` planes into `dst` — the same window scan
/// as the f32 engine (`ky`/`kx` ascending, strict `>`, clipped at the edge).
fn max_pool_planes(src: &[f32], c: usize, h: usize, w: usize, kernel: usize, stride: usize, dst: &mut [f32]) {
    let oh = conv_output_size(h, kernel, stride, 0);
    let ow = conv_output_size(w, kernel, stride, 0);
    // every pool in the reproduced networks is 2×2/stride-2 with even
    // extents; that case never clips at an edge, so a branch-free
    // max-of-four scan over row pairs replaces the window loop
    if kernel == 2 && stride == 2 && oh * 2 == h && ow * 2 == w {
        for ci in 0..c {
            let plane = &src[ci * h * w..(ci + 1) * h * w];
            let out = &mut dst[ci * oh * ow..(ci + 1) * oh * ow];
            for oy in 0..oh {
                let top = &plane[oy * 2 * w..oy * 2 * w + w];
                let bot = &plane[(oy * 2 + 1) * w..(oy * 2 + 1) * w + w];
                let row = &mut out[oy * ow..(oy + 1) * ow];
                for ox in 0..ow {
                    let a = top[ox * 2].max(top[ox * 2 + 1]);
                    let b = bot[ox * 2].max(bot[ox * 2 + 1]);
                    row[ox] = a.max(b);
                }
            }
        }
        return;
    }
    let mut o = 0usize;
    for ci in 0..c {
        let plane = ci * h * w;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                for ky in 0..kernel {
                    let iy = oy * stride + ky;
                    if iy >= h {
                        break;
                    }
                    for kx in 0..kernel {
                        let ix = ox * stride + kx;
                        if ix >= w {
                            break;
                        }
                        let v = src[plane + iy * w + ix];
                        if v > best {
                            best = v;
                        }
                    }
                }
                dst[o] = best;
                o += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclip_nn::MaxPool2d;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net() -> Sequential {
        Sequential::new(vec![
            Layer::conv2d(1, 4, 3, 1, 1, 7),
            Layer::relu(),
            Layer::MaxPool2d(MaxPool2d::new(2, 2)),
            Layer::flatten(),
            Layer::linear(4 * 4 * 4, 12, 8),
            Layer::relu(),
            Layer::linear(12, 4, 9),
        ])
    }

    fn batch(seed: u64, n: usize) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        ftclip_tensor::uniform_init(&[n, 1, 8, 8], -1.0, 1.0, &mut rng)
    }

    #[test]
    fn quantized_logits_track_f32_logits() {
        let net = tiny_net();
        let calib = batch(1, 16);
        let qp = QuantizedPlan::quantize(&net, &calib).unwrap();
        let x = batch(2, 8);
        let f_logits = net.execute(&x, Span::full(), &mut Scratch::new());
        let q_logits = qp.execute(&x);
        assert_eq!(q_logits.shape().dims(), f_logits.shape().dims());
        let scale = absmax(f_logits.data()).max(1e-6);
        for (q, f) in q_logits.data().iter().zip(f_logits.data()) {
            let rel = (q - f).abs() / scale;
            assert!(rel < 0.25, "quantized logit {q} far from f32 {f} (rel {rel})");
        }
    }

    #[test]
    fn quantized_predictions_mostly_agree_with_f32() {
        let net = tiny_net();
        let calib = batch(1, 16);
        let qp = QuantizedPlan::quantize(&net, &calib).unwrap();
        let x = batch(3, 32);
        let f_pred = net.execute(&x, Span::full(), &mut Scratch::new()).argmax_rows();
        let q_pred = qp.execute(&x).argmax_rows();
        let agree = f_pred.iter().zip(&q_pred).filter(|(a, b)| a == b).count();
        // untrained logits sit near zero, so quantization noise flips some
        // argmaxes — but agreement must still be far above the 25% chance
        // level of a 4-class head
        assert!(agree * 2 >= 32, "only {agree}/32 predictions agree");
    }

    #[test]
    fn execute_is_deterministic() {
        let net = tiny_net();
        let qp = QuantizedPlan::quantize(&net, &batch(1, 8)).unwrap();
        let x = batch(4, 4);
        let a: Vec<u32> = qp.execute(&x).data().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = qp.execute(&x).data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn accuracy_counts_argmax_matches() {
        let net = tiny_net();
        let qp = QuantizedPlan::quantize(&net, &batch(1, 8)).unwrap();
        let x = batch(5, 10);
        let preds = qp.execute(&x).argmax_rows();
        // batched evaluation (batch 3, uneven tail) must agree with one pass
        assert_eq!(qp.accuracy(&x, &preds, 3), 1.0);
        let wrong: Vec<usize> = preds.iter().map(|p| (p + 1) % 4).collect();
        assert_eq!(qp.accuracy(&x, &wrong, 4), 0.0);
    }

    #[test]
    fn weight_words_count_every_quantized_parameter() {
        let net = tiny_net();
        let qp = QuantizedPlan::quantize(&net, &batch(1, 4)).unwrap();
        // conv 4·1·3·3 + fc1 12·64 + fc2 4·12 weights (biases stay f32)
        assert_eq!(qp.weight_words(), 36 + 768 + 48);
    }

    #[test]
    fn unsupported_layer_is_reported() {
        let net = Sequential::new(vec![
            Layer::conv2d(2, 2, 3, 1, 1, 4),
            Layer::BatchNorm2d(ftclip_nn::BatchNorm2d::new(2)),
        ]);
        let calib = Tensor::zeros(&[1, 2, 4, 4]);
        match QuantizedPlan::quantize(&net, &calib) {
            Err(QuantError::Unsupported { layer: 1, .. }) => {}
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn empty_network_is_rejected() {
        let net = Sequential::new(vec![Layer::flatten()]);
        let calib = Tensor::zeros(&[1, 2, 2, 2]);
        assert!(matches!(QuantizedPlan::quantize(&net, &calib), Err(QuantError::NoComputeNodes)));
    }
}
