//! Symmetric per-tensor quantization primitives.
//!
//! The scheme is the standard post-training symmetric one: a tensor with
//! absolute maximum `m` gets scale `s = m / 127` and zero-point 0, so a real
//! value `x` maps to `clamp(round(x / s), -127, 127)` and back to `q · s`.
//! `-128` is never produced: the symmetric range keeps negation exact and
//! makes a literal `0` byte the representation of real zero (which is what
//! the int8 im2col writes for padding).

/// The symmetric scale for a tensor with absolute maximum `absmax`:
/// `absmax / 127`, or `1.0` for an all-zero tensor (any scale represents
/// zeros exactly; `1.0` avoids a 0-divide downstream).
pub fn scale_for(absmax: f32) -> f32 {
    if absmax > 0.0 {
        absmax / 127.0
    } else {
        1.0
    }
}

/// Quantizes one value: `clamp(round(x / scale), -127, 127)`.
///
/// Implemented branchlessly as `trunc(r + copysign(0.5, r))` instead of
/// [`f32::round`]: bit-identical for every representable `r` in the clamped
/// range (both round half away from zero; the sum `r ± 0.5` is exact or
/// tie-rounds without crossing an integer for `|r| < 2^22`, and everything
/// beyond saturates at ±127 anyway), but free of the libm `roundf` call the
/// baseline x86-64 target lowers `round` to — this runs inside the int8
/// engine's requantization loops, where it must autovectorize.
pub fn quantize_value(x: f32, scale: f32) -> i8 {
    let r = x / scale;
    (r + 0.5f32.copysign(r)).clamp(-127.0, 127.0) as i8
}

/// Dequantizes one value: `q · scale`.
pub fn dequantize_value(q: i8, scale: f32) -> f32 {
    q as f32 * scale
}

/// Quantizes a slice with one shared scale.
pub fn quantize_slice(xs: &[f32], scale: f32) -> Vec<i8> {
    xs.iter().map(|&x| quantize_value(x, scale)).collect()
}

/// The absolute maximum of a slice, ignoring non-finite values (a calibration
/// batch never contains them, but a poisoned activation must not produce a
/// NaN scale).
pub fn absmax(xs: &[f32]) -> f32 {
    xs.iter().filter(|x| x.is_finite()).fold(0.0f32, |m, &x| m.max(x.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_error_is_bounded_by_half_a_step() {
        let vals: Vec<f32> = (0..1000).map(|i| (i as f32 - 500.0) * 0.013).collect();
        let m = absmax(&vals);
        let s = scale_for(m);
        for &x in &vals {
            let back = dequantize_value(quantize_value(x, s), s);
            assert!((back - x).abs() <= s / 2.0 + 1e-6, "x={x} back={back} scale={s}");
        }
    }

    #[test]
    fn zero_tensor_gets_unit_scale_and_exact_zeros() {
        let s = scale_for(absmax(&[0.0, -0.0, 0.0]));
        assert_eq!(s, 1.0);
        assert_eq!(quantize_value(0.0, s), 0);
    }

    #[test]
    fn branchless_rounding_matches_f32_round_everywhere() {
        // sweep the f32 bit space coarsely plus every half-step and
        // near-half-step in the clamp range: the branchless body must agree
        // with the textbook round-then-clamp definition bit for bit
        let reference = |x: f32, s: f32| (x / s).round().clamp(-127.0, 127.0) as i8;
        for scale in [1.0f32, 0.013, 127.0 / 3.0] {
            for i in 0..=(255 * 4) {
                for delta in [-f32::EPSILON * 256.0, 0.0, f32::EPSILON * 256.0] {
                    let r = (i as f32 - 510.0) * 0.25 + delta;
                    let x = r * scale;
                    assert_eq!(quantize_value(x, scale), reference(x, scale), "r={r} scale={scale}");
                }
            }
        }
        for bits in (0..=u32::MAX).step_by(65_537) {
            let x = f32::from_bits(bits);
            assert_eq!(quantize_value(x, 1.0), reference(x, 1.0), "bits={bits:#x} x={x}");
        }
    }

    #[test]
    fn extremes_saturate_at_plus_minus_127() {
        let s = scale_for(1.0);
        assert_eq!(quantize_value(1.0, s), 127);
        assert_eq!(quantize_value(-1.0, s), -127);
        assert_eq!(quantize_value(1e9, s), 127);
        assert_eq!(quantize_value(-1e9, s), -127);
    }
}
