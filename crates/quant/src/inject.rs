//! Byte-level fault injection over the quantized weight memory.

use ftclip_fault::{sample_bit_positions, BitPosition, FaultModel};
use rand::Rng;

use crate::plan::QuantizedPlan;

/// A sampled fault set over a [`QuantizedPlan`]'s int8 weight bytes — the
/// quantized twin of [`ftclip_fault::Injection`].
///
/// Sampling is exact independent `Bernoulli(rate)` per (word, bit) site via
/// the fault crate's geometric-skip sampler. A uniform model draws over all
/// `8 · weight_words` bits; a [`BitPosition`]-stratified model draws over
/// `|stratum| · weight_words` sites, with the stratum resolved against the
/// **8-bit** encoding — so `Exponent` is empty (int8 has no exponent field)
/// and a stratified campaign at any rate injects zero faults there, which is
/// precisely the structural split `fig_bitpos` measures.
#[derive(Debug, Clone)]
pub struct QuantInjection {
    /// `(node, word_in_node, bit)` per fault, in sampling order.
    faults: Vec<(usize, usize, u8)>,
    model: FaultModel,
}

impl QuantInjection {
    /// Samples a fault set for `plan` under `model` at per-bit (per-site)
    /// probability `rate`.
    pub fn sample<R: Rng + ?Sized>(plan: &QuantizedPlan, model: FaultModel, rate: f64, rng: &mut R) -> Self {
        let lens = plan.node_weight_lens();
        let total_words: usize = lens.iter().sum();
        let locate = |word: usize| -> (usize, usize) {
            let mut remaining = word;
            for (node, &len) in lens.iter().enumerate() {
                if remaining < len {
                    return (node, remaining);
                }
                remaining -= len;
            }
            unreachable!("word index {word} outside {total_words} weight words")
        };
        let faults = match model.bit_position() {
            None => sample_bit_positions(total_words * 8, rate, rng)
                .into_iter()
                .map(|p| {
                    let (node, word) = locate(p / 8);
                    (node, word, (p % 8) as u8)
                })
                .collect(),
            Some(pos) => {
                let stratum = pos.bits(8);
                if stratum.is_empty() {
                    Vec::new()
                } else {
                    sample_bit_positions(total_words * stratum.len(), rate, rng)
                        .into_iter()
                        .map(|p| {
                            let (node, word) = locate(p / stratum.len());
                            (node, word, stratum[p % stratum.len()])
                        })
                        .collect()
                }
            }
        };
        QuantInjection { faults, model }
    }

    /// Number of sampled faults.
    pub fn fault_count(&self) -> usize {
        self.faults.len()
    }

    /// The sampled `(node, word_in_node, bit)` sites.
    pub fn faults(&self) -> &[(usize, usize, u8)] {
        &self.faults
    }

    /// The stratum the faults were drawn from, when the model is
    /// stratified.
    pub fn bit_position(&self) -> Option<BitPosition> {
        self.model.bit_position()
    }

    /// Applies every fault to `plan`'s weight bytes, returning a handle that
    /// restores the exact original bytes.
    pub fn apply(&self, plan: &mut QuantizedPlan) -> AppliedQuantInjection {
        let mut originals = Vec::with_capacity(self.faults.len());
        for &(node, word, bit) in &self.faults {
            let bytes = plan.weights_mut(node);
            originals.push(bytes[word]);
            bytes[word] = self.model.apply_to_byte(bytes[word] as u8, bit) as i8;
        }
        AppliedQuantInjection { faults: self.faults.clone(), originals }
    }
}

/// Proof that a [`QuantInjection`] was applied; restores the weight memory
/// byte-exactly on [`AppliedQuantInjection::undo`].
#[derive(Debug)]
pub struct AppliedQuantInjection {
    faults: Vec<(usize, usize, u8)>,
    originals: Vec<i8>,
}

impl AppliedQuantInjection {
    /// Restores every faulted byte to its pre-injection value. Reverse
    /// order, so overlapping faults on one byte unwind correctly.
    pub fn undo(self, plan: &mut QuantizedPlan) {
        for (&(node, word, _), &orig) in self.faults.iter().zip(&self.originals).rev() {
            plan.weights_mut(node)[word] = orig;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclip_fault::Quadrant;
    use ftclip_nn::{Layer, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plan() -> QuantizedPlan {
        let net = Sequential::new(vec![Layer::flatten(), Layer::linear(16, 8, 3), Layer::relu()]);
        let mut rng = StdRng::seed_from_u64(2);
        let calib = ftclip_tensor::uniform_init(&[4, 1, 4, 4], -1.0, 1.0, &mut rng);
        QuantizedPlan::quantize(&net, &calib).unwrap()
    }

    fn snapshot(p: &mut QuantizedPlan) -> Vec<i8> {
        (0..p.node_weight_lens().len())
            .flat_map(|n| p.weights_mut(n).to_vec())
            .collect()
    }

    #[test]
    fn apply_then_undo_restores_every_byte() {
        let mut p = plan();
        let before = snapshot(&mut p);
        let inj = QuantInjection::sample(&p, FaultModel::BitFlip, 0.05, &mut StdRng::seed_from_u64(7));
        assert!(inj.fault_count() > 0);
        let handle = inj.apply(&mut p);
        assert_ne!(snapshot(&mut p), before);
        handle.undo(&mut p);
        assert_eq!(snapshot(&mut p), before);
    }

    #[test]
    fn strata_resolve_against_the_int8_encoding() {
        let p = plan();
        let cases = [
            (BitPosition::Sign, vec![7u8]),
            (BitPosition::Mantissa, (0..7).collect::<Vec<u8>>()),
            (BitPosition::Quadrant(Quadrant::Q4), vec![6, 7]),
            (BitPosition::Exact(3), vec![3]),
        ];
        for (pos, allowed) in cases {
            let inj =
                QuantInjection::sample(&p, FaultModel::BitFlipAt(pos), 0.5, &mut StdRng::seed_from_u64(11));
            assert!(inj.fault_count() > 0, "{pos:?} must hit at rate 0.5");
            for &(_, _, bit) in inj.faults() {
                assert!(allowed.contains(&bit), "{pos:?} drew bit {bit} outside {allowed:?}");
            }
        }
    }

    #[test]
    fn exponent_stratum_is_empty_on_int8() {
        let p = plan();
        let inj = QuantInjection::sample(
            &p,
            FaultModel::BitFlipAt(BitPosition::Exponent),
            1.0,
            &mut StdRng::seed_from_u64(1),
        );
        assert_eq!(inj.fault_count(), 0, "int8 has no exponent bits to flip");
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let p = plan();
        let sample = |seed| {
            QuantInjection::sample(&p, FaultModel::BitFlip, 0.1, &mut StdRng::seed_from_u64(seed))
                .faults()
                .to_vec()
        };
        assert_eq!(sample(9), sample(9));
        assert_ne!(sample(9), sample(10));
    }

    #[test]
    fn stuck_at_models_apply_to_bytes() {
        let mut p = plan();
        let inj = QuantInjection::sample(&p, FaultModel::StuckAt1, 0.2, &mut StdRng::seed_from_u64(5));
        let handle = inj.apply(&mut p);
        for &(node, word, bit) in inj.faults() {
            assert_ne!(p.weights_mut(node)[word] as u8 & (1 << bit), 0, "stuck-at-1 must set the bit");
        }
        handle.undo(&mut p);
    }
}
