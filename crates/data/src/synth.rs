//! Deterministic synthetic CIFAR-class image generator.
//!
//! **Substitution note (DESIGN.md §3).** The paper trains on CIFAR-10, which
//! is not available in this environment. `SynthCifar` generates a 10-class,
//! 32×32×3 image-classification task with the properties the FT-ClipAct
//! experiments actually depend on:
//!
//! * images are learnable but not trivially so — trained AlexNet/VGG-style
//!   models land in the paper's 70–85 % accuracy band (tunable via
//!   [`SynthCifarBuilder::noise_std`]);
//! * pixel values live in `[-1, 1]` like normalized CIFAR images;
//! * class structure is spatial (gratings + blobs), so convolutions matter.
//!
//! Every image is a pure function of `(seed, split, index)`, so datasets are
//! bit-reproducible across runs and machines.

use ftclip_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Dataset;

/// Number of sinusoidal gratings per class prototype.
const GRATINGS: usize = 2;
/// Number of Gaussian blobs per class prototype.
const BLOBS: usize = 2;

/// Class-defining pattern parameters (one per class, drawn from the
/// generator seed).
#[derive(Debug, Clone)]
struct ClassProto {
    /// Base colour per channel.
    base: [f32; 3],
    /// Per grating: (fx, fy, phase, amplitude, channel weights).
    gratings: Vec<(f32, f32, f32, f32, [f32; 3])>,
    /// Per blob: (cx, cy, inv_sigma_sq, amplitude, channel weights).
    blobs: Vec<(f32, f32, f32, f32, [f32; 3])>,
}

impl ClassProto {
    /// Linear interpolation toward `other`: `self + t·(other − self)` on
    /// every parameter. Used to pull class prototypes toward a shared base
    /// pattern, which controls inter-class confusability.
    fn lerp_toward(&self, other: &ClassProto, t: f32) -> ClassProto {
        let l = |a: f32, b: f32| a + t * (b - a);
        let lw = |a: &[f32; 3], b: &[f32; 3]| [l(a[0], b[0]), l(a[1], b[1]), l(a[2], b[2])];
        ClassProto {
            base: lw(&self.base, &other.base),
            gratings: self
                .gratings
                .iter()
                .zip(&other.gratings)
                .map(|(&(fx, fy, ph, amp, w), &(fx2, fy2, ph2, amp2, w2))| {
                    (l(fx, fx2), l(fy, fy2), l(ph, ph2), l(amp, amp2), lw(&w, &w2))
                })
                .collect(),
            blobs: self
                .blobs
                .iter()
                .zip(&other.blobs)
                .map(|(&(cx, cy, s, amp, w), &(cx2, cy2, s2, amp2, w2))| {
                    (l(cx, cx2), l(cy, cy2), l(s, s2), l(amp, amp2), lw(&w, &w2))
                })
                .collect(),
        }
    }

    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut base = [0.0f32; 3];
        for b in &mut base {
            *b = rng.gen_range(-0.4..0.4);
        }
        let gratings = (0..GRATINGS)
            .map(|_| {
                let fx = rng.gen_range(0.5f32..3.0) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                let fy = rng.gen_range(0.5f32..3.0) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                let phase = rng.gen_range(0.0..std::f32::consts::TAU);
                let amp = rng.gen_range(0.2..0.45);
                let mut w = [0.0f32; 3];
                for v in &mut w {
                    *v = rng.gen_range(-1.0..1.0);
                }
                (fx, fy, phase, amp, w)
            })
            .collect();
        let blobs = (0..BLOBS)
            .map(|_| {
                let cx = rng.gen_range(0.2..0.8);
                let cy = rng.gen_range(0.2..0.8);
                let sigma = rng.gen_range(0.08f32..0.2);
                let amp = rng.gen_range(0.3f32..0.6) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                let mut w = [0.0f32; 3];
                for v in &mut w {
                    *v = rng.gen_range(0.0..1.0);
                }
                (cx, cy, 1.0 / (2.0 * sigma * sigma), amp, w)
            })
            .collect();
        ClassProto { base, gratings, blobs }
    }

    /// Prototype value at normalized coordinates `(u, v) ∈ [0,1]²`, channel
    /// `c`, under a per-sample distortion of the grating phases/amplitudes
    /// and blob positions.
    fn value(&self, u: f32, v: f32, c: usize, jitter: &SampleJitter) -> f32 {
        let mut acc = self.base[c];
        for (g, &(fx, fy, phase, amp, w)) in self.gratings.iter().enumerate() {
            let a = amp * jitter.grating_amp[g];
            let p = phase + jitter.grating_phase[g];
            acc += a * w[c] * (std::f32::consts::TAU * (fx * u + fy * v) + p).sin();
        }
        for (b, &(cx, cy, inv2s2, amp, w)) in self.blobs.iter().enumerate() {
            let (dx, dy) = jitter.blob_offset[b];
            let d2 = (u - cx - dx) * (u - cx - dx) + (v - cy - dy) * (v - cy - dy);
            acc += amp * w[c] * (-d2 * inv2s2).exp();
        }
        acc
    }
}

/// Per-sample distortion of the class pattern: grating phase/amplitude
/// jitter and blob displacement. This is the *structural* difficulty knob —
/// it raises intra-class variance the way viewpoint/instance variation does
/// in natural images, which pixel noise alone cannot emulate.
#[derive(Debug, Clone)]
struct SampleJitter {
    grating_phase: [f32; GRATINGS],
    grating_amp: [f32; GRATINGS],
    blob_offset: [(f32, f32); BLOBS],
}

impl SampleJitter {
    fn sample<R: Rng + ?Sized>(rng: &mut R, distortion: f32) -> Self {
        let mut grating_phase = [0.0f32; GRATINGS];
        let mut grating_amp = [1.0f32; GRATINGS];
        let mut blob_offset = [(0.0f32, 0.0f32); BLOBS];
        for p in &mut grating_phase {
            *p = rng.gen_range(-1.0f32..1.0) * distortion * std::f32::consts::PI;
        }
        for a in &mut grating_amp {
            *a = 1.0 + rng.gen_range(-0.5f32..0.5) * distortion;
        }
        for o in &mut blob_offset {
            *o = (rng.gen_range(-0.2f32..0.2) * distortion, rng.gen_range(-0.2f32..0.2) * distortion);
        }
        SampleJitter { grating_phase, grating_amp, blob_offset }
    }
}

/// The synthetic CIFAR-substitute dataset: train / validation / test splits.
///
/// # Example
///
/// ```
/// use ftclip_data::SynthCifar;
///
/// let data = SynthCifar::builder()
///     .seed(1)
///     .train_size(128)
///     .val_size(64)
///     .test_size(64)
///     .build();
/// assert_eq!(data.train().len(), 128);
/// assert_eq!(data.val().len(), 64);
/// assert_eq!(data.test().num_classes(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct SynthCifar {
    train: Dataset,
    val: Dataset,
    test: Dataset,
}

impl SynthCifar {
    /// Starts building a generator.
    pub fn builder() -> SynthCifarBuilder {
        SynthCifarBuilder::default()
    }

    /// The training split (what the model owner used; the methodology itself
    /// never touches it, matching the paper's no-training-data constraint).
    pub fn train(&self) -> &Dataset {
        &self.train
    }

    /// The validation split (threshold profiling and tuning draw subsets of
    /// this).
    pub fn val(&self) -> &Dataset {
        &self.val
    }

    /// The held-out test split (final resilience evaluation).
    pub fn test(&self) -> &Dataset {
        &self.test
    }
}

/// Builder for [`SynthCifar`].
#[derive(Debug, Clone)]
pub struct SynthCifarBuilder {
    seed: u64,
    classes: usize,
    image_size: usize,
    channels: usize,
    train_size: usize,
    val_size: usize,
    test_size: usize,
    noise_std: f32,
    distortion: f32,
    class_sep: f32,
    max_shift: i32,
}

impl Default for SynthCifarBuilder {
    fn default() -> Self {
        SynthCifarBuilder {
            seed: 0,
            classes: 10,
            image_size: 32,
            channels: 3,
            train_size: 4096,
            val_size: 1024,
            test_size: 1024,
            noise_std: 0.35,
            distortion: 0.5,
            class_sep: 0.5,
            max_shift: 3,
        }
    }
}

impl SynthCifarBuilder {
    /// Master seed: fixes class prototypes and every sample.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of classes (default 10, like CIFAR-10).
    pub fn classes(mut self, classes: usize) -> Self {
        self.classes = classes;
        self
    }

    /// Square image side (default 32).
    pub fn image_size(mut self, image_size: usize) -> Self {
        self.image_size = image_size;
        self
    }

    /// Image channels, 1–3 (default 3). Use 1 for single-channel models
    /// like LeNet-5.
    pub fn channels(mut self, channels: usize) -> Self {
        self.channels = channels;
        self
    }

    /// Training-split size (default 4096).
    pub fn train_size(mut self, n: usize) -> Self {
        self.train_size = n;
        self
    }

    /// Validation-split size (default 1024).
    pub fn val_size(mut self, n: usize) -> Self {
        self.val_size = n;
        self
    }

    /// Test-split size (default 1024).
    pub fn test_size(mut self, n: usize) -> Self {
        self.test_size = n;
        self
    }

    /// Per-pixel Gaussian noise σ (default 0.35) — the *pixel-level*
    /// difficulty knob.
    pub fn noise_std(mut self, noise_std: f32) -> Self {
        self.noise_std = noise_std;
        self
    }

    /// Per-sample pattern distortion in `[0, 1]` (default 0.5): jitters
    /// grating phases/amplitudes and blob positions per sample, raising
    /// intra-class variance the way instance variation does in natural
    /// images.
    pub fn distortion(mut self, distortion: f32) -> Self {
        self.distortion = distortion;
        self
    }

    /// Inter-class separation in `(0, 1]` (default 0.5) — the primary
    /// difficulty knob. Class prototypes are interpolated between one shared
    /// base pattern (`0`: all classes identical) and fully independent
    /// patterns (`1`). Lower values make classes genuinely confusable, the
    /// property that puts trained baselines in the paper's 70–85 % band
    /// (calibrated in DESIGN.md §3 via the `calibrate_dataset` tool).
    pub fn class_sep(mut self, class_sep: f32) -> Self {
        self.class_sep = class_sep;
        self
    }

    /// Maximum translation jitter in pixels (default 3).
    pub fn max_shift(mut self, max_shift: i32) -> Self {
        self.max_shift = max_shift;
        self
    }

    /// Generates all three splits.
    ///
    /// # Panics
    ///
    /// Panics if any split size or the class count is zero, or
    /// `image_size < 8`.
    pub fn build(self) -> SynthCifar {
        assert!(self.classes > 0, "need at least one class");
        assert!(
            self.train_size > 0 && self.val_size > 0 && self.test_size > 0,
            "split sizes must be positive"
        );
        assert!(self.image_size >= 8, "image size must be at least 8");
        assert!((1..=3).contains(&self.channels), "channels must be 1–3, got {}", self.channels);
        assert!(
            (0.0..=1.0).contains(&self.distortion),
            "distortion must be in [0, 1], got {}",
            self.distortion
        );
        assert!(
            self.class_sep > 0.0 && self.class_sep <= 1.0,
            "class_sep must be in (0, 1], got {}",
            self.class_sep
        );
        let mut proto_rng =
            StdRng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1));
        let shared = ClassProto::sample(&mut proto_rng);
        let protos: Vec<ClassProto> = (0..self.classes)
            .map(|_| {
                let own = ClassProto::sample(&mut proto_rng);
                shared.lerp_toward(&own, self.class_sep)
            })
            .collect();
        let train = self.generate_split(&protos, 0, self.train_size);
        let val = self.generate_split(&protos, 1, self.val_size);
        let test = self.generate_split(&protos, 2, self.test_size);
        SynthCifar { train, val, test }
    }

    fn generate_split(&self, protos: &[ClassProto], split: u64, n: usize) -> Dataset {
        let s = self.image_size;
        let ch = self.channels;
        let mut data = vec![0.0f32; n * ch * s * s];
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            // balanced labels: round-robin with seeded offset
            let label = i % self.classes;
            labels.push(label);
            let mut rng = StdRng::seed_from_u64(
                self.seed ^ splitmix(split.wrapping_mul(1_000_003).wrapping_add(i as u64)),
            );
            let proto = &protos[label];
            let dx = rng.gen_range(-self.max_shift..=self.max_shift) as f32 / s as f32;
            let dy = rng.gen_range(-self.max_shift..=self.max_shift) as f32 / s as f32;
            let flip = rng.gen_bool(0.5);
            let contrast = rng.gen_range(0.8..1.2f32);
            let brightness = rng.gen_range(-0.1..0.1f32);
            // distractor blob: a non-class-informative bright spot
            let (bx, by) = (rng.gen_range(0.0..1.0f32), rng.gen_range(0.0..1.0f32));
            let bamp = rng.gen_range(-0.3..0.3f32);
            let jitter = SampleJitter::sample(&mut rng, self.distortion);
            let base = i * ch * s * s;
            for c in 0..ch {
                for y in 0..s {
                    for x in 0..s {
                        let mut u = x as f32 / s as f32;
                        if flip {
                            u = 1.0 - u;
                        }
                        let v = y as f32 / s as f32;
                        let mut val = proto.value(u + dx, v + dy, c, &jitter);
                        let d2 = (u - bx) * (u - bx) + (v - by) * (v - by);
                        val += bamp * (-d2 * 60.0).exp();
                        val = val * contrast + brightness + self.noise_std * gauss(&mut rng);
                        data[base + (c * s + y) * s + x] = val.clamp(-1.0, 1.0);
                    }
                }
            }
        }
        let images = Tensor::from_vec(data, &[n, ch, s, s]).expect("volume matches");
        Dataset::new(images, labels, self.classes).expect("labels in range by construction")
    }
}

/// One standard normal sample via Box–Muller.
fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// SplitMix64 finalizer — decorrelates per-sample seeds.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SynthCifar {
        SynthCifar::builder().seed(3).train_size(100).val_size(50).test_size(50).build()
    }

    #[test]
    fn shapes_and_ranges() {
        let d = small();
        assert_eq!(d.train().images().shape().dims(), &[100, 3, 32, 32]);
        assert!(d.train().images().max() <= 1.0);
        assert!(d.train().images().min() >= -1.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.train().images().data(), b.train().images().data());
        assert_eq!(a.test().labels(), b.test().labels());
        let c = SynthCifar::builder().seed(4).train_size(100).val_size(50).test_size(50).build();
        assert_ne!(a.train().images().data(), c.train().images().data());
    }

    #[test]
    fn splits_differ() {
        let d = small();
        assert_ne!(d.train().images().data()[..100], d.val().images().data()[..100]);
        assert_ne!(d.val().images().data()[..100], d.test().images().data()[..100]);
    }

    #[test]
    fn labels_balanced() {
        let d = small();
        let hist = d.train().class_histogram();
        assert_eq!(hist.len(), 10);
        assert!(hist.iter().all(|&c| c == 10));
    }

    #[test]
    fn classes_are_separable_by_nearest_mean() {
        // A nearest-class-mean classifier on raw pixels must beat chance by a
        // wide margin, otherwise no CNN could learn the task.
        let d = SynthCifar::builder()
            .seed(9)
            .train_size(400)
            .val_size(50)
            .test_size(200)
            .build();
        let (n, _, h, w) = d.train().images().shape().as_nchw();
        let dim = 3 * h * w;
        let mut means = vec![vec![0.0f32; dim]; 10];
        let mut counts = vec![0usize; 10];
        for i in 0..n {
            let l = d.train().labels()[i];
            counts[l] += 1;
            for (j, m) in means[l].iter_mut().enumerate() {
                *m += d.train().images().data()[i * dim + j];
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c as f32;
            }
        }
        let tn = d.test().len();
        let mut correct = 0usize;
        for i in 0..tn {
            let img = &d.test().images().data()[i * dim..(i + 1) * dim];
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for (k, m) in means.iter().enumerate() {
                let dist: f32 = img.iter().zip(m).map(|(&a, &b)| (a - b) * (a - b)).sum();
                if dist < best_d {
                    best_d = dist;
                    best = k;
                }
            }
            if best == d.test().labels()[i] {
                correct += 1;
            }
        }
        let acc = correct as f64 / tn as f64;
        assert!(acc > 0.4, "nearest-mean accuracy {acc} should be well above chance (0.1)");
        assert!(acc < 1.0, "task should not be trivial");
    }

    #[test]
    fn noise_controls_difficulty() {
        // higher noise → lower nearest-mean accuracy
        let acc = |noise: f32| {
            let d = SynthCifar::builder()
                .seed(5)
                .train_size(200)
                .val_size(50)
                .test_size(100)
                .noise_std(noise)
                .build();
            let dim = 3 * 32 * 32;
            let mut means = vec![vec![0.0f32; dim]; 10];
            let mut counts = vec![0usize; 10];
            for i in 0..d.train().len() {
                let l = d.train().labels()[i];
                counts[l] += 1;
                for (j, m) in means[l].iter_mut().enumerate() {
                    *m += d.train().images().data()[i * dim + j];
                }
            }
            for (m, &c) in means.iter_mut().zip(&counts) {
                for v in m.iter_mut() {
                    *v /= c as f32;
                }
            }
            let mut correct = 0;
            for i in 0..d.test().len() {
                let img = &d.test().images().data()[i * dim..(i + 1) * dim];
                let mut best = (0usize, f32::INFINITY);
                for (k, m) in means.iter().enumerate() {
                    let dist: f32 = img.iter().zip(m).map(|(&a, &b)| (a - b) * (a - b)).sum();
                    if dist < best.1 {
                        best = (k, dist);
                    }
                }
                if best.0 == d.test().labels()[i] {
                    correct += 1;
                }
            }
            correct as f64 / d.test().len() as f64
        };
        assert!(acc(0.1) > acc(0.8), "more noise must hurt accuracy");
    }

    #[test]
    fn custom_geometry() {
        let d = SynthCifar::builder()
            .seed(1)
            .classes(4)
            .image_size(16)
            .train_size(8)
            .val_size(4)
            .test_size(4)
            .build();
        assert_eq!(d.train().images().shape().dims(), &[8, 3, 16, 16]);
        assert_eq!(d.train().num_classes(), 4);
    }

    #[test]
    #[should_panic(expected = "split sizes")]
    fn rejects_zero_split() {
        SynthCifar::builder().train_size(0).build();
    }

    #[test]
    fn grayscale_channel_option() {
        let d = SynthCifar::builder()
            .seed(6)
            .channels(1)
            .train_size(8)
            .val_size(4)
            .test_size(4)
            .build();
        assert_eq!(d.train().images().shape().dims(), &[8, 1, 32, 32]);
        assert!(d.train().images().max() <= 1.0 && d.train().images().min() >= -1.0);
    }

    #[test]
    #[should_panic(expected = "channels")]
    fn rejects_zero_channels() {
        SynthCifar::builder().channels(0).build();
    }

    #[test]
    #[should_panic(expected = "class_sep")]
    fn rejects_zero_class_sep() {
        SynthCifar::builder().class_sep(0.0).build();
    }

    #[test]
    fn class_sep_controls_confusability() {
        // nearest-mean accuracy must increase with class separation
        let acc = |sep: f32| {
            let d = SynthCifar::builder()
                .seed(12)
                .train_size(200)
                .val_size(50)
                .test_size(100)
                .class_sep(sep)
                .noise_std(0.2)
                .build();
            nearest_mean_accuracy(&d)
        };
        let low = acc(0.15);
        let high = acc(1.0);
        assert!(high > low + 0.1, "sep 1.0 acc {high} should beat sep 0.15 acc {low}");
    }

    fn nearest_mean_accuracy(d: &SynthCifar) -> f64 {
        let dim = 3 * 32 * 32;
        let mut means = vec![vec![0.0f32; dim]; 10];
        let mut counts = vec![0usize; 10];
        for i in 0..d.train().len() {
            let l = d.train().labels()[i];
            counts[l] += 1;
            for (j, m) in means[l].iter_mut().enumerate() {
                *m += d.train().images().data()[i * dim + j];
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c as f32;
            }
        }
        let mut correct = 0;
        for i in 0..d.test().len() {
            let img = &d.test().images().data()[i * dim..(i + 1) * dim];
            let mut best = (0usize, f32::INFINITY);
            for (k, m) in means.iter().enumerate() {
                let dist: f32 = img.iter().zip(m).map(|(&a, &b)| (a - b) * (a - b)).sum();
                if dist < best.1 {
                    best = (k, dist);
                }
            }
            if best.0 == d.test().labels()[i] {
                correct += 1;
            }
        }
        correct as f64 / d.test().len() as f64
    }
}
