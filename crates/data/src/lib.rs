//! Dataset substrate for the FT-ClipAct reproduction.
//!
//! The paper evaluates on CIFAR-10. This environment has no dataset access,
//! so the crate provides two interchangeable sources (see DESIGN.md §3):
//!
//! * [`SynthCifar`] — a **deterministic synthetic generator** of CIFAR-shaped
//!   (32×32×3, 10-class) images used by all experiments. Classes are defined
//!   by sinusoidal gratings, Gaussian blobs and colour priors; samples are
//!   corrupted with translation/flip/contrast jitter and pixel noise so
//!   trained baselines land in the paper's 70–85 % accuracy band.
//! * [`load_cifar10`] — a loader for the **real CIFAR-10 binary format**
//!   (`data_batch_*.bin` / `test_batch.bin`), unit-tested against files
//!   synthesized in that exact format, so users with the dataset can swap it
//!   in without touching experiment code.
//!
//! Both produce [`Dataset`] values: NCHW image tensors in `[-1, 1]` plus
//! integer labels.
//!
//! # Example
//!
//! ```
//! use ftclip_data::{Dataset, SynthCifar};
//!
//! let data = SynthCifar::builder().seed(7).train_size(64).test_size(32).build();
//! assert_eq!(data.train().len(), 64);
//! assert_eq!(data.test().images().shape().dims(), &[32, 3, 32, 32]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cifar;
mod dataset;
mod synth;

pub use cifar::{load_cifar10, load_cifar10_batch, write_cifar10_batch, DataError};
pub use dataset::Dataset;
pub use synth::{SynthCifar, SynthCifarBuilder};
