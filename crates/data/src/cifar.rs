//! Loader for the real CIFAR-10 binary format.
//!
//! CIFAR-10's binary version stores each image as a 3073-byte record: one
//! label byte followed by 3072 pixel bytes (1024 red, 1024 green, 1024 blue,
//! each 32×32 row-major). Training data ships as `data_batch_1.bin` …
//! `data_batch_5.bin`, test data as `test_batch.bin`.
//!
//! Pixels are normalized to `[-1, 1]` (`2·(x/255) − 1`), matching the
//! synthetic generator so models and experiments are source-agnostic.

use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

use ftclip_tensor::Tensor;

use crate::Dataset;

/// CIFAR-10 geometry: 32×32 RGB.
const SIDE: usize = 32;
/// Bytes per record: label + 3 × 1024 pixels.
const RECORD: usize = 1 + 3 * SIDE * SIDE;
/// Classes in CIFAR-10.
const CLASSES: usize = 10;

/// Errors from the CIFAR-10 loader.
#[derive(Debug)]
pub enum DataError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file length is not a whole number of records, or a label byte is
    /// out of range.
    Format {
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Io(e) => write!(f, "i/o error: {e}"),
            DataError::Format { reason } => write!(f, "malformed cifar-10 file: {reason}"),
        }
    }
}

impl Error for DataError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            DataError::Format { .. } => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

/// Loads one CIFAR-10 binary batch file.
///
/// # Errors
///
/// Returns [`DataError::Io`] if the file cannot be read and
/// [`DataError::Format`] if its size is not a multiple of the record size or
/// a label is `≥ 10`.
pub fn load_cifar10_batch<P: AsRef<Path>>(path: P) -> Result<Dataset, DataError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.is_empty() || bytes.len() % RECORD != 0 {
        return Err(DataError::Format {
            reason: format!("file length {} is not a positive multiple of {RECORD}", bytes.len()),
        });
    }
    let n = bytes.len() / RECORD;
    let mut labels = Vec::with_capacity(n);
    let mut data = Vec::with_capacity(n * 3 * SIDE * SIDE);
    for rec in bytes.chunks_exact(RECORD) {
        let label = rec[0] as usize;
        if label >= CLASSES {
            return Err(DataError::Format { reason: format!("label byte {label} out of range") });
        }
        labels.push(label);
        for &px in &rec[1..] {
            data.push(2.0 * (px as f32 / 255.0) - 1.0);
        }
    }
    let images = Tensor::from_vec(data, &[n, 3, SIDE, SIDE]).expect("volume matches record layout");
    Dataset::new(images, labels, CLASSES).map_err(|reason| DataError::Format { reason })
}

/// Loads the full CIFAR-10 dataset from a directory containing
/// `data_batch_1.bin` … `data_batch_5.bin` and `test_batch.bin`.
///
/// Returns `(train, test)`.
///
/// # Errors
///
/// Returns [`DataError::Io`] when any batch file is missing or unreadable
/// and [`DataError::Format`] when one is malformed.
pub fn load_cifar10<P: AsRef<Path>>(dir: P) -> Result<(Dataset, Dataset), DataError> {
    let dir = dir.as_ref();
    let mut train: Option<Dataset> = None;
    for i in 1..=5 {
        let batch = load_cifar10_batch(dir.join(format!("data_batch_{i}.bin")))?;
        train = Some(match train {
            None => batch,
            Some(acc) => concat(acc, batch),
        });
    }
    let test = load_cifar10_batch(dir.join("test_batch.bin"))?;
    Ok((train.expect("five batches loaded"), test))
}

/// Writes a dataset out in the CIFAR-10 binary batch format (used by tests
/// and by users who want to export synthetic data for other tools).
///
/// Pixel values are mapped back from `[-1, 1]` to `0..=255`.
///
/// # Errors
///
/// Returns [`DataError::Io`] on write failure and [`DataError::Format`] if
/// the dataset is not 32×32×3.
pub fn write_cifar10_batch<P: AsRef<Path>>(dataset: &Dataset, path: P) -> Result<(), DataError> {
    let (n, c, h, w) = dataset.images().shape().as_nchw();
    if (c, h, w) != (3, SIDE, SIDE) {
        return Err(DataError::Format {
            reason: format!("dataset is {c}×{h}×{w}, cifar-10 format requires 3×32×32"),
        });
    }
    if let Some(parent) = path.as_ref().parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut out = Vec::with_capacity(n * RECORD);
    let stride = 3 * SIDE * SIDE;
    for i in 0..n {
        out.push(dataset.labels()[i] as u8);
        for &v in &dataset.images().data()[i * stride..(i + 1) * stride] {
            let byte = (((v + 1.0) / 2.0) * 255.0).round().clamp(0.0, 255.0) as u8;
            out.push(byte);
        }
    }
    File::create(path)?.write_all(&out)?;
    Ok(())
}

fn concat(a: Dataset, b: Dataset) -> Dataset {
    let mut dims = a.images().shape().dims().to_vec();
    dims[0] += b.images().shape()[0];
    let mut data = a.images().data().to_vec();
    data.extend_from_slice(b.images().data());
    let mut labels = a.labels().to_vec();
    labels.extend_from_slice(b.labels());
    let images = Tensor::from_vec(data, &dims).expect("concat volume matches");
    Dataset::new(images, labels, a.num_classes()).expect("labels already validated")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SynthCifar;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ftclip-cifar-{tag}"));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_through_binary_format() {
        let d = SynthCifar::builder().seed(2).train_size(20).val_size(10).test_size(10).build();
        let dir = temp_dir("roundtrip");
        let path = dir.join("batch.bin");
        write_cifar10_batch(d.train(), &path).unwrap();
        let loaded = load_cifar10_batch(&path).unwrap();
        assert_eq!(loaded.len(), 20);
        assert_eq!(loaded.labels(), d.train().labels());
        // 8-bit quantization error bound: 2/255 ≈ 0.008
        assert!(loaded.images().approx_eq(d.train().images(), 0.009));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn full_directory_layout() {
        let d = SynthCifar::builder().seed(8).train_size(10).val_size(5).test_size(5).build();
        let dir = temp_dir("fulldir");
        for i in 1..=5 {
            write_cifar10_batch(d.train(), dir.join(format!("data_batch_{i}.bin"))).unwrap();
        }
        write_cifar10_batch(d.test(), dir.join("test_batch.bin")).unwrap();
        let (train, test) = load_cifar10(&dir).unwrap();
        assert_eq!(train.len(), 50); // 5 × 10
        assert_eq!(test.len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_ragged_file() {
        let dir = temp_dir("ragged");
        let path = dir.join("bad.bin");
        std::fs::write(&path, vec![0u8; RECORD + 7]).unwrap();
        assert!(matches!(load_cifar10_batch(&path), Err(DataError::Format { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_bad_label() {
        let dir = temp_dir("badlabel");
        let path = dir.join("bad.bin");
        let mut rec = vec![0u8; RECORD];
        rec[0] = 77;
        std::fs::write(&path, rec).unwrap();
        assert!(matches!(load_cifar10_batch(&path), Err(DataError::Format { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(load_cifar10_batch("/nonexistent/x.bin"), Err(DataError::Io(_))));
    }

    #[test]
    fn pixel_normalization_range() {
        let dir = temp_dir("range");
        let path = dir.join("b.bin");
        let mut rec = vec![0u8; RECORD];
        rec[1] = 0;
        rec[2] = 255;
        rec[3] = 128;
        std::fs::write(&path, rec).unwrap();
        let ds = load_cifar10_batch(&path).unwrap();
        assert_eq!(ds.images().data()[0], -1.0);
        assert_eq!(ds.images().data()[1], 1.0);
        assert!((ds.images().data()[2] - 0.00392).abs() < 1e-3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
