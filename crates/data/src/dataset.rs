//! Labeled image datasets.

use ftclip_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A labeled image-classification dataset: an NCHW image tensor plus one
/// integer label per image.
///
/// # Example
///
/// ```
/// use ftclip_data::Dataset;
/// use ftclip_tensor::Tensor;
///
/// let images = Tensor::zeros(&[4, 3, 8, 8]);
/// let ds = Dataset::new(images, vec![0, 1, 2, 3], 4).unwrap();
/// assert_eq!(ds.len(), 4);
/// let half = ds.take(2);
/// assert_eq!(half.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message when `labels.len()` differs from the
    /// leading image dimension, the image tensor is not rank 4, or any label
    /// is `≥ num_classes`.
    pub fn new(images: Tensor, labels: Vec<usize>, num_classes: usize) -> Result<Self, String> {
        if images.shape().rank() != 4 {
            return Err(format!("images must be NCHW (rank 4), got {}", images.shape()));
        }
        if images.shape()[0] != labels.len() {
            return Err(format!(
                "label count {} does not match image count {}",
                labels.len(),
                images.shape()[0]
            ));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(format!("label {bad} out of range for {num_classes} classes"));
        }
        Ok(Dataset { images, labels, num_classes })
    }

    /// The image tensor, shape `[n, c, h, w]`.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// The labels, one per image.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of images.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the dataset holds no images (never constructible via
    /// [`Dataset::new`]; exists for API completeness).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The first `n` images as a new dataset.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the dataset size.
    pub fn take(&self, n: usize) -> Dataset {
        assert!(n > 0 && n <= self.len(), "take({n}) out of range for {} images", self.len());
        Dataset {
            images: self.images.slice_batch(0..n),
            labels: self.labels[..n].to_vec(),
            num_classes: self.num_classes,
        }
    }

    /// A random subset of `n` images drawn without replacement.
    ///
    /// This is how the methodology draws "a small subset of the validation
    /// set" (paper §IV) for profiling and threshold tuning.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the dataset size.
    pub fn subset(&self, n: usize, seed: u64) -> Dataset {
        assert!(n > 0 && n <= self.len(), "subset({n}) out of range for {} images", self.len());
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut StdRng::seed_from_u64(seed));
        idx.truncate(n);
        self.gather(&idx)
    }

    /// Splits into `(first, second)` with `first` holding `n` images.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < n < len()`.
    pub fn split_at(&self, n: usize) -> (Dataset, Dataset) {
        assert!(n > 0 && n < self.len(), "split_at({n}) out of range for {} images", self.len());
        let first = Dataset {
            images: self.images.slice_batch(0..n),
            labels: self.labels[..n].to_vec(),
            num_classes: self.num_classes,
        };
        let second = Dataset {
            images: self.images.slice_batch(n..self.len()),
            labels: self.labels[n..].to_vec(),
            num_classes: self.num_classes,
        };
        (first, second)
    }

    /// Gathers the given indices into a new dataset.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is empty or contains an out-of-range index.
    pub fn gather(&self, idx: &[usize]) -> Dataset {
        assert!(!idx.is_empty(), "cannot gather an empty index list");
        let stride: usize = self.images.shape().dims()[1..].iter().product();
        let mut dims = self.images.shape().dims().to_vec();
        dims[0] = idx.len();
        let mut data = Vec::with_capacity(idx.len() * stride);
        let mut labels = Vec::with_capacity(idx.len());
        for &i in idx {
            assert!(i < self.len(), "index {i} out of range");
            data.extend_from_slice(&self.images.data()[i * stride..(i + 1) * stride]);
            labels.push(self.labels[i]);
        }
        Dataset {
            images: Tensor::from_vec(data, &dims).expect("gather volume matches"),
            labels,
            num_classes: self.num_classes,
        }
    }

    /// Per-class image counts (useful for checking balance in tests).
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.num_classes];
        for &l in &self.labels {
            hist[l] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let n = 10;
        let images = Tensor::from_vec((0..n * 12).map(|x| x as f32).collect(), &[n, 3, 2, 2]).unwrap();
        let labels = (0..n).map(|i| i % 5).collect();
        Dataset::new(images, labels, 5).unwrap()
    }

    #[test]
    fn new_validates() {
        let images = Tensor::zeros(&[2, 1, 2, 2]);
        assert!(Dataset::new(images.clone(), vec![0], 2).is_err()); // count
        assert!(Dataset::new(images.clone(), vec![0, 5], 2).is_err()); // range
        assert!(Dataset::new(Tensor::zeros(&[2, 4]), vec![0, 1], 2).is_err()); // rank
        assert!(Dataset::new(images, vec![0, 1], 2).is_ok());
    }

    #[test]
    fn take_prefix() {
        let ds = sample();
        let t = ds.take(3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.labels(), &[0, 1, 2]);
        assert_eq!(t.images().data()[0], 0.0);
    }

    #[test]
    fn subset_is_deterministic_and_unique() {
        let ds = sample();
        let a = ds.subset(5, 42);
        let b = ds.subset(5, 42);
        assert_eq!(a.labels(), b.labels());
        let c = ds.subset(5, 43);
        // different seeds usually give different subsets on 10 choose 5
        assert!(a.labels() != c.labels() || a.images().data() != c.images().data());
    }

    #[test]
    fn split_at_partitions() {
        let ds = sample();
        let (a, b) = ds.split_at(4);
        assert_eq!(a.len() + b.len(), ds.len());
        assert_eq!(b.labels()[0], ds.labels()[4]);
    }

    #[test]
    fn gather_reorders() {
        let ds = sample();
        let g = ds.gather(&[9, 0]);
        assert_eq!(g.labels(), &[4, 0]);
        let stride = 12;
        assert_eq!(g.images().data()[0], (9 * stride) as f32);
    }

    #[test]
    fn class_histogram_counts() {
        let ds = sample();
        assert_eq!(ds.class_histogram(), vec![2, 2, 2, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn take_rejects_oversize() {
        sample().take(11);
    }
}
