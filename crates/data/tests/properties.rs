//! Property-based tests for the dataset substrate.

use ftclip_data::{Dataset, SynthCifar};
use ftclip_tensor::Tensor;
use proptest::prelude::*;

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (2usize..20, 2usize..6).prop_map(|(n, classes)| {
        let images = Tensor::from_vec(
            (0..n * 3 * 4 * 4).map(|i| (i % 255) as f32 / 127.5 - 1.0).collect(),
            &[n, 3, 4, 4],
        )
        .unwrap();
        let labels = (0..n).map(|i| i % classes).collect();
        Dataset::new(images, labels, classes).unwrap()
    })
}

proptest! {
    #[test]
    fn subset_has_requested_size_and_valid_labels(ds in dataset_strategy(), seed in 0u64..100) {
        let n = 1 + seed as usize % ds.len();
        let sub = ds.subset(n, seed);
        prop_assert_eq!(sub.len(), n);
        prop_assert!(sub.labels().iter().all(|&l| l < ds.num_classes()));
    }

    #[test]
    fn subset_draws_without_replacement(ds in dataset_strategy(), seed in 0u64..100) {
        // full-size subset is a permutation: class histogram is preserved
        let sub = ds.subset(ds.len(), seed);
        prop_assert_eq!(sub.class_histogram(), ds.class_histogram());
    }

    #[test]
    fn split_at_partitions_exactly(ds in dataset_strategy(), frac in 0.1f64..0.9) {
        let n = ((ds.len() as f64 * frac) as usize).clamp(1, ds.len() - 1);
        let (a, b) = ds.split_at(n);
        prop_assert_eq!(a.len() + b.len(), ds.len());
        let mut merged = a.labels().to_vec();
        merged.extend_from_slice(b.labels());
        prop_assert_eq!(merged, ds.labels().to_vec());
    }

    #[test]
    fn gather_preserves_label_image_pairing(ds in dataset_strategy(), seed in 0u64..50) {
        let idx: Vec<usize> = (0..ds.len()).rev().filter(|i| (i + seed as usize).is_multiple_of(2)).collect();
        prop_assume!(!idx.is_empty());
        let g = ds.gather(&idx);
        let stride: usize = ds.images().shape().dims()[1..].iter().product();
        for (k, &i) in idx.iter().enumerate() {
            prop_assert_eq!(g.labels()[k], ds.labels()[i]);
            prop_assert_eq!(
                &g.images().data()[k * stride..k * stride + 4],
                &ds.images().data()[i * stride..i * stride + 4]
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn synth_cifar_pixels_always_in_range(seed in 0u64..1000) {
        let d = SynthCifar::builder()
            .seed(seed)
            .train_size(8)
            .val_size(4)
            .test_size(4)
            .image_size(8)
            .build();
        for split in [d.train(), d.val(), d.test()] {
            prop_assert!(split.images().max() <= 1.0);
            prop_assert!(split.images().min() >= -1.0);
            prop_assert!(split.labels().iter().all(|&l| l < 10));
        }
    }
}
