//! End-to-end tests of the `ftclipd` service contract, driven over real
//! sockets with the blocking [`HttpClient`]: submit → stream → cache-hit
//! dedup, cancellation while running, concurrent-duplicate coalescing, and
//! bit-identical crash-resume via [`Server::abandon`].

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use ftclip_bench::{ExperimentSpec, Procedure, RateGrid, RunSettings, Runner};
use ftclip_serve::{HttpClient, ServeConfig, Server};
use serde::Value;

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ftclipd-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn server(dir: &Path, workers: usize, threads: usize) -> (Server, HttpClient) {
    let mut config = ServeConfig::new(dir.to_path_buf());
    config.workers = workers;
    config.threads = threads;
    let server = Server::start(config).expect("server starts");
    let client = HttpClient::new(server.addr()).with_timeout(Duration::from_secs(120));
    (server, client)
}

/// A spec whose campaign finishes in well under a second: untrained
/// sliver-width workload, 2 rates × 2 repetitions over 32 images.
fn tiny_spec(name: &str) -> ExperimentSpec {
    let mut spec = ExperimentSpec::builder(Procedure::CampaignSummary, name)
        .rates(RateGrid::Absolute(vec![1e-4, 1e-3]))
        .repetitions(2)
        .eval_size(32)
        .build()
        .unwrap();
    spec.workload.epochs = 0;
    spec.workload.width_mult = 0.05;
    spec.data.train_size = 16;
    spec.data.val_size = 16;
    spec.data.test_size = 64;
    spec
}

/// A spec with enough cells (2 rates × `reps`) that tests can reliably
/// interrupt it mid-campaign. Cells stay as cheap as [`tiny_spec`]'s —
/// duration comes from the cell count, keeping debug-build runtimes sane.
fn slow_spec(name: &str, reps: usize) -> ExperimentSpec {
    let mut spec = tiny_spec(name);
    spec.repetitions = reps;
    spec
}

fn submit(client: &HttpClient, spec: &ExperimentSpec) -> (u16, Value) {
    let reply = client.post_json("/v1/specs", &spec.to_json()).expect("submit");
    let body = reply.json().expect("submission body is JSON");
    (reply.status, body)
}

fn job_detail(client: &HttpClient, id: &str) -> Value {
    client
        .get(&format!("/v1/jobs/{id}"))
        .expect("job detail")
        .json()
        .expect("job JSON")
}

fn job_status(detail: &Value) -> String {
    detail.get("status").and_then(Value::as_str).unwrap_or("?").to_string()
}

/// Polls until `pred` holds on the job detail; panics after `timeout`.
fn wait_for(client: &HttpClient, id: &str, timeout: Duration, pred: impl Fn(&Value) -> bool) -> Value {
    let deadline = Instant::now() + timeout;
    loop {
        let detail = job_detail(client, id);
        if pred(&detail) {
            return detail;
        }
        assert!(Instant::now() < deadline, "timed out waiting on {id}: {detail:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn metrics(client: &HttpClient) -> Value {
    client.get("/v1/metrics").expect("metrics").json().expect("metrics JSON")
}

fn metric(client: &HttpClient, name: &str) -> u64 {
    metrics(client)
        .get(name)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("metric {name}"))
}

#[test]
fn submit_stream_and_cache_hit_round_trip() {
    let dir = state_dir("roundtrip");
    let (server, client) = server(&dir, 2, 2);
    let spec = tiny_spec("rt");
    let fingerprint = spec.fingerprint().key().to_hex();

    let (status, body) = submit(&client, &spec);
    assert_eq!(status, 202, "{body:?}");
    assert_eq!(body.get("fingerprint").and_then(Value::as_str), Some(fingerprint.as_str()));
    let id = body.get("id").and_then(Value::as_str).unwrap().to_string();

    // the event stream blocks until the job finishes and ends 'completed'
    let events = client.get(&format!("/v1/jobs/{id}/events")).expect("events");
    assert_eq!(events.status, 200);
    let lines = events.ndjson();
    let kinds: Vec<&str> = lines.iter().filter_map(|v| v.get("event").and_then(Value::as_str)).collect();
    assert_eq!(kinds.first(), Some(&"queued"));
    assert_eq!(kinds.last(), Some(&"completed"));
    assert_eq!(kinds.iter().filter(|k| **k == "cell").count(), 4, "{kinds:?}");

    // identical re-submission: HTTP 200, marked cached, fingerprint ETag,
    // and no additional execution
    let executed = metric(&client, "jobs_executed");
    let again = client.post_json("/v1/specs", &spec.to_json()).expect("resubmit");
    assert_eq!(again.status, 200);
    assert_eq!(again.json().unwrap().get("cached").and_then(Value::as_bool), Some(true));
    assert_eq!(again.header("etag"), Some(format!("\"{fingerprint}\"").as_str()));
    assert_eq!(metric(&client, "jobs_executed"), executed, "cache hits must not recompute");

    // conditional revalidation and result retrieval
    let conditional = client
        .request(
            "POST",
            "/v1/specs",
            &[("Content-Type", "application/json"), ("If-None-Match", &format!("\"{fingerprint}\""))],
            spec.to_json().as_bytes(),
        )
        .unwrap();
    assert_eq!(conditional.status, 304);
    let result = client.get(&format!("/v1/results/{fingerprint}")).unwrap();
    assert_eq!(result.status, 200);
    let tables = result.json().unwrap();
    let table = tables
        .get("tables")
        .and_then(Value::as_array)
        .and_then(|t| t.first())
        .and_then(Value::as_str)
        .expect("at least one table")
        .to_string();
    let csv = client
        .get(&format!("/v1/results/{fingerprint}?table={table}&format=csv"))
        .unwrap();
    assert_eq!(csv.status, 200);
    assert!(csv.text().starts_with("fault_rate") || !csv.body.is_empty());

    server.shutdown();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn cancel_while_running_frees_the_worker_for_the_next_job() {
    let dir = state_dir("cancel");
    let (server, client) = server(&dir, 1, 2); // one worker: job B can only
                                               // run if cancelling A freed it
    let (status, body) = submit(&client, &slow_spec("long", 300));
    assert_eq!(status, 202);
    let id = body.get("id").and_then(Value::as_str).unwrap().to_string();

    // wait until the campaign is demonstrably mid-flight, then cancel
    wait_for(&client, &id, Duration::from_secs(60), |d| {
        d.get("cells_done").and_then(Value::as_u64).unwrap_or(0) >= 3
    });
    let cancel = client.delete(&format!("/v1/jobs/{id}")).expect("cancel");
    assert_eq!(cancel.status, 202);
    let detail = wait_for(&client, &id, Duration::from_secs(60), |d| job_status(d) == "cancelled");
    let cells_at_cancel = detail.get("cells_done").and_then(Value::as_u64).unwrap();
    assert!(cells_at_cancel >= 3);

    // the worker and its thread budget are free again: a fresh job on the
    // single-worker server completes
    let (status, body) = submit(&client, &tiny_spec("after-cancel"));
    assert_eq!(status, 202);
    let id2 = body.get("id").and_then(Value::as_str).unwrap().to_string();
    wait_for(&client, &id2, Duration::from_secs(120), |d| job_status(d) == "completed");

    // cancelling a terminal job is a 409, and re-submitting the cancelled
    // spec queues a fresh attempt rather than a cache hit
    assert_eq!(client.delete(&format!("/v1/jobs/{id}")).unwrap().status, 409);
    let (status, body) = submit(&client, &slow_spec("long", 300));
    assert_eq!(status, 202);
    assert_eq!(metric(&client, "jobs_cancelled"), 1);

    // cancel the re-queued attempt too, so graceful shutdown below does
    // not sit through the whole 600-cell campaign
    let id3 = body.get("id").and_then(Value::as_str).unwrap().to_string();
    assert_eq!(client.delete(&format!("/v1/jobs/{id3}")).unwrap().status, 202);
    wait_for(&client, &id3, Duration::from_secs(60), |d| job_status(d) == "cancelled");

    server.shutdown();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn concurrent_duplicate_submissions_coalesce_to_one_execution() {
    let dir = state_dir("coalesce");
    let (server, client) = server(&dir, 2, 2);
    let spec = slow_spec("dup", 32);
    let spec_json = spec.to_json();

    let statuses: Vec<(u16, Option<String>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let client = client.clone();
                let spec_json = &spec_json;
                scope.spawn(move || {
                    let reply = client.post_json("/v1/specs", spec_json).expect("concurrent submit");
                    let id = reply
                        .json()
                        .and_then(|v| v.get("id").and_then(Value::as_str).map(str::to_string));
                    (reply.status, id)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("submitter panicked")).collect()
    });

    // every submission was accepted, all onto the same single job
    let ids: Vec<&String> = statuses.iter().filter_map(|(_, id)| id.as_ref()).collect();
    assert!(!ids.is_empty());
    assert!(ids.iter().all(|i| *i == ids[0]), "{statuses:?}");
    assert!(statuses.iter().all(|(s, _)| *s == 200 || *s == 202), "{statuses:?}");

    wait_for(&client, ids[0], Duration::from_secs(300), |d| job_status(d) == "completed");
    assert_eq!(metric(&client, "jobs_executed"), 1, "duplicates must share one execution");
    assert_eq!(metric(&client, "jobs_submitted"), 1);
    assert_eq!(
        metric(&client, "coalesced") + metric(&client, "cache_hits"),
        7,
        "the other seven submissions coalesced or hit the stored result"
    );

    server.shutdown();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn abandoned_server_resumes_bit_identically_from_the_store() {
    let dir = state_dir("resume");
    let spec = slow_spec("crashy", 40);

    // reference: the same spec run locally through the Runner (the
    // bit-identical guarantee spans CLI and service executions)
    let reference_dir = state_dir("resume-ref");
    let settings = RunSettings {
        out_dir: reference_dir.join("out"),
        cache_root: Some(reference_dir.join("cache")),
        assets_dir: reference_dir.join("assets"),
        ..RunSettings::default()
    };
    let reference = Runner::new(settings).run(&spec).expect("reference run");
    assert!(reference.passed());

    // life 1: start the campaign, then abandon mid-flight (crash sim — no
    // completion state is persisted)
    let (server1, client1) = server(&dir, 1, 2);
    let (status, body) = submit(&client1, &spec);
    assert_eq!(status, 202);
    let id = body.get("id").and_then(Value::as_str).unwrap().to_string();
    let fingerprint = body.get("fingerprint").and_then(Value::as_str).unwrap().to_string();
    wait_for(&client1, &id, Duration::from_secs(60), |d| {
        d.get("cells_done").and_then(Value::as_u64).unwrap_or(0) >= 5
    });
    server1.abandon();
    let job_dir = dir.join("jobs").join(&fingerprint);
    assert!(job_dir.join("spec.json").is_file(), "submission must be persisted");
    assert!(!job_dir.join("done.json").is_file(), "abandon must not fake completion");

    // life 2: boot over the same state; the job re-queues and its campaign
    // replays the already-paid cells from the content-addressed store
    let (server2, client2) = server(&dir, 1, 2);
    let resumed = server2.scheduler().jobs();
    assert_eq!(resumed.len(), 1, "the unfinished job re-queues on boot");
    let resumed_id = resumed[0].id_str();
    let events = client2.get(&format!("/v1/jobs/{resumed_id}/events")).expect("resumed events");
    let lines = events.ndjson();
    assert_eq!(lines.last().and_then(|v| v.get("event")).and_then(Value::as_str), Some("completed"));
    let cached_cells = lines
        .iter()
        .filter(|v| v.get("event").and_then(Value::as_str) == Some("cell"))
        .filter(|v| v.get("cached").and_then(Value::as_bool) == Some(true))
        .count();
    assert!(cached_cells >= 5, "resume must replay the pre-crash cells, saw {cached_cells}");

    // the resumed result is byte-identical to the uninterrupted reference
    for table in &reference.tables {
        let stem = table.file_stem().unwrap().to_string_lossy();
        let served = client2
            .get(&format!("/v1/results/{fingerprint}?table={stem}&format=csv"))
            .expect("served table");
        assert_eq!(served.status, 200, "table {stem} missing from the resumed result");
        let reference_bytes = std::fs::read(table).unwrap();
        assert_eq!(served.body, reference_bytes, "table {stem} must be bit-identical");
    }

    server2.shutdown();
    std::fs::remove_dir_all(dir).ok();
    std::fs::remove_dir_all(reference_dir).ok();
}

#[test]
fn admin_endpoints_require_bearer_token_when_configured() {
    let dir = state_dir("admin-auth");
    let mut config = ServeConfig::new(dir.clone());
    config.workers = 1;
    config.threads = 1;
    config.admin_token = Some("sesame".to_string());
    let server = Server::start(config).expect("server starts");
    let client = HttpClient::new(server.addr()).with_timeout(Duration::from_secs(30));

    // no credentials → 401 with a challenge, and the server keeps running
    let denied = client.request("POST", "/v1/admin/shutdown", &[], b"").expect("bare request");
    assert_eq!(denied.status, 401, "{}", denied.text());
    assert_eq!(denied.header("www-authenticate"), Some("Bearer"));
    let code = denied.json().and_then(|v| {
        v.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Value::as_str)
            .map(String::from)
    });
    assert_eq!(code.as_deref(), Some("unauthorized"));

    // a wrong token is rejected the same way
    let wrong = client
        .request("POST", "/v1/admin/shutdown", &[("Authorization", "Bearer open")], b"")
        .expect("wrong-token request");
    assert_eq!(wrong.status, 401);

    // non-admin endpoints stay open without credentials
    assert_eq!(client.get("/healthz").expect("healthz").status, 200);
    assert_eq!(client.get("/v1/metrics").expect("metrics").status, 200);

    // the exact token is accepted and the shutdown goes through
    let ok = client
        .request("POST", "/v1/admin/shutdown", &[("Authorization", "Bearer sesame")], b"")
        .expect("authorized request");
    assert_eq!(ok.status, 202, "{}", ok.text());
    server.join();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn admin_endpoints_stay_open_without_a_configured_token() {
    let dir = state_dir("admin-open");
    let mut config = ServeConfig::new(dir.clone());
    config.workers = 1;
    config.threads = 1;
    config.admin_token = None;
    let server = Server::start(config).expect("server starts");
    let client = HttpClient::new(server.addr()).with_timeout(Duration::from_secs(30));
    let ok = client.request("POST", "/v1/admin/shutdown", &[], b"").expect("request");
    assert_eq!(ok.status, 202, "{}", ok.text());
    server.join();
    std::fs::remove_dir_all(dir).ok();
}
