//! Chaos end-to-end tests: failpoint schedules × kill/resume against a real
//! `ftclipd` over sockets.
//!
//! The contract under test is the ISSUE's acceptance bar: result tables
//! stay **byte-identical** to an undisturbed run no matter which faults
//! fire, a panicking cell never wedges a worker slot, and no corrupt cell
//! is ever served.
//!
//! Failpoint schedules are process-global, so these tests live in their own
//! integration binary and serialize on [`LOCK`]; `cargo test` gives every
//! other test file its own process, unarmed.

use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use ftclip_bench::{ExperimentSpec, Procedure, RateGrid, RunSettings, Runner};
use ftclip_serve::{HttpClient, RetryPolicy, ServeConfig, Server};
use ftclip_tensor::failpoint;
use serde::Value;

static LOCK: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ftclipd-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn server(dir: &Path, workers: usize) -> (Server, HttpClient) {
    let mut config = ServeConfig::new(dir.to_path_buf());
    config.workers = workers;
    config.threads = 2;
    // fast, still-jittered backoff so retry-heavy tests stay quick
    let server = Server::start(config).expect("server starts");
    server.scheduler().set_retry_policy(RetryPolicy {
        max_retries: 2,
        base_delay: Duration::from_millis(20),
        max_delay: Duration::from_millis(200),
    });
    let client = HttpClient::new(server.addr()).with_timeout(Duration::from_secs(120));
    (server, client)
}

fn tiny_spec(name: &str) -> ExperimentSpec {
    let mut spec = ExperimentSpec::builder(Procedure::CampaignSummary, name)
        .rates(RateGrid::Absolute(vec![1e-4, 1e-3]))
        .repetitions(2)
        .eval_size(32)
        .build()
        .unwrap();
    spec.workload.epochs = 0;
    spec.workload.width_mult = 0.05;
    spec.data.train_size = 16;
    spec.data.val_size = 16;
    spec.data.test_size = 64;
    spec
}

fn slow_spec(name: &str, reps: usize) -> ExperimentSpec {
    let mut spec = tiny_spec(name);
    spec.repetitions = reps;
    spec
}

/// The same spec executed by the local [`Runner`] with no faults armed —
/// the byte-identity reference for every chaos run.
fn reference_tables(tag: &str, spec: &ExperimentSpec) -> Vec<(String, Vec<u8>)> {
    failpoint::clear();
    let dir = state_dir(tag);
    let settings = RunSettings {
        out_dir: dir.join("out"),
        cache_root: Some(dir.join("cache")),
        assets_dir: dir.join("assets"),
        ..RunSettings::default()
    };
    let outcome = Runner::new(settings).run(spec).expect("reference run");
    assert!(outcome.passed());
    let tables = outcome
        .tables
        .iter()
        .map(|p| {
            let stem = p.file_stem().unwrap().to_string_lossy().into_owned();
            (stem, std::fs::read(p).expect("reference table"))
        })
        .collect();
    std::fs::remove_dir_all(dir).ok();
    tables
}

fn submit(client: &HttpClient, spec: &ExperimentSpec) -> Value {
    let reply = client.post_json("/v1/specs", &spec.to_json()).expect("submit");
    assert_eq!(reply.status, 202, "{}", reply.text());
    reply.json().expect("submission body is JSON")
}

fn wait_for(client: &HttpClient, id: &str, timeout: Duration, pred: impl Fn(&Value) -> bool) -> Value {
    let deadline = Instant::now() + timeout;
    loop {
        let detail = client
            .get(&format!("/v1/jobs/{id}"))
            .expect("job detail")
            .json()
            .expect("job JSON");
        if pred(&detail) {
            return detail;
        }
        assert!(Instant::now() < deadline, "timed out waiting on {id}: {detail:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn status_of(detail: &Value) -> &str {
    detail.get("status").and_then(Value::as_str).unwrap_or("?")
}

fn metric(client: &HttpClient, name: &str) -> u64 {
    client
        .get("/v1/metrics")
        .expect("metrics")
        .json()
        .and_then(|v| v.get(name).and_then(Value::as_u64))
        .unwrap_or_else(|| panic!("metric {name}"))
}

fn assert_tables_match(client: &HttpClient, fingerprint: &str, reference: &[(String, Vec<u8>)]) {
    for (stem, bytes) in reference {
        let served = client
            .get(&format!("/v1/results/{fingerprint}?table={stem}&format=csv"))
            .expect("served table");
        assert_eq!(served.status, 200, "table {stem} missing");
        assert_eq!(&served.body, bytes, "table {stem} must be byte-identical to the undisturbed run");
    }
}

/// Injected cell panics are supervised: the job retries with backoff,
/// completes, and its tables are byte-identical to the undisturbed run.
#[test]
fn supervised_retries_recover_from_cell_panics_bit_identically() {
    let _g = guard();
    let spec = tiny_spec("panic-retry");
    let reference = reference_tables("panic-ref", &spec);

    let dir = state_dir("panic-retry");
    let (server, client) = server(&dir, 1);
    // the first two cell events panic (one per attempt); attempt 3 runs dry
    failpoint::configure("serve.cell=panic*2").unwrap();
    let body = submit(&client, &spec);
    let id = body.get("id").and_then(Value::as_str).unwrap().to_string();
    let fingerprint = body.get("fingerprint").and_then(Value::as_str).unwrap().to_string();
    let detail = wait_for(&client, &id, Duration::from_secs(120), |d| {
        matches!(status_of(d), "completed" | "failed" | "cancelled")
    });
    failpoint::clear();
    assert_eq!(status_of(&detail), "completed", "{detail:?}");
    assert_eq!(metric(&client, "jobs_panicked"), 2);
    assert_eq!(metric(&client, "jobs_retried"), 2);
    let events = client.get(&format!("/v1/jobs/{id}/events")).expect("events").ndjson();
    let retries: Vec<&Value> = events
        .iter()
        .filter(|v| v.get("event").and_then(Value::as_str) == Some("retrying"))
        .collect();
    assert_eq!(retries.len(), 2, "both panics surface in NDJSON");
    for retry in retries {
        let error = retry.get("error").and_then(Value::as_str).unwrap_or("");
        assert!(error.contains("injected panic"), "{retry:?}");
        assert!(retry.get("delay_ms").is_some());
    }
    assert_tables_match(&client, &fingerprint, &reference);
    server.shutdown();
    std::fs::remove_dir_all(dir).ok();
}

/// A job that panics past its retry budget fails with the panic in its
/// event log — and the worker slot survives to run the next job.
#[test]
fn exhausted_retries_fail_the_job_without_wedging_the_worker() {
    let _g = guard();
    let dir = state_dir("wedge");
    let (server, client) = server(&dir, 1); // ONE worker: a wedged slot would
                                            // hang the follow-up job forever
    failpoint::configure("serve.cell=panic").unwrap();
    let body = submit(&client, &tiny_spec("doomed"));
    let id = body.get("id").and_then(Value::as_str).unwrap().to_string();
    let detail =
        wait_for(&client, &id, Duration::from_secs(120), |d| matches!(status_of(d), "completed" | "failed"));
    failpoint::clear();
    assert_eq!(status_of(&detail), "failed", "{detail:?}");
    let events = client.get(&format!("/v1/jobs/{id}/events")).expect("events").text();
    assert!(events.contains("panicked after 3 attempt(s)"), "{events}");
    assert!(events.contains("injected panic"), "{events}");

    // the acceptance bar: the single worker slot is alive and well
    let body = submit(&client, &tiny_spec("after-the-storm"));
    let id2 = body.get("id").and_then(Value::as_str).unwrap().to_string();
    wait_for(&client, &id2, Duration::from_secs(120), |d| status_of(d) == "completed");
    assert_eq!(metric(&client, "jobs_failed"), 1);
    assert_eq!(metric(&client, "jobs_completed"), 1);
    server.shutdown();
    std::fs::remove_dir_all(dir).ok();
}

/// The flagship drill: a randomized failpoint schedule (torn store writes +
/// probabilistic cell panics) runs until mid-campaign, the server is killed
/// (abandon), and a clean boot resumes to tables byte-identical to the
/// undisturbed reference — corrupt cells are quarantined and recomputed,
/// never served.
#[test]
fn randomized_chaos_plus_kill_resume_is_byte_identical() {
    let _g = guard();
    let spec = slow_spec("chaos", 40);
    let reference = reference_tables("chaos-ref", &spec);
    let dir = state_dir("kill-resume");

    // life 1: chaos armed — the first cell write is torn on disk, and cell
    // boundaries panic probabilistically under a pinned seed
    failpoint::configure("seed=1303;store.cell_write=short_write*1;serve.cell=panic:0.15*2").unwrap();
    let (server1, client1) = server(&dir, 1);
    let body = submit(&client1, &spec);
    let id = body.get("id").and_then(Value::as_str).unwrap().to_string();
    let fingerprint = body.get("fingerprint").and_then(Value::as_str).unwrap().to_string();
    wait_for(&client1, &id, Duration::from_secs(120), |d| {
        d.get("cells_done").and_then(Value::as_u64).unwrap_or(0) >= 8
    });
    let fired: u64 = failpoint::stats().iter().map(|(_, n)| n).sum();
    assert!(fired >= 1, "the schedule must actually inject faults: {:?}", failpoint::stats());
    server1.abandon();
    failpoint::clear();

    // life 2: clean boot over the damaged state — resume, recover, finish
    let (server2, client2) = server(&dir, 1);
    let resumed = server2.scheduler().jobs();
    assert_eq!(resumed.len(), 1, "the interrupted job re-queues on boot");
    let resumed_id = resumed[0].id_str();
    let events = client2.get(&format!("/v1/jobs/{resumed_id}/events")).expect("events").ndjson();
    assert_eq!(
        events.last().and_then(|v| v.get("event")).and_then(Value::as_str),
        Some("completed"),
        "the resumed campaign must finish"
    );
    // the torn write forced a quarantine somewhere under the cell store
    let quarantined = find_file(&dir.join("cache"), "cells.quarantine");
    assert!(quarantined, "the torn cell line must be quarantined, not trusted");
    assert_tables_match(&client2, &fingerprint, &reference);
    server2.shutdown();
    std::fs::remove_dir_all(dir).ok();
}

/// A full queue sheds with `503 + Retry-After`, and the client-side
/// `post_json_retrying` rides the hint to an eventual acceptance.
#[test]
fn full_queue_sheds_and_shed_clients_recover_by_retrying() {
    let _g = guard();
    failpoint::clear();
    let dir = state_dir("shed");
    let (server, client) = server(&dir, 1);
    server.scheduler().set_max_queue(Some(1));

    // occupy the single worker with a long campaign, then fill the queue
    let running = submit(&client, &slow_spec("occupant", 300));
    let running_id = running.get("id").and_then(Value::as_str).unwrap().to_string();
    wait_for(&client, &running_id, Duration::from_secs(60), |d| status_of(d) == "running");
    submit(&client, &tiny_spec("queued"));

    let shed = client
        .post_json("/v1/specs", &tiny_spec("overflow").to_json())
        .expect("overflow");
    assert_eq!(shed.status, 503, "{}", shed.text());
    let retry_after = shed.header("retry-after").and_then(|v| v.parse::<u64>().ok());
    assert!(retry_after.is_some_and(|s| s >= 1), "{:?}", shed.headers);
    assert!(metric(&client, "jobs_shed") >= 1);

    // free the worker, then the shed client's jittered retries get through
    assert_eq!(client.delete(&format!("/v1/jobs/{running_id}")).unwrap().status, 202);
    let recovered = client
        .post_json_retrying("/v1/specs", &tiny_spec("overflow").to_json(), 20)
        .expect("retrying submit");
    assert_eq!(recovered.status, 202, "{}", recovered.text());
    server.shutdown();
    std::fs::remove_dir_all(dir).ok();
}

/// A wall-clock deadline fails a running campaign at a cell boundary; the
/// worker survives and the failure names the deadline.
#[test]
fn deadlines_unwind_running_campaigns_cleanly() {
    let _g = guard();
    failpoint::clear();
    let dir = state_dir("deadline");
    let (server, client) = server(&dir, 1);
    let spec = slow_spec("endless", 2000);
    let reply = client
        .post_json("/v1/specs?deadline_s=1", &spec.to_json())
        .expect("submit with deadline");
    assert_eq!(reply.status, 202, "{}", reply.text());
    let id = reply
        .json()
        .and_then(|v| v.get("id").and_then(Value::as_str).map(str::to_string))
        .unwrap();
    let detail =
        wait_for(&client, &id, Duration::from_secs(120), |d| matches!(status_of(d), "completed" | "failed"));
    assert_eq!(status_of(&detail), "failed", "{detail:?}");
    let events = client.get(&format!("/v1/jobs/{id}/events")).expect("events").text();
    assert!(events.contains("deadline"), "{events}");
    assert!(metric(&client, "jobs_deadline_expired") >= 1);

    // the slot is free: an undeadlined job completes right after
    let body = submit(&client, &tiny_spec("after-deadline"));
    let id2 = body.get("id").and_then(Value::as_str).unwrap().to_string();
    wait_for(&client, &id2, Duration::from_secs(120), |d| status_of(d) == "completed");
    server.shutdown();
    std::fs::remove_dir_all(dir).ok();
}

/// Recursively looks for a file named `name` under `root`.
fn find_file(root: &Path, name: &str) -> bool {
    let Ok(entries) = std::fs::read_dir(root) else { return false };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if find_file(&path, name) {
                return true;
            }
        } else if path.file_name().is_some_and(|n| n == name) {
            return true;
        }
    }
    false
}
