//! `ftclipd`: the FT-ClipAct campaign service.
//!
//! An HTTP/1.1 server that accepts declarative
//! [`ExperimentSpec`](ftclip_bench::ExperimentSpec) JSON, deduplicates
//! submissions by content fingerprint, schedules cache-miss campaigns on a
//! bounded worker pool, streams per-cell progress as NDJSON, and serves
//! completed result tables — all on top of the same content-addressed
//! store the CLI uses, so the service, the CLI and a crash-resumed server
//! produce bit-identical results for the same spec.
//!
//! The stack, bottom up:
//!
//! * [`rt`] — a poll-based async executor over non-blocking sockets (no
//!   epoll, no `unsafe`, no dependencies; the offline-shim philosophy).
//! * [`http`] — request parsing, response rendering, chunked NDJSON
//!   streaming.
//! * [`jobs`] — the fingerprint-deduplicated, FIFO-within-priority job
//!   scheduler with crash-resume.
//! * [`service`] — routing and the [`Server`] lifecycle.
//! * [`client`] — a small blocking client for tests and the
//!   `ftclipd_probe` load/smoke tool.
//!
//! See `docs/API.md` for the endpoint reference and `docs/ARCHITECTURE.md`
//! for how the fingerprint chain ties the service to the store.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod jobs;
pub mod rt;
pub mod service;

pub use client::{HttpClient, HttpReply};
pub use jobs::{Job, JobStatus, Metrics, MetricsSnapshot, RetryPolicy, Scheduler, Submission};
pub use service::{ServeConfig, Server};
