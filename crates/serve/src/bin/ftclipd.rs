//! `ftclipd` — the FT-ClipAct campaign service.
//!
//! ```text
//! ftclipd [--addr HOST:PORT] [--state DIR] [--workers N] [--threads N]
//!         [--cache DIR] [--no-cache] [--assets DIR] [--fresh]
//!         [--keep-jobs N] [--admin-token TOKEN] [--max-queue N]
//!         [--deadline-secs N] [--retries N]
//! ```
//!
//! Boots the HTTP service over a persistent state directory, resuming any
//! unfinished jobs found there (unless `--fresh`), and runs until
//! `POST /v1/admin/shutdown`. When `--admin-token` (or the
//! `FTCLIP_ADMIN_TOKEN` environment variable) is set, every `/v1/admin/*`
//! request must carry `Authorization: Bearer <token>` or it is rejected
//! with 401. See `docs/API.md` for the endpoints.
//!
//! Robustness knobs (flag overrides the matching environment variable):
//!
//! * `--max-queue` / `FTCLIP_MAX_QUEUE` — queued-job cap; beyond it,
//!   submissions are shed with `503 + Retry-After`.
//! * `--deadline-secs` / `FTCLIP_DEADLINE_SECS` — default wall-clock job
//!   deadline (`?deadline_s=` on a submission overrides it).
//! * `--retries` / `FTCLIP_RETRIES` — supervised retries before a
//!   panicking job is marked failed.
//! * `FTCLIP_FAILPOINTS` — arms the deterministic fault-injection
//!   harness (chaos testing only; see `docs/ARCHITECTURE.md`).

use std::path::PathBuf;

use ftclip_serve::{ServeConfig, Server};

fn usage(reason: &str) -> ! {
    eprintln!("{reason}");
    eprintln!(
        "usage: ftclipd [--addr HOST:PORT] [--state DIR] [--workers N] [--threads N] \
         [--cache DIR] [--no-cache] [--assets DIR] [--fresh] [--keep-jobs N] \
         [--admin-token TOKEN] [--max-queue N] [--deadline-secs N] [--retries N]"
    );
    std::process::exit(2)
}

fn parse_config() -> ServeConfig {
    let mut config = ServeConfig::new("results/ftclipd");
    config.addr = "127.0.0.1:7878".to_string();
    let mut explicit_cache: Option<Option<PathBuf>> = None;
    let mut explicit_assets: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next().unwrap_or_else(|| usage(&format!("flag {flag} needs a value")))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--state" => {
                let state: PathBuf = value("--state").into();
                // the default cache/assets follow the state dir unless
                // overridden explicitly below
                config.settings.cache_root = Some(state.join("cache"));
                config.settings.assets_dir = state.join("assets");
                config.state_dir = state;
            }
            "--workers" => {
                config.workers = value("--workers").parse().unwrap_or_else(|_| usage("bad --workers"))
            }
            "--threads" => {
                config.threads = value("--threads").parse().unwrap_or_else(|_| usage("bad --threads"))
            }
            "--cache" => explicit_cache = Some(Some(value("--cache").into())),
            "--no-cache" => explicit_cache = Some(None),
            "--assets" => explicit_assets = Some(value("--assets").into()),
            "--fresh" => config.resume = false,
            "--keep-jobs" => {
                config.keep_jobs =
                    Some(value("--keep-jobs").parse().unwrap_or_else(|_| usage("bad --keep-jobs")))
            }
            "--admin-token" => config.admin_token = Some(value("--admin-token")),
            "--max-queue" => {
                config.max_queue =
                    Some(value("--max-queue").parse().unwrap_or_else(|_| usage("bad --max-queue")))
            }
            "--deadline-secs" => {
                let secs: u64 = value("--deadline-secs")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --deadline-secs"));
                config.default_deadline = (secs > 0).then(|| std::time::Duration::from_secs(secs));
            }
            "--retries" => {
                config.max_retries =
                    Some(value("--retries").parse().unwrap_or_else(|_| usage("bad --retries")))
            }
            "--help" | "-h" => usage("ftclipd: serve FT-ClipAct campaigns over HTTP"),
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    if let Some(cache) = explicit_cache {
        config.settings.cache_root = cache;
    }
    if let Some(assets) = explicit_assets {
        config.settings.assets_dir = assets;
    }
    config
}

fn main() {
    if let Ok(spec) = std::env::var("FTCLIP_FAILPOINTS") {
        if !spec.is_empty() {
            match ftclip_core::failpoint::configure(&spec) {
                Ok(()) => eprintln!("[ftclipd] FAULT INJECTION ARMED: {spec}"),
                Err(e) => {
                    eprintln!("[ftclipd] bad FTCLIP_FAILPOINTS: {e}");
                    std::process::exit(2);
                }
            }
        }
    }
    let config = parse_config();
    let state = config.state_dir.clone();
    let workers = config.workers;
    let threads = config.threads;
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("[ftclipd] failed to start: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "[ftclipd] listening on http://{} (state {}, {} worker(s) / {} thread(s))",
        server.addr(),
        state.display(),
        workers,
        threads
    );
    server.join();
    eprintln!("[ftclipd] shut down");
}
