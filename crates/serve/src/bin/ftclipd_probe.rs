//! `ftclipd_probe` — end-to-end smoke test and load probe for `ftclipd`.
//!
//! ```text
//! ftclipd_probe smoke --addr HOST:PORT [--out DIR] [--shutdown]
//! ftclipd_probe load  --addr HOST:PORT [--requests N] [--clients T] \
//!                     [--out BENCH_6.json] [--shutdown]
//! ftclipd_probe chaos --addr HOST:PORT [--out STATS.json] [--shutdown]
//! ```
//!
//! `smoke` drives the full service contract on the `fig1b --quick` spec:
//! submit → stream NDJSON events to completion → identical re-submit must
//! be an HTTP 200 cache hit with the spec-fingerprint ETag and **no**
//! recomputation (asserted via the `jobs_executed` metric) → fetch the
//! result tables into `--out` so CI can diff them against a local
//! `ftclip run fig1b --quick` run.
//!
//! `load` saturates the cache-hit path with `--clients` concurrent
//! connections and reports specs/sec and latency percentiles as
//! `BENCH_6.json`.
//!
//! `chaos` drives the same spec against a daemon launched with
//! `FTCLIP_FAILPOINTS` armed: every request tolerates injected accept /
//! stream faults and 503 sheds, completion is confirmed by polling the job
//! resource, and the recovery counters (`jobs_retried`, `jobs_panicked`,
//! `failpoints_fired`, …) are published as a JSON stats report for CI.

use std::io::Write as _;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use ftclip_bench::{ExperimentSpec, RunSettings};
use ftclip_serve::{HttpClient, HttpReply};
use serde::Value;

fn usage(reason: &str) -> ! {
    eprintln!("{reason}");
    eprintln!(
        "usage: ftclipd_probe smoke --addr HOST:PORT [--out DIR] [--shutdown]\n\
         \x20      ftclipd_probe load  --addr HOST:PORT [--requests N] [--clients T] \
         [--out FILE] [--shutdown]\n\
         \x20      ftclipd_probe chaos --addr HOST:PORT [--out FILE] [--shutdown]"
    );
    std::process::exit(2)
}

fn check(cond: bool, what: &str) {
    if cond {
        eprintln!("[probe] ok: {what}");
    } else {
        eprintln!("[probe] FAIL: {what}");
        std::process::exit(1);
    }
}

/// The spec the probe exercises: the `fig1b` preset at `--quick` scale —
/// byte-identical to what `ftclip run fig1b --quick` executes.
fn quick_fig1b_spec() -> ExperimentSpec {
    let preset = ftclip_bench::preset("fig1b").expect("fig1b preset exists");
    let quick = RunSettings { quick: true, ..RunSettings::default() };
    quick.apply(&preset.spec)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mode = args.next().unwrap_or_else(|| usage("missing mode (smoke|load)"));
    let mut addr: Option<SocketAddr> = None;
    let mut out: Option<String> = None;
    let mut requests = 200usize;
    let mut clients = 4usize;
    let mut shutdown = false;
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| -> String {
            args.next().unwrap_or_else(|| usage(&format!("flag {flag} needs a value")))
        };
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr").parse().unwrap_or_else(|_| usage("bad --addr"))),
            "--out" => out = Some(value("--out")),
            "--requests" => {
                requests = value("--requests").parse().unwrap_or_else(|_| usage("bad --requests"))
            }
            "--clients" => clients = value("--clients").parse().unwrap_or_else(|_| usage("bad --clients")),
            "--shutdown" => shutdown = true,
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    let addr = addr.unwrap_or_else(|| usage("--addr is required"));
    let client = HttpClient::new(addr).with_timeout(Duration::from_secs(600));

    match mode.as_str() {
        "smoke" => smoke(&client, out.as_deref()),
        "load" => load(&client, requests.max(1), clients.max(1), out.as_deref()),
        "chaos" => chaos(&client, out.as_deref()),
        other => usage(&format!("unknown mode '{other}'")),
    }

    if shutdown {
        let reply = client.post_json("/v1/admin/shutdown", "{}").expect("shutdown request");
        check(reply.status == 202, "admin shutdown accepted");
    }
    eprintln!("[probe] PASS ({mode})");
}

fn get_json(client: &HttpClient, path: &str) -> Value {
    let reply = client.get(path).unwrap_or_else(|e| {
        eprintln!("[probe] FAIL: GET {path}: {e}");
        std::process::exit(1);
    });
    check(reply.status == 200, &format!("GET {path} -> 200 (got {})", reply.status));
    reply.json().unwrap_or_else(|| {
        eprintln!("[probe] FAIL: GET {path}: body is not JSON");
        std::process::exit(1);
    })
}

fn metric(metrics: &Value, name: &str) -> u64 {
    metrics.get(name).and_then(Value::as_u64).unwrap_or_else(|| {
        eprintln!("[probe] FAIL: metrics missing '{name}'");
        std::process::exit(1);
    })
}

/// Submits the spec and, when it queues (202), blocks on the NDJSON event
/// stream until the job completes. Returns the final submission reply.
fn submit_and_wait(client: &HttpClient, spec_json: &str) -> HttpReply {
    let reply = client.post_json("/v1/specs", spec_json).expect("submit spec");
    check(
        reply.status == 200 || reply.status == 202,
        &format!("POST /v1/specs -> 200|202 (got {})", reply.status),
    );
    if reply.status == 202 {
        let body = reply.json().expect("submission body is JSON");
        let id = body.get("id").and_then(Value::as_str).expect("submission has a job id");
        let events = client.get(&format!("/v1/jobs/{id}/events")).expect("event stream");
        check(events.status == 200, "event stream opened");
        let lines = events.ndjson();
        let last = lines.last().and_then(|v| v.get("event")).and_then(Value::as_str);
        check(last == Some("completed"), &format!("final event is 'completed' (got {last:?})"));
        let cells: Vec<&Value> = lines
            .iter()
            .filter(|v| v.get("event").and_then(Value::as_str) == Some("cell"))
            .collect();
        check(!cells.is_empty(), &format!("event stream reported {} campaign cells", cells.len()));
    }
    reply
}

fn smoke(client: &HttpClient, out: Option<&str>) {
    let health = client.get("/healthz").expect("healthz");
    check(health.status == 200, "healthz -> 200");

    let spec = quick_fig1b_spec();
    let fingerprint = spec.fingerprint().key().to_hex();
    let spec_json = spec.to_json();

    let first = submit_and_wait(client, &spec_json);
    let server_fp = first
        .json()
        .and_then(|v| v.get("fingerprint").and_then(Value::as_str).map(str::to_string));
    check(
        server_fp.as_deref() == Some(fingerprint.as_str()),
        "server fingerprint matches the locally computed spec fingerprint",
    );

    let executed_after_first = metric(&get_json(client, "/v1/metrics"), "jobs_executed");

    // the identical re-submission must be served from the store: HTTP 200,
    // ETag = quoted spec fingerprint, and zero additional executions
    let second = client.post_json("/v1/specs", &spec_json).expect("resubmit spec");
    check(second.status == 200, &format!("re-submit -> 200 cache hit (got {})", second.status));
    check(
        second.json().and_then(|v| v.get("cached").and_then(Value::as_bool)) == Some(true),
        "cache hit is marked cached=true",
    );
    check(
        second.header("etag") == Some(format!("\"{fingerprint}\"").as_str()),
        "cache-hit ETag is the quoted spec fingerprint",
    );
    let executed_after_second = metric(&get_json(client, "/v1/metrics"), "jobs_executed");
    check(
        executed_after_second == executed_after_first,
        &format!("no recomputation on cache hit (jobs_executed stays {executed_after_first})"),
    );

    // conditional requests revalidate for free
    let conditional = client
        .request(
            "POST",
            "/v1/specs",
            &[("Content-Type", "application/json"), ("If-None-Match", &format!("\"{fingerprint}\""))],
            spec_json.as_bytes(),
        )
        .expect("conditional resubmit");
    check(conditional.status == 304, &format!("If-None-Match -> 304 (got {})", conditional.status));

    // the store behind the service has the campaign session
    let sessions = get_json(client, "/v1/store/sessions");
    check(
        sessions.as_array().is_some_and(|s| !s.is_empty()),
        "store lists at least one campaign session",
    );

    // fetch every result table; with --out, persist for the CI diff
    let result = get_json(client, &format!("/v1/results/{fingerprint}"));
    let tables: Vec<String> = result
        .get("tables")
        .and_then(Value::as_array)
        .map(|t| t.iter().filter_map(|v| v.as_str().map(str::to_string)).collect())
        .unwrap_or_default();
    check(!tables.is_empty(), &format!("result lists {} table(s)", tables.len()));
    let failures = result.get("failures").and_then(Value::as_array).map_or(0, <[Value]>::len);
    check(failures == 0, "result has no shape-check failures");
    for table in &tables {
        let csv = client
            .get(&format!("/v1/results/{fingerprint}?table={table}&format=csv"))
            .expect("fetch table");
        check(csv.status == 200, &format!("table '{table}' served as CSV"));
        if let Some(dir) = out {
            std::fs::create_dir_all(dir).expect("create --out dir");
            let path = std::path::Path::new(dir).join(format!("{table}.csv"));
            std::fs::write(&path, &csv.body).expect("write fetched table");
            eprintln!("[probe] wrote {}", path.display());
        }
    }
}

/// GETs a path, retrying on transport errors — under an armed `serve.accept`
/// or `serve.stream` failpoint individual connections are expected to die.
fn get_chaos(client: &HttpClient, path: &str, attempts: usize) -> HttpReply {
    let mut last_err = String::new();
    for attempt in 1..=attempts {
        match client.get(path) {
            Ok(reply) => return reply,
            Err(e) => {
                last_err = e.to_string();
                eprintln!("[probe] transient: GET {path} attempt {attempt}/{attempts}: {e}");
                std::thread::sleep(Duration::from_millis(100 * attempt as u64));
            }
        }
    }
    eprintln!("[probe] FAIL: GET {path} after {attempts} attempts: {last_err}");
    std::process::exit(1);
}

fn chaos(client: &HttpClient, out: Option<&str>) {
    let health = get_chaos(client, "/healthz", 10);
    check(health.status == 200, "healthz -> 200 despite injected accept faults");

    // submit through the shed-aware client path: 503 + Retry-After answers
    // are absorbed by jittered retries, transport faults by the outer loop
    let spec_json = quick_fig1b_spec().to_json();
    let mut submitted = None;
    for attempt in 1..=10u64 {
        match client.post_json_retrying("/v1/specs", &spec_json, 8) {
            Ok(reply) => {
                submitted = Some(reply);
                break;
            }
            Err(e) => {
                eprintln!("[probe] transient: POST /v1/specs attempt {attempt}/10: {e}");
                std::thread::sleep(Duration::from_millis(100 * attempt));
            }
        }
    }
    let reply = submitted.unwrap_or_else(|| {
        eprintln!("[probe] FAIL: POST /v1/specs never got through the chaos");
        std::process::exit(1);
    });
    check(
        reply.status == 200 || reply.status == 202,
        &format!("POST /v1/specs -> 200|202 (got {})", reply.status),
    );

    // the event stream may be cut mid-flight by `serve.stream`; completion
    // is confirmed by polling the job resource instead
    if reply.status == 202 {
        let body = reply.json().expect("submission body is JSON");
        let id = body
            .get("id")
            .and_then(Value::as_str)
            .map(str::to_string)
            .expect("submission has a job id");
        let deadline = Instant::now() + Duration::from_secs(600);
        let status = loop {
            let job = get_chaos(client, &format!("/v1/jobs/{id}"), 10);
            let status = job
                .json()
                .and_then(|v| v.get("status").and_then(Value::as_str).map(str::to_string))
                .unwrap_or_default();
            match status.as_str() {
                "completed" | "failed" | "cancelled" => break status,
                _ if Instant::now() >= deadline => break format!("timed out while {status}"),
                _ => std::thread::sleep(Duration::from_millis(250)),
            }
        };
        check(status == "completed", &format!("job settles as 'completed' (got '{status}')"));
    }

    // recovery must converge on the store: the re-submit is a cache hit
    let second = client.post_json_retrying("/v1/specs", &spec_json, 8).unwrap_or_else(|e| {
        eprintln!("[probe] FAIL: cache-hit resubmit: {e}");
        std::process::exit(1);
    });
    check(second.status == 200, &format!("re-submit -> 200 cache hit (got {})", second.status));

    // publish the server's recovery counters as the chaos stats report
    let metrics = get_chaos(client, "/v1/metrics", 10).json().unwrap_or_else(|| {
        eprintln!("[probe] FAIL: /v1/metrics body is not JSON");
        std::process::exit(1);
    });
    check(metric(&metrics, "jobs_completed") >= 1, "at least one job completed under chaos");
    let counter = |name: &str| Value::Number(metric(&metrics, name) as f64);
    let report = Value::Object(vec![
        ("probe".to_string(), Value::String("ftclipd_chaos".to_string())),
        (
            "failpoints".to_string(),
            Value::String(std::env::var("FTCLIP_FAILPOINTS").unwrap_or_default()),
        ),
        ("jobs_executed".to_string(), counter("jobs_executed")),
        ("jobs_completed".to_string(), counter("jobs_completed")),
        ("jobs_failed".to_string(), counter("jobs_failed")),
        ("jobs_retried".to_string(), counter("jobs_retried")),
        ("jobs_panicked".to_string(), counter("jobs_panicked")),
        ("jobs_shed".to_string(), counter("jobs_shed")),
        ("jobs_deadline_expired".to_string(), counter("jobs_deadline_expired")),
        (
            "failpoints_fired".to_string(),
            metrics.get("failpoints_fired").cloned().unwrap_or(Value::Object(Vec::new())),
        ),
    ]);
    let rendered = serde_json::to_string_pretty(&report).expect("render chaos report");
    match out {
        Some(path) => {
            std::fs::write(path, format!("{rendered}\n")).expect("write chaos report");
            eprintln!("[probe] wrote {path}");
        }
        None => {
            std::io::stdout().write_all(rendered.as_bytes()).ok();
            println!();
        }
    }
}

fn load(client: &HttpClient, requests: usize, clients: usize, out: Option<&str>) {
    let spec_json = quick_fig1b_spec().to_json();
    submit_and_wait(client, &spec_json); // ensure the cache-hit path is hot

    let per_client = requests.div_ceil(clients);
    let total = per_client * clients;
    let started = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let client = client.clone();
                let spec_json = &spec_json;
                scope.spawn(move || {
                    let mut samples = Vec::with_capacity(per_client);
                    for _ in 0..per_client {
                        let t0 = Instant::now();
                        let reply = client.post_json("/v1/specs", spec_json).expect("cache-hit submit");
                        let elapsed = t0.elapsed().as_secs_f64() * 1e3;
                        if reply.status != 200 {
                            eprintln!("[probe] FAIL: expected 200 cache hit, got {}", reply.status);
                            std::process::exit(1);
                        }
                        samples.push(elapsed);
                    }
                    samples
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("load client panicked"))
            .collect()
    });
    let wall = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));

    let pct = |p: f64| -> f64 {
        let idx = ((p / 100.0) * (latencies.len() - 1) as f64).round() as usize;
        latencies[idx.min(latencies.len() - 1)]
    };
    let specs_per_sec = total as f64 / wall;
    let (p50, p99, max) = (pct(50.0), pct(99.0), latencies[latencies.len() - 1]);
    eprintln!(
        "[probe] load: {total} cache-hit submissions over {clients} client(s) in {wall:.2}s \
         -> {specs_per_sec:.0} specs/sec, p50 {p50:.2}ms, p99 {p99:.2}ms, max {max:.2}ms"
    );

    let num = |n: f64| Value::Number((n * 1000.0).round() / 1000.0);
    let report = Value::Object(vec![
        ("bench".to_string(), Value::String("ftclipd_cache_hit".to_string())),
        ("requests".to_string(), Value::Number(total as f64)),
        ("clients".to_string(), Value::Number(clients as f64)),
        ("wall_seconds".to_string(), num(wall)),
        ("specs_per_sec".to_string(), num(specs_per_sec)),
        ("p50_ms".to_string(), num(p50)),
        ("p99_ms".to_string(), num(p99)),
        ("max_ms".to_string(), num(max)),
    ]);
    let rendered = serde_json::to_string_pretty(&report).expect("render bench report");
    match out {
        Some(path) => {
            std::fs::write(path, format!("{rendered}\n")).expect("write bench report");
            eprintln!("[probe] wrote {path}");
        }
        None => {
            std::io::stdout().write_all(rendered.as_bytes()).ok();
            println!();
        }
    }
}
