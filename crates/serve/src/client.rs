//! A small *blocking* HTTP/1.1 client — the test- and probe-side
//! counterpart of [`crate::http`].
//!
//! One request per connection (`Connection: close`), so reading to EOF is
//! always correct; chunked bodies (the NDJSON event stream) are decoded
//! transparently. Blocking is a feature here: the probe and the
//! integration tests *want* "wait until the job finishes" semantics, which
//! is exactly what reading a chunked stream to EOF gives.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use serde::Value;

/// A decoded HTTP response.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// Status code.
    pub status: u16,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body, de-chunked when the response was chunked.
    pub body: Vec<u8>,
}

impl HttpReply {
    /// The first header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// The body parsed as JSON, if it is valid JSON.
    pub fn json(&self) -> Option<Value> {
        serde_json::from_str(&self.text()).ok()
    }

    /// The body as NDJSON: one parsed value per non-empty line.
    pub fn ndjson(&self) -> Vec<Value> {
        self.text()
            .lines()
            .filter(|l| !l.trim().is_empty())
            .filter_map(|l| serde_json::from_str(l).ok())
            .collect()
    }
}

/// A blocking client bound to one server address.
#[derive(Debug, Clone)]
pub struct HttpClient {
    addr: SocketAddr,
    timeout: Duration,
}

impl HttpClient {
    /// A client for `addr` with a 120 s per-read timeout (long enough for
    /// a `--quick` campaign's training phase between event lines).
    pub fn new(addr: SocketAddr) -> Self {
        HttpClient { addr, timeout: Duration::from_secs(120) }
    }

    /// Overrides the per-read timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// `GET path`.
    ///
    /// # Errors
    ///
    /// Any socket error, a read timeout, or a malformed response.
    pub fn get(&self, path: &str) -> std::io::Result<HttpReply> {
        self.request("GET", path, &[], b"")
    }

    /// `DELETE path`.
    ///
    /// # Errors
    ///
    /// See [`HttpClient::get`].
    pub fn delete(&self, path: &str) -> std::io::Result<HttpReply> {
        self.request("DELETE", path, &[], b"")
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// See [`HttpClient::get`].
    pub fn post_json(&self, path: &str, body: &str) -> std::io::Result<HttpReply> {
        self.request("POST", path, &[("Content-Type", "application/json")], body.as_bytes())
    }

    /// Sends one request and reads the full response (to EOF — every
    /// request carries `Connection: close`). A chunked response body, such
    /// as the NDJSON event stream, blocks until the server finishes it;
    /// that is the intended way to wait for a job.
    ///
    /// # Errors
    ///
    /// Any socket error, a read timeout, or a malformed response head.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> std::io::Result<HttpReply> {
        let mut stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;

        let mut req = format!("{method} {path} HTTP/1.1\r\nHost: ftclipd\r\nConnection: close\r\n");
        for (name, value) in headers {
            req.push_str(&format!("{name}: {value}\r\n"));
        }
        if !body.is_empty() {
            req.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        req.push_str("\r\n");
        stream.write_all(req.as_bytes())?;
        stream.write_all(body)?;

        let mut raw = Vec::new();
        stream.read_to_end(&mut raw)?;
        parse_reply(&raw)
    }
}

/// Parses a full raw response (head + body as read to EOF).
fn parse_reply(raw: &[u8]) -> std::io::Result<HttpReply> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response head never terminated"))?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("response head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();

    let rest = &raw[head_end + 4..];
    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        decode_chunked(rest).ok_or_else(|| bad("malformed chunked body"))?
    } else {
        let len = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .unwrap_or(rest.len());
        rest.get(..len.min(rest.len())).unwrap_or_default().to_vec()
    };
    Ok(HttpReply { status, headers, body })
}

/// Decodes a complete chunked body; `None` on framing errors.
fn decode_chunked(mut rest: &[u8]) -> Option<Vec<u8>> {
    let mut body = Vec::new();
    loop {
        let line_end = rest.windows(2).position(|w| w == b"\r\n")?;
        let size_line = std::str::from_utf8(&rest[..line_end]).ok()?;
        let size = usize::from_str_radix(size_line.trim(), 16).ok()?;
        rest = &rest[line_end + 2..];
        if size == 0 {
            return Some(body);
        }
        body.extend_from_slice(rest.get(..size)?);
        rest = rest.get(size + 2..)?; // skip the chunk's trailing CRLF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_response_parses() {
        let raw = b"HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: 4\r\n\r\ngone";
        let reply = parse_reply(raw).unwrap();
        assert_eq!(reply.status, 404);
        assert_eq!(reply.header("Content-Type"), Some("text/plain"));
        assert_eq!(reply.text(), "gone");
    }

    #[test]
    fn chunked_response_dechunks_and_ndjson_splits() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
                    10\r\n{\"event\":\"a\"}\n{\"\r\n9\r\nx\":true}\n\r\n0\r\n\r\n";
        let reply = parse_reply(raw).unwrap();
        assert_eq!(reply.text(), "{\"event\":\"a\"}\n{\"x\":true}\n");
        let values = reply.ndjson();
        assert_eq!(values.len(), 2);
        assert_eq!(values[0].get("event").and_then(Value::as_str), Some("a"));
        assert_eq!(values[1].get("x").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn truncated_chunked_body_is_an_error() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n10\r\n{\"ev";
        assert!(parse_reply(raw).is_err());
    }
}
