//! A small *blocking* HTTP/1.1 client — the test- and probe-side
//! counterpart of [`crate::http`].
//!
//! Connections are **reused** across requests (HTTP/1.1 keep-alive):
//! responses are read by their framing (`Content-Length` or chunked
//! transfer encoding), never to EOF, so one TCP connection serves a whole
//! probe session instead of paying a connect per request. A reused
//! connection the server has since closed (its idle timeout is 30 s) is
//! detected on the next request and transparently replaced by a fresh one.
//! Blocking is a feature here: the probe and the integration tests *want*
//! "wait until the job finishes" semantics, which is exactly what reading
//! a chunked NDJSON stream to its terminal chunk gives.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

use serde::Value;

/// A decoded HTTP response.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// Status code.
    pub status: u16,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body, de-chunked when the response was chunked.
    pub body: Vec<u8>,
}

impl HttpReply {
    /// The first header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// The body parsed as JSON, if it is valid JSON.
    pub fn json(&self) -> Option<Value> {
        serde_json::from_str(&self.text()).ok()
    }

    /// The body as NDJSON: one parsed value per non-empty line.
    pub fn ndjson(&self) -> Vec<Value> {
        self.text()
            .lines()
            .filter(|l| !l.trim().is_empty())
            .filter_map(|l| serde_json::from_str(l).ok())
            .collect()
    }

    /// Whether the server will keep the connection open for another
    /// request (explicit `Connection: keep-alive`; [`crate::http`] always
    /// sets the header, so absence is treated as close).
    fn keeps_connection(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"))
    }
}

/// A blocking client bound to one server address, holding at most one
/// reusable keep-alive connection.
#[derive(Debug)]
pub struct HttpClient {
    addr: SocketAddr,
    timeout: Duration,
    conn: Mutex<Option<TcpStream>>,
}

impl Clone for HttpClient {
    /// Clones the address and timeout; the clone starts without a pooled
    /// connection (sockets cannot be shared, and each clone is typically a
    /// separate worker wanting its own connection anyway).
    fn clone(&self) -> Self {
        HttpClient {
            addr: self.addr,
            timeout: self.timeout,
            conn: Mutex::new(None),
        }
    }
}

impl HttpClient {
    /// A client for `addr` with a 120 s per-read timeout (long enough for
    /// a `--quick` campaign's training phase between event lines).
    pub fn new(addr: SocketAddr) -> Self {
        HttpClient {
            addr,
            timeout: Duration::from_secs(120),
            conn: Mutex::new(None),
        }
    }

    /// Overrides the per-read timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// `GET path`.
    ///
    /// # Errors
    ///
    /// Any socket error, a read timeout, or a malformed response.
    pub fn get(&self, path: &str) -> std::io::Result<HttpReply> {
        self.request("GET", path, &[], b"")
    }

    /// `DELETE path`.
    ///
    /// # Errors
    ///
    /// See [`HttpClient::get`].
    pub fn delete(&self, path: &str) -> std::io::Result<HttpReply> {
        self.request("DELETE", path, &[], b"")
    }

    /// `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// See [`HttpClient::get`].
    pub fn post_json(&self, path: &str, body: &str) -> std::io::Result<HttpReply> {
        self.request("POST", path, &[("Content-Type", "application/json")], body.as_bytes())
    }

    /// [`HttpClient::post_json`] that honors load shedding: a `503` with a
    /// `Retry-After` header is retried up to `max_retries` times, sleeping
    /// the server's hint scaled by a deterministic jitter factor in
    /// `[0.5, 1.0)` (keyed off the path and attempt, so a fleet of probes
    /// hitting the same shed does not retry in lockstep). Any other reply —
    /// including a final `503` — is returned as-is.
    ///
    /// # Errors
    ///
    /// See [`HttpClient::get`].
    pub fn post_json_retrying(
        &self,
        path: &str,
        body: &str,
        max_retries: usize,
    ) -> std::io::Result<HttpReply> {
        let mut attempt = 0;
        loop {
            let reply = self.post_json(path, body)?;
            attempt += 1;
            let retry_after = reply.header("retry-after").and_then(|v| v.parse::<u64>().ok());
            let sheds = reply.status == 503 && retry_after.is_some();
            if !sheds || attempt > max_retries {
                return Ok(reply);
            }
            let hint = Duration::from_secs(retry_after.unwrap_or(1).clamp(1, 60));
            std::thread::sleep(hint.mul_f64(retry_jitter(path, attempt)));
        }
    }

    /// Sends one request and reads the framed response, reusing the pooled
    /// keep-alive connection when one is open. A pooled connection the
    /// server closed in the meantime (idle timeout, restart) fails the
    /// first attempt; the request is then retried exactly once on a fresh
    /// connection — safe because the server never processed a byte of the
    /// failed attempt's response. A chunked response body, such as the
    /// NDJSON event stream, blocks until the server finishes it; that is
    /// the intended way to wait for a job.
    ///
    /// # Errors
    ///
    /// Any socket error, a read timeout, or a malformed response head.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> std::io::Result<HttpReply> {
        let pooled = self.conn.lock().map_or(None, |mut guard| guard.take());
        if let Some(stream) = pooled {
            match self.attempt(stream, method, path, headers, body) {
                Ok(reply) => return Ok(reply),
                // only a connection found dead *before any response byte*
                // is retried — a mid-stream failure must surface, because
                // the server may already be processing the request
                Err(e) if connection_was_stale(&e) => {}
                Err(e) => return Err(e),
            }
        }
        let stream = TcpStream::connect(self.addr)?;
        self.attempt(stream, method, path, headers, body)
    }

    /// One request/response exchange on `stream`; pools the stream back
    /// for reuse when the server kept the connection open.
    fn attempt(
        &self,
        mut stream: TcpStream,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> std::io::Result<HttpReply> {
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;

        let mut req = format!("{method} {path} HTTP/1.1\r\nHost: ftclipd\r\nConnection: keep-alive\r\n");
        for (name, value) in headers {
            req.push_str(&format!("{name}: {value}\r\n"));
        }
        req.push_str(&format!("Content-Length: {}\r\n", body.len()));
        req.push_str("\r\n");
        stream.write_all(req.as_bytes())?;
        stream.write_all(body)?;

        let reply = read_framed_reply(&mut stream)?;
        if reply.keeps_connection() {
            if let Ok(mut guard) = self.conn.lock() {
                *guard = Some(stream);
            }
        }
        Ok(reply)
    }
}

/// Deterministic retry jitter in `[0.5, 1.0)` from the request path and
/// attempt number — replayable under test, decorrelated across callers.
fn retry_jitter(path: &str, attempt: usize) -> f64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in path.as_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= attempt as u64;
    h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 29;
    0.5 + 0.5 * ((h >> 11) as f64 / (1u64 << 53) as f64)
}

/// Errors that mean the pooled connection was already dead when the
/// request started: the server closed it (idle timeout, restart) without
/// sending a byte of this exchange. Safe to retry on a fresh connection.
fn connection_was_stale(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        ErrorKind::NotConnected
            | ErrorKind::BrokenPipe
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
    )
}

/// Reads one complete response from the stream by its framing: head to the
/// `\r\n\r\n` terminator, then a `Content-Length` body, a chunked body to
/// its terminal chunk, or (absent both) the legacy read-to-EOF close.
fn read_framed_reply(stream: &mut TcpStream) -> std::io::Result<HttpReply> {
    let bad = |msg: &str| std::io::Error::new(ErrorKind::InvalidData, msg.to_string());
    let mut raw = Vec::with_capacity(1024);
    let mut buf = [0u8; 8192];
    let head_end = loop {
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            // clean close before any byte → the keep-alive went stale
            // (retryable); a torn-off partial head is real corruption
            return if raw.is_empty() {
                Err(ErrorKind::NotConnected.into())
            } else {
                Err(bad("connection closed mid response head"))
            };
        }
        raw.extend_from_slice(&buf[..n]);
    };
    let (status, headers) = parse_head(&raw[..head_end])?;

    let mut rest = raw[head_end + 4..].to_vec();
    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok());
    let body = if chunked {
        loop {
            match decode_chunked(&rest) {
                ChunkState::Complete(body) => break body,
                ChunkState::Malformed => return Err(bad("malformed chunked body")),
                ChunkState::NeedMore => {
                    let n = stream.read(&mut buf)?;
                    if n == 0 {
                        return Err(bad("chunked body truncated"));
                    }
                    rest.extend_from_slice(&buf[..n]);
                }
            }
        }
    } else if let Some(len) = content_length {
        while rest.len() < len {
            let n = stream.read(&mut buf)?;
            if n == 0 {
                return Err(ErrorKind::UnexpectedEof.into());
            }
            rest.extend_from_slice(&buf[..n]);
        }
        rest.truncate(len);
        rest
    } else {
        // no framing: the server signals the end by closing (HTTP/1.0
        // style); such a connection is never pooled
        stream.read_to_end(&mut rest)?;
        rest
    };
    Ok(HttpReply { status, headers, body })
}

/// Parses the status line and headers of a response head.
fn parse_head(head: &[u8]) -> std::io::Result<(u16, Vec<(String, String)>)> {
    let bad = |msg: &str| std::io::Error::new(ErrorKind::InvalidData, msg.to_string());
    let head = std::str::from_utf8(head).map_err(|_| bad("response head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let headers = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok((status, headers))
}

/// Parses a full raw response (head + body already in memory) — the
/// non-incremental view the unit tests use to pin the framing rules.
#[cfg(test)]
fn parse_reply(raw: &[u8]) -> std::io::Result<HttpReply> {
    let bad = |msg: &str| std::io::Error::new(ErrorKind::InvalidData, msg.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("response head never terminated"))?;
    let (status, headers) = parse_head(&raw[..head_end])?;

    let rest = &raw[head_end + 4..];
    let chunked = headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        match decode_chunked(rest) {
            ChunkState::Complete(body) => body,
            _ => return Err(bad("malformed chunked body")),
        }
    } else {
        let len = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .unwrap_or(rest.len());
        rest.get(..len.min(rest.len())).unwrap_or_default().to_vec()
    };
    Ok(HttpReply { status, headers, body })
}

/// Outcome of decoding a (possibly still-arriving) chunked body.
enum ChunkState {
    /// The terminal chunk arrived; the de-chunked body.
    Complete(Vec<u8>),
    /// The prefix is valid but the body is not finished yet.
    NeedMore,
    /// The framing is invalid (non-hex size line, missing CRLF).
    Malformed,
}

/// Decodes as much of a chunked body as `rest` holds.
fn decode_chunked(mut rest: &[u8]) -> ChunkState {
    let mut body = Vec::new();
    loop {
        let Some(line_end) = rest.windows(2).position(|w| w == b"\r\n") else {
            // an impossible size line (too long to still lack its CRLF)
            // is framing corruption, not a short read
            return if rest.len() > 18 { ChunkState::Malformed } else { ChunkState::NeedMore };
        };
        let Ok(size_line) = std::str::from_utf8(&rest[..line_end]) else {
            return ChunkState::Malformed;
        };
        let Ok(size) = usize::from_str_radix(size_line.trim(), 16) else {
            return ChunkState::Malformed;
        };
        rest = &rest[line_end + 2..];
        if size == 0 {
            return ChunkState::Complete(body);
        }
        let Some(data) = rest.get(..size) else {
            return ChunkState::NeedMore;
        };
        body.extend_from_slice(data);
        match rest.get(size..size + 2) {
            Some(b"\r\n") => rest = &rest[size + 2..],
            Some(_) => return ChunkState::Malformed,
            None => return ChunkState::NeedMore,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_response_parses() {
        let raw = b"HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: 4\r\n\r\ngone";
        let reply = parse_reply(raw).unwrap();
        assert_eq!(reply.status, 404);
        assert_eq!(reply.header("Content-Type"), Some("text/plain"));
        assert_eq!(reply.text(), "gone");
    }

    #[test]
    fn chunked_response_dechunks_and_ndjson_splits() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
                    10\r\n{\"event\":\"a\"}\n{\"\r\n9\r\nx\":true}\n\r\n0\r\n\r\n";
        let reply = parse_reply(raw).unwrap();
        assert_eq!(reply.text(), "{\"event\":\"a\"}\n{\"x\":true}\n");
        let values = reply.ndjson();
        assert_eq!(values.len(), 2);
        assert_eq!(values[0].get("event").and_then(Value::as_str), Some("a"));
        assert_eq!(values[1].get("x").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn truncated_chunked_body_is_an_error() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n10\r\n{\"ev";
        assert!(parse_reply(raw).is_err());
    }

    #[test]
    fn incremental_chunk_decoding_distinguishes_short_from_malformed() {
        assert!(matches!(decode_chunked(b"4\r\nab"), ChunkState::NeedMore), "data still arriving");
        assert!(matches!(decode_chunked(b"4"), ChunkState::NeedMore), "size line still arriving");
        assert!(matches!(decode_chunked(b"xyz\r\nab"), ChunkState::Malformed), "non-hex size");
        assert!(matches!(decode_chunked(b"4\r\nabcdXX"), ChunkState::Malformed), "missing chunk CRLF");
        match decode_chunked(b"4\r\nabcd\r\n0\r\n\r\n") {
            ChunkState::Complete(body) => assert_eq!(body, b"abcd"),
            _ => panic!("complete body must decode"),
        }
    }

    #[test]
    fn retry_jitter_is_deterministic_and_bounded() {
        for attempt in 1..=5 {
            let j = retry_jitter("/v1/specs", attempt);
            assert_eq!(j.to_bits(), retry_jitter("/v1/specs", attempt).to_bits());
            assert!((0.5..1.0).contains(&j), "attempt {attempt}: {j}");
        }
        assert_ne!(
            retry_jitter("/v1/specs", 1).to_bits(),
            retry_jitter("/v1/jobs", 1).to_bits(),
            "different paths must decorrelate"
        );
    }

    #[test]
    fn keep_alive_header_gates_connection_reuse() {
        let keep =
            parse_reply(b"HTTP/1.1 200 OK\r\nConnection: keep-alive\r\nContent-Length: 0\r\n\r\n").unwrap();
        assert!(keep.keeps_connection());
        let close =
            parse_reply(b"HTTP/1.1 200 OK\r\nConnection: close\r\nContent-Length: 0\r\n\r\n").unwrap();
        assert!(!close.keeps_connection());
        let silent = parse_reply(b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n").unwrap();
        assert!(!silent.keeps_connection(), "absent header must not pool the connection");
    }
}
