//! The `ftclipd` server: configuration, HTTP routing and lifecycle.
//!
//! One accept thread runs the [`crate::rt::Executor`] with a non-blocking
//! listener; every connection is an async task on that thread. Connection
//! handlers never do campaign work — they validate, consult the
//! [`Scheduler`] and read files — so the accept thread stays responsive
//! while the worker threads burn the CPU budget on campaigns.
//!
//! Lifecycle verbs, in decreasing gentleness:
//!
//! * [`Server::shutdown`] (or `POST /v1/admin/shutdown`) — stop accepting,
//!   finish the jobs already running, join; still-queued jobs stay
//!   persisted on disk and resume on the next boot.
//! * [`Server::abandon`] — crash simulation: running campaigns unwind at
//!   the next cell boundary and **nothing** is persisted beyond what a real
//!   crash would leave (the submitted spec and the store's completed
//!   cells). Tests use this to prove crash-resume is bit-identical.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use ftclip_bench::{ExperimentSpec, RunSettings};
use ftclip_store::ResultStore;
use ftclip_tensor::failpoint;
use serde::Value;

use crate::http::{
    finish_chunks, read_request, write_chunk, write_response, Request, Response, KEEP_ALIVE_IDLE,
};
use crate::jobs::{Job, JobStatus, MetricsSnapshot, Scheduler, Submission, RESULT_DIR};
use crate::rt::{yield_now, Executor};

/// Server configuration. Construct with [`ServeConfig::new`] and override
/// fields as needed.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Persistent root: job records under `jobs/`, the campaign-cell store
    /// under `cache/` (unless relocated via `settings.cache_root`).
    pub state_dir: PathBuf,
    /// Concurrent campaign workers.
    pub workers: usize,
    /// Total thread budget shared by the workers (each gets its remainder
    /// share, exactly like `Runner::run_batch`).
    pub threads: usize,
    /// Base run settings for every job. `out_dir` is ignored — each job
    /// writes to its own result directory; `cache_root` and `assets_dir`
    /// are shared across jobs so campaigns reuse cells and trained models.
    pub settings: RunSettings,
    /// Re-queue persisted unfinished jobs on boot.
    pub resume: bool,
    /// Retain at most this many **terminal** job records on disk: the
    /// oldest completed/failed/cancelled `jobs/<fingerprint>/` directories
    /// beyond the cap are deleted at boot and after each job finishes.
    /// `None` (the default) keeps everything. Unfinished jobs and the
    /// campaign-cell store are never evicted — dropping a job record only
    /// costs re-deriving its tables from still-cached cells.
    pub keep_jobs: Option<usize>,
    /// Bearer token required on every `/v1/admin/*` request. `None` (the
    /// default when `FTCLIP_ADMIN_TOKEN` is unset) leaves the admin
    /// endpoints open — fine on loopback, set a token anywhere else.
    pub admin_token: Option<String>,
    /// Submission-queue capacity; submissions beyond it are shed with
    /// `503 + Retry-After`. `None` (the default when `FTCLIP_MAX_QUEUE` is
    /// unset) accepts everything.
    pub max_queue: Option<usize>,
    /// Default wall-clock deadline for jobs submitted without an explicit
    /// `?deadline_s=`. `None` (the default when `FTCLIP_DEADLINE_SECS` is
    /// unset) lets jobs run indefinitely.
    pub default_deadline: Option<Duration>,
    /// Supervised retries before a panicking job is marked failed. `None`
    /// (the default when `FTCLIP_RETRIES` is unset) keeps
    /// [`crate::RetryPolicy::default`]'s count.
    pub max_retries: Option<usize>,
}

impl ServeConfig {
    /// Defaults: loopback on a free port, 2 workers over the process
    /// thread budget, store and assets under `state_dir`, resume on, and
    /// the admin token taken from `FTCLIP_ADMIN_TOKEN` when set.
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        let state_dir = state_dir.into();
        let settings = RunSettings {
            cache_root: Some(state_dir.join("cache")),
            assets_dir: state_dir.join("assets"),
            ..RunSettings::default()
        };
        let env_usize = |name: &str| std::env::var(name).ok().and_then(|v| v.parse::<usize>().ok());
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            threads: ftclip_tensor::num_threads(),
            settings,
            state_dir,
            resume: true,
            keep_jobs: None,
            admin_token: std::env::var("FTCLIP_ADMIN_TOKEN").ok().filter(|t| !t.is_empty()),
            max_queue: env_usize("FTCLIP_MAX_QUEUE"),
            default_deadline: std::env::var("FTCLIP_DEADLINE_SECS")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|&s| s > 0)
                .map(Duration::from_secs),
            max_retries: env_usize("FTCLIP_RETRIES"),
        }
    }
}

struct Shared {
    scheduler: Arc<Scheduler>,
    workers: usize,
    threads: usize,
    cache_root: Option<PathBuf>,
    admin_token: Option<String>,
}

/// A running `ftclipd` instance. Dropping the handle shuts it down
/// gracefully.
pub struct Server {
    addr: SocketAddr,
    scheduler: Arc<Scheduler>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish_non_exhaustive()
    }
}

impl Server {
    /// Binds, resumes persisted jobs (when configured) and starts the
    /// accept and worker threads.
    ///
    /// # Errors
    ///
    /// Any socket error binding the listener.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let scheduler = Scheduler::new(config.state_dir.clone(), config.settings.clone());
        scheduler.set_keep_jobs(config.keep_jobs);
        scheduler.set_max_queue(config.max_queue);
        scheduler.set_default_deadline(config.default_deadline);
        if let Some(max_retries) = config.max_retries {
            let policy = crate::jobs::RetryPolicy { max_retries, ..scheduler.retry_policy() };
            scheduler.set_retry_policy(policy);
        }
        if config.resume {
            let resumed = scheduler.resume_from_disk();
            if resumed > 0 {
                eprintln!("[ftclipd] resumed {resumed} unfinished job(s)");
            }
        }
        // boot-time retention pass: a prior server life (or a lower cap)
        // may have left more terminal records than we now want to keep
        let evicted = scheduler.gc_terminal_jobs();
        if evicted > 0 {
            eprintln!("[ftclipd] evicted {evicted} old job record(s)");
        }

        let workers = config.workers.max(1);
        let threads = config.threads.max(1);
        let shared = Arc::new(Shared {
            scheduler: scheduler.clone(),
            workers,
            threads,
            cache_root: config.settings.cache_root.clone(),
            admin_token: config.admin_token.clone(),
        });

        let inner = threads / workers;
        let spare = threads % workers;
        let worker_handles = (0..workers)
            .map(|w| {
                let scheduler = scheduler.clone();
                let budget = (inner + usize::from(w < spare)).max(1);
                std::thread::spawn(move || scheduler.worker_loop(budget))
            })
            .collect();
        let accept = std::thread::spawn(move || accept_loop(&shared, &listener));

        Ok(Server {
            addr,
            scheduler,
            accept: Some(accept),
            workers: worker_handles,
        })
    }

    /// The bound address (with the OS-chosen port when the config said
    /// port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The scheduler, for in-process inspection in tests and tools.
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.scheduler
    }

    /// A snapshot of the service counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.scheduler.metrics.snapshot()
    }

    /// Graceful shutdown: finish running jobs and event streams, join all
    /// threads.
    pub fn shutdown(mut self) {
        self.scheduler.request_shutdown();
        self.join_threads();
    }

    /// Crash simulation: cancel running campaigns at their next cell
    /// boundary *without* persisting any job completion state, then join.
    /// A subsequent [`Server::start`] over the same state directory
    /// re-queues the interrupted jobs and their campaigns resume from the
    /// content-addressed store, bit-identically.
    pub fn abandon(mut self) {
        self.scheduler.request_abandon();
        self.join_threads();
    }

    /// Blocks until a shutdown is requested (e.g. `POST
    /// /v1/admin/shutdown`), then joins. The `ftclipd` binary's main loop.
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        // a panicking service thread is already a bug report; escalating it
        // into a panic inside Drop would abort the whole process
        if let Some(handle) = self.accept.take() {
            if handle.join().is_err() {
                eprintln!("[ftclipd] accept thread panicked");
            }
        }
        for handle in self.workers.drain(..) {
            if handle.join().is_err() {
                eprintln!("[ftclipd] worker thread panicked");
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.scheduler.request_shutdown();
        self.join_threads();
    }
}

/// The accept thread: accept until stopping, tick the executor until every
/// connection task has finished.
fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    let mut ex = Executor::new();
    loop {
        let mut progress = false;
        if !shared.scheduler.stopping() {
            loop {
                match failpoint::check_io("serve.accept").and_then(|()| listener.accept()) {
                    Ok((stream, _peer)) => {
                        if stream.set_nonblocking(true).is_ok() {
                            let shared = shared.clone();
                            ex.spawn(async move { handle_connection(&shared, &stream).await });
                            progress = true;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    // transient accept failures (injected or real, e.g.
                    // EMFILE) drop one connection attempt, never the loop
                    Err(_) => break,
                }
            }
        }
        if ex.tick() {
            progress = true;
        }
        if shared.scheduler.stopping() && ex.task_count() == 0 {
            return;
        }
        if !progress {
            std::thread::sleep(Duration::from_micros(500));
        }
    }
}

/// One keep-alive connection: requests in, responses (or one event stream)
/// out, until the client closes or errors.
async fn handle_connection(shared: &Arc<Shared>, stream: &TcpStream) {
    loop {
        let request = match read_request(stream, KEEP_ALIVE_IDLE).await {
            Ok(Some(request)) => request,
            Ok(None) => return,
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                let resp = Response::error(400, "bad-request", &e.to_string());
                let _ = write_response(stream, &resp, false).await;
                return;
            }
            Err(_) => return,
        };
        let keep_alive = request.keep_alive();
        match dispatch(shared, &request) {
            Handled::Reply(response) => {
                if write_response(stream, &response, keep_alive).await.is_err() || !keep_alive {
                    return;
                }
            }
            Handled::Events(job) => {
                stream_events(shared, stream, &job).await;
                return; // chunked stream ends the connection
            }
        }
    }
}

/// Streams a job's NDJSON events until the job is terminal (or the server
/// is stopping and the job will not run before it exits), then terminates
/// the chunked body.
async fn stream_events(shared: &Arc<Shared>, stream: &TcpStream, job: &Arc<Job>) {
    let head = Response::new(200)
        .header("Content-Type", "application/x-ndjson")
        .header("Transfer-Encoding", "chunked");
    if write_response(stream, &head, false).await.is_err() {
        return;
    }
    let mut sent = 0usize;
    loop {
        let lines = job.events_from(sent);
        if lines.is_empty() {
            if job.is_terminal()
                || shared.scheduler.abandoning()
                || (shared.scheduler.stopping() && job.status() != JobStatus::Running)
            {
                break;
            }
            yield_now().await;
            continue;
        }
        sent += lines.len();
        // an injected stream fault behaves exactly like the client hanging
        // up mid-stream: the connection dies, the job is unaffected and a
        // reconnect replays the full event log from index 0
        if failpoint::check_io("serve.stream").is_err()
            || write_chunk(stream, lines.concat().as_bytes()).await.is_err()
        {
            return;
        }
    }
    let _ = finish_chunks(stream).await;
}

enum Handled {
    Reply(Response),
    Events(Arc<Job>),
}

/// Routes one request. Everything here is fast: scheduler bookkeeping and
/// small file reads, never campaign work.
fn dispatch(shared: &Arc<Shared>, req: &Request) -> Handled {
    let path = req.path.clone();
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let reply = |r: Response| Handled::Reply(r);
    if let ["v1", "admin", ..] = segments.as_slice() {
        if let Some(denied) = admin_auth_error(shared, req) {
            return reply(denied);
        }
    }
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => reply(Response::text(200, "ok\n")),
        ("GET", ["v1", "metrics"]) => reply(metrics_response(shared)),
        ("POST", ["v1", "specs"]) => reply(submit_spec(shared, req)),
        ("GET", ["v1", "jobs"]) => {
            let jobs: Vec<Value> = shared.scheduler.jobs().iter().map(|j| j.describe()).collect();
            reply(Response::json(200, &Value::Array(jobs)))
        }
        ("GET", ["v1", "jobs", id]) => match shared.scheduler.find_job(id) {
            Some(job) => reply(Response::json(200, &job.describe())),
            None => reply(Response::error(404, "unknown-job", &format!("no job '{id}'"))),
        },
        ("DELETE", ["v1", "jobs", id]) => match shared.scheduler.find_job(id) {
            Some(job) => {
                if shared.scheduler.cancel(&job) {
                    reply(Response::json(
                        202,
                        &Value::Object(vec![
                            ("id".to_string(), Value::String(job.id_str())),
                            ("status".to_string(), Value::String(job.status().as_str().to_string())),
                        ]),
                    ))
                } else {
                    reply(Response::error(
                        409,
                        "not-cancellable",
                        &format!("job '{id}' already {}", job.status().as_str()),
                    ))
                }
            }
            None => reply(Response::error(404, "unknown-job", &format!("no job '{id}'"))),
        },
        ("GET", ["v1", "jobs", id, "events"]) => match shared.scheduler.find_job(id) {
            Some(job) => Handled::Events(job),
            None => reply(Response::error(404, "unknown-job", &format!("no job '{id}'"))),
        },
        ("GET", ["v1", "results", fingerprint]) => reply(result_response(shared, req, fingerprint)),
        ("GET", ["v1", "store", "sessions"]) => reply(sessions_response(shared)),
        ("POST", ["v1", "admin", "shutdown"]) => {
            shared.scheduler.request_shutdown();
            reply(Response::json(
                202,
                &Value::Object(vec![("status".to_string(), Value::String("shutting-down".to_string()))]),
            ))
        }
        (_, ["healthz" | "v1", ..]) => {
            reply(Response::error(405, "method-not-allowed", "unsupported method for this path"))
        }
        _ => reply(Response::error(404, "not-found", "unknown path")),
    }
}

/// `Some(401)` when the server has an admin token configured and the
/// request's `Authorization: Bearer <token>` does not match it exactly.
/// `None` (request allowed) when no token is configured.
fn admin_auth_error(shared: &Arc<Shared>, req: &Request) -> Option<Response> {
    let expected = shared.admin_token.as_deref()?;
    let presented = req
        .header("authorization")
        .and_then(|v| v.strip_prefix("Bearer "))
        .map(str::trim);
    if presented == Some(expected) {
        return None;
    }
    Some(
        Response::error(401, "unauthorized", "admin endpoints require a valid bearer token")
            .header("WWW-Authenticate", "Bearer"),
    )
}

fn metrics_response(shared: &Arc<Shared>) -> Response {
    let m = shared.scheduler.metrics.snapshot();
    let uint = |n: usize| Value::Number(n as f64);
    let mut rows = vec![
        ("jobs_submitted".to_string(), uint(m.jobs_submitted)),
        ("jobs_executed".to_string(), uint(m.jobs_executed)),
        ("jobs_completed".to_string(), uint(m.jobs_completed)),
        ("jobs_failed".to_string(), uint(m.jobs_failed)),
        ("jobs_cancelled".to_string(), uint(m.jobs_cancelled)),
        ("cache_hits".to_string(), uint(m.cache_hits)),
        ("coalesced".to_string(), uint(m.coalesced)),
        ("queue_depth".to_string(), uint(m.queue_depth)),
        ("jobs_shed".to_string(), uint(m.jobs_shed)),
        ("jobs_retried".to_string(), uint(m.jobs_retried)),
        ("jobs_panicked".to_string(), uint(m.jobs_panicked)),
        ("jobs_deadline_expired".to_string(), uint(m.jobs_deadline_expired)),
        ("workers".to_string(), uint(shared.workers)),
        ("threads".to_string(), uint(shared.threads)),
    ];
    if failpoint::enabled() {
        let fired = failpoint::stats()
            .into_iter()
            .map(|(site, count)| (site, Value::Number(count as f64)))
            .collect();
        rows.push(("failpoints_fired".to_string(), Value::Object(fired)));
    }
    Response::json(200, &Value::Object(rows))
}

/// `POST /v1/specs`: validate, dedup, queue — or answer from the store.
fn submit_spec(shared: &Arc<Shared>, req: &Request) -> Response {
    if shared.scheduler.stopping() {
        return Response::error(503, "shutting-down", "server is shutting down");
    }
    let Ok(body) = std::str::from_utf8(&req.body) else {
        return Response::error(400, "bad-request", "spec body must be UTF-8 JSON");
    };
    let spec = match ExperimentSpec::from_json(body) {
        Ok(spec) => spec,
        Err(e) => return Response::error(400, "bad-spec", &e.to_string()),
    };
    let priority = match req.query_param("priority") {
        None => 5u8,
        Some(raw) => match raw.parse::<u8>() {
            Ok(p) if p <= 9 => p,
            _ => return Response::error(400, "bad-priority", "priority must be an integer 0-9"),
        },
    };
    let deadline = match req.query_param("deadline_s") {
        None => None,
        Some(raw) => match raw.parse::<u64>() {
            Ok(s) if s > 0 => Some(Duration::from_secs(s)),
            _ => {
                return Response::error(
                    400,
                    "bad-deadline",
                    "deadline_s must be a positive integer number of seconds",
                )
            }
        },
    };

    match shared.scheduler.submit_with_deadline(spec, priority, deadline) {
        Submission::CachedResult { fingerprint } => cached_result_response(shared, req, &fingerprint),
        Submission::Existing(job) => accepted_response(&job, true),
        Submission::Queued(job) => accepted_response(&job, false),
        Submission::Shed { queue_depth, retry_after } => Response::error(
            503,
            "queue-full",
            &format!("submission queue is at capacity ({queue_depth} queued); retry later"),
        )
        .header("Retry-After", &retry_after.as_secs().max(1).to_string()),
    }
}

/// The `202 Accepted` body for a queued or coalesced submission.
fn accepted_response(job: &Arc<Job>, coalesced: bool) -> Response {
    Response::json(
        202,
        &Value::Object(vec![
            ("id".to_string(), Value::String(job.id_str())),
            ("fingerprint".to_string(), Value::String(job.fingerprint.clone())),
            ("status".to_string(), Value::String(job.status().as_str().to_string())),
            ("coalesced".to_string(), Value::Bool(coalesced)),
        ]),
    )
    .header("Location", &format!("/v1/jobs/{}", job.id_str()))
    .header("ETag", &etag(&job.fingerprint))
}

/// A spec whose result is already stored: `304` when the client's
/// `If-None-Match` matches, else `200` with the completion record.
fn cached_result_response(shared: &Arc<Shared>, req: &Request, fingerprint: &str) -> Response {
    let tag = etag(fingerprint);
    if if_none_match(req, &tag) {
        return Response::new(304).header("ETag", &tag);
    }
    match shared.scheduler.stored_result(fingerprint) {
        Some(Value::Object(mut fields)) => {
            fields.push(("cached".to_string(), Value::Bool(true)));
            Response::json(200, &Value::Object(fields)).header("ETag", &tag)
        }
        _ => Response::error(500, "corrupt-result", "stored completion record is unreadable"),
    }
}

/// `GET /v1/results/:fingerprint[?table=NAME&format=csv|json]`.
fn result_response(shared: &Arc<Shared>, req: &Request, fingerprint: &str) -> Response {
    if fingerprint.len() != 32 || !fingerprint.chars().all(|c| c.is_ascii_hexdigit()) {
        return Response::error(400, "bad-fingerprint", "fingerprint must be 32 hex digits");
    }
    let Some(stored) = shared.scheduler.stored_result(fingerprint) else {
        return Response::error(404, "unknown-result", "no stored result for this fingerprint");
    };
    let tag = etag(fingerprint);
    if if_none_match(req, &tag) {
        return Response::new(304).header("ETag", &tag);
    }
    let Some(table) = req.query_param("table") else {
        return Response::json(200, &stored).header("ETag", &tag);
    };
    if table.is_empty() || !table.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.')) {
        return Response::error(400, "bad-table", "table must be a plain file stem");
    }
    let (extension, content_type) = match req.query_param("format").unwrap_or("csv") {
        "csv" => ("csv", "text/csv"),
        "json" => ("json", "application/json"),
        other => {
            return Response::error(400, "bad-format", &format!("unknown format '{other}'"));
        }
    };
    let path = shared
        .scheduler
        .job_dir(fingerprint)
        .join(RESULT_DIR)
        .join(format!("{table}.{extension}"));
    match std::fs::read(&path) {
        Ok(bytes) => Response::new(200)
            .header("Content-Type", content_type)
            .header("ETag", &tag)
            .with_body(bytes),
        Err(_) => Response::error(404, "unknown-table", &format!("no table '{table}'")),
    }
}

/// `GET /v1/store/sessions`: the content-addressed store's sessions.
fn sessions_response(shared: &Arc<Shared>) -> Response {
    let Some(root) = &shared.cache_root else {
        return Response::json(200, &Value::Array(Vec::new()));
    };
    let store = ResultStore::new(root.clone());
    let sessions: Vec<Value> = store
        .sessions()
        .into_iter()
        .filter_map(|key| store.summary(key))
        .map(|s| {
            Value::Object(vec![
                ("key".to_string(), Value::String(s.key.to_hex())),
                ("cells".to_string(), Value::Number(s.cells as f64)),
                ("has_clean".to_string(), Value::Bool(s.has_clean)),
            ])
        })
        .collect();
    Response::json(200, &Value::Array(sessions))
}

fn etag(fingerprint: &str) -> String {
    format!("\"{fingerprint}\"")
}

/// `true` when the request's `If-None-Match` matches `tag` (quoted or
/// bare, `*` matches anything).
fn if_none_match(req: &Request, tag: &str) -> bool {
    req.header("if-none-match").is_some_and(|raw| {
        raw.split(',')
            .map(str::trim)
            .any(|candidate| candidate == "*" || candidate == tag || candidate == tag.trim_matches('"'))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(method: &str, path: &str) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            query: Vec::new(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn test_shared(tag: &str) -> (Arc<Shared>, PathBuf) {
        let dir = std::env::temp_dir().join(format!("ftclipd-svc-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let settings = RunSettings {
            cache_root: Some(dir.join("cache")),
            assets_dir: dir.join("assets"),
            ..RunSettings::default()
        };
        let scheduler = Scheduler::new(dir.clone(), settings);
        (
            Arc::new(Shared {
                scheduler,
                workers: 2,
                threads: 4,
                cache_root: Some(dir.join("cache")),
                admin_token: None,
            }),
            dir,
        )
    }

    fn status_of(handled: Handled) -> u16 {
        match handled {
            Handled::Reply(r) => r.status,
            Handled::Events(_) => panic!("expected a plain reply"),
        }
    }

    #[test]
    fn routing_covers_the_surface() {
        let (shared, dir) = test_shared("routes");
        assert_eq!(status_of(dispatch(&shared, &req("GET", "/healthz"))), 200);
        assert_eq!(status_of(dispatch(&shared, &req("GET", "/v1/metrics"))), 200);
        assert_eq!(status_of(dispatch(&shared, &req("GET", "/v1/jobs"))), 200);
        assert_eq!(status_of(dispatch(&shared, &req("GET", "/v1/jobs/job-9"))), 404);
        assert_eq!(status_of(dispatch(&shared, &req("DELETE", "/v1/jobs/job-9"))), 404);
        assert_eq!(status_of(dispatch(&shared, &req("GET", "/v1/jobs/job-9/events"))), 404);
        assert_eq!(status_of(dispatch(&shared, &req("GET", "/v1/results/zz"))), 400);
        assert_eq!(
            status_of(dispatch(&shared, &req("GET", "/v1/results/0123456789abcdef0123456789abcdef"))),
            404
        );
        assert_eq!(status_of(dispatch(&shared, &req("GET", "/v1/store/sessions"))), 200);
        assert_eq!(status_of(dispatch(&shared, &req("GET", "/nowhere"))), 404);
        assert_eq!(status_of(dispatch(&shared, &req("PUT", "/v1/jobs"))), 405);
        // bad spec bodies are 400s with the typed message
        let mut post = req("POST", "/v1/specs");
        post.body = br#"{"name": "x"}"#.to_vec();
        match dispatch(&shared, &post) {
            Handled::Reply(r) => {
                assert_eq!(r.status, 400);
                assert!(String::from_utf8_lossy(&r.body).contains("procedure"), "{:?}", r.body);
            }
            Handled::Events(_) => panic!("expected reply"),
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn if_none_match_accepts_quoted_bare_and_star() {
        let tag = "\"abc\"";
        let mut r = req("GET", "/");
        assert!(!if_none_match(&r, tag));
        r.headers = vec![("if-none-match".to_string(), "\"abc\"".to_string())];
        assert!(if_none_match(&r, tag));
        r.headers = vec![("if-none-match".to_string(), "abc".to_string())];
        assert!(if_none_match(&r, tag));
        r.headers = vec![("if-none-match".to_string(), "\"zzz\", *".to_string())];
        assert!(if_none_match(&r, tag));
        r.headers = vec![("if-none-match".to_string(), "\"zzz\"".to_string())];
        assert!(!if_none_match(&r, tag));
    }

    #[test]
    fn submissions_during_shutdown_are_rejected() {
        let (shared, dir) = test_shared("shutdown");
        shared.scheduler.request_shutdown();
        let mut post = req("POST", "/v1/specs");
        post.body = br#"{"name": "x", "procedure": "model-sizes"}"#.to_vec();
        assert_eq!(status_of(dispatch(&shared, &post)), 503);
        std::fs::remove_dir_all(dir).ok();
    }
}
