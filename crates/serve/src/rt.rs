//! A minimal poll-based async runtime, in the same offline-shim spirit as
//! `shims/`: no epoll, no `unsafe`, no dependencies — just non-blocking I/O
//! plus a single-threaded executor that re-polls pending tasks every tick.
//!
//! The design trades syscall-level readiness wake-ups for simplicity:
//!
//! * Futures that would block return [`Poll::Pending`] (after arranging
//!   nothing — there is no reactor to register with).
//! * The [`Executor`] polls **every** live task once per [`Executor::tick`].
//!   A tick in which no task made progress tells the caller to sleep
//!   briefly (the accept loop uses ~0.5 ms), bounding idle CPU while
//!   keeping worst-case latency far below human-visible.
//! * Wakers are real (built on the stable [`std::task::Wake`]) and cut the
//!   idle sleep short when fired from another thread, but correctness never
//!   depends on them: a lost wake-up costs one sleep interval, not a hang.
//!
//! This is exactly enough runtime for `ftclipd`'s connection handlers —
//! tens of concurrent keep-alive sockets around a CPU-bound job pool — and
//! deliberately nothing more.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

/// The shared wake flag behind every task's [`Waker`]: waking marks the
/// executor "hot" so the next idle sleep is skipped.
#[derive(Debug, Default)]
struct WakeFlag {
    woken: AtomicBool,
}

impl Wake for WakeFlag {
    fn wake(self: Arc<Self>) {
        self.woken.store(true, Ordering::Release);
    }
}

/// A single-threaded, poll-everything executor for `'static` futures.
///
/// Tasks are spawned with [`Executor::spawn`] and driven by repeated
/// [`Executor::tick`] calls from the owning thread (the server's
/// accept/event loop). Completed tasks are dropped; panics in a task
/// propagate to the caller of `tick` (a connection handler that panics is
/// a bug, not a recoverable condition).
pub struct Executor {
    tasks: Vec<Pin<Box<dyn Future<Output = ()>>>>,
    flag: Arc<WakeFlag>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor").field("tasks", &self.tasks.len()).finish()
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::new()
    }
}

impl Executor {
    /// An executor with no tasks.
    pub fn new() -> Self {
        Executor { tasks: Vec::new(), flag: Arc::new(WakeFlag::default()) }
    }

    /// Adds a task. It is first polled on the next [`Executor::tick`].
    pub fn spawn(&mut self, future: impl Future<Output = ()> + 'static) {
        self.tasks.push(Box::pin(future));
    }

    /// Number of live (not yet completed) tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Polls every live task once. Returns `true` when the tick made
    /// progress — a task completed, or a waker fired since the last tick —
    /// meaning the caller should tick again immediately instead of
    /// sleeping.
    pub fn tick(&mut self) -> bool {
        let woken = self.flag.woken.swap(false, Ordering::AcqRel);
        let before = self.tasks.len();
        let waker = Waker::from(self.flag.clone());
        let mut cx = Context::from_waker(&waker);
        self.tasks.retain_mut(|task| task.as_mut().poll(&mut cx).is_pending());
        let completed = before - self.tasks.len();
        woken || completed > 0
    }

    /// Runs tasks until none remain, sleeping `idle` between unproductive
    /// ticks. Intended for tests and tools; the server composes `tick` with
    /// its accept loop instead.
    pub fn run_to_completion(&mut self, idle: std::time::Duration) {
        while !self.tasks.is_empty() {
            if !self.tick() {
                std::thread::sleep(idle);
            }
        }
    }
}

/// A future that yields to the executor exactly once, then completes.
///
/// Inside handler loops this is the "try again next tick" primitive: await
/// it whenever the resource you poll (a socket, a job's event log) has
/// nothing new.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Future returned by [`yield_now`].
#[derive(Debug)]
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            // make the next tick count as progress so back-to-back yields
            // in a busy handler do not trigger the idle sleep
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;

    #[test]
    fn tasks_run_to_completion_across_ticks() {
        let mut ex = Executor::new();
        let hits = Rc::new(Cell::new(0));
        for _ in 0..3 {
            let hits = hits.clone();
            ex.spawn(async move {
                yield_now().await;
                yield_now().await;
                hits.set(hits.get() + 1);
            });
        }
        assert_eq!(ex.task_count(), 3);
        ex.run_to_completion(std::time::Duration::from_micros(10));
        assert_eq!(hits.get(), 3);
        assert_eq!(ex.task_count(), 0);
    }

    #[test]
    fn completion_counts_as_progress() {
        let mut ex = Executor::new();
        ex.spawn(async {});
        assert!(ex.tick(), "a completing task is progress");
        assert!(!ex.tick(), "an empty executor makes no progress");
    }

    #[test]
    fn cross_thread_wake_marks_the_next_tick_hot() {
        let mut ex = Executor::new();
        // stash the waker a pending task receives, then fire it from a thread
        let waker_slot: Rc<Cell<Option<Waker>>> = Rc::new(Cell::new(None));
        struct Stash(Rc<Cell<Option<Waker>>>, bool);
        impl Future for Stash {
            type Output = ();
            fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                if self.1 {
                    return Poll::Ready(());
                }
                self.1 = true;
                self.0.set(Some(cx.waker().clone()));
                Poll::Pending
            }
        }
        ex.spawn(Stash(waker_slot.clone(), false));
        assert!(!ex.tick(), "first poll pends without progress");
        let waker = waker_slot.take().unwrap();
        std::thread::spawn(move || waker.wake()).join().unwrap();
        assert!(ex.tick(), "the wake must mark the tick as progress");
        assert_eq!(ex.task_count(), 0);
    }
}
