//! The campaign job scheduler behind `ftclipd`.
//!
//! A [`Scheduler`] owns a FIFO-within-priority queue of validated
//! [`ExperimentSpec`]s, deduplicated by spec fingerprint:
//!
//! * a spec whose result is already on disk is a **cache hit** — no job is
//!   created, the stored result is the answer;
//! * a spec equal to a live (queued or running) job **coalesces** onto that
//!   job instead of queueing a duplicate;
//! * anything else becomes a new [`Job`], persisted under
//!   `<state>/jobs/<fingerprint>/` *before* it is queued, so a crash at any
//!   point leaves a resumable record.
//!
//! Worker threads (the server decides how many) pop the highest-priority,
//! oldest job and execute it under their share of the process thread
//! budget (`ftclip_tensor::with_thread_limit`). Progress and cancellation
//! ride the [`CampaignObserver`] side channel: every completed campaign
//! cell appends an NDJSON event to the job (adaptive campaigns also emit a
//! `rate_converged` event per retired rate), and cancellation unwinds the
//! campaign with [`CancelledCampaign`] at a cell boundary — the
//! content-addressed store keeps every cell already paid for, so a
//! cancelled or crashed campaign resumes bit-identically.
//!
//! Job records are the only state that grows without bound: every distinct
//! spec leaves a `<state>/jobs/<fingerprint>/` directory behind forever.
//! [`Scheduler::set_keep_jobs`] caps that — after each job reaches a
//! terminal state (and once at boot) the scheduler deletes the oldest
//! **terminal** job directories beyond the cap. The campaign-cell store is
//! never touched: evicting a job record only costs re-assembling tables
//! from cells that stay cached.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use ftclip_bench::{ExperimentSpec, RunOutcome, RunSettings, Runner, SpecError};
use ftclip_fault::{with_observer, CampaignObserver, CancelledCampaign};
use serde::Value;

/// Spec file inside a job directory (written before the job is queued).
pub const SPEC_FILE: &str = "spec.json";
/// Submission metadata (priority) next to the spec.
pub const META_FILE: &str = "meta.json";
/// Completion marker: its presence makes the fingerprint a cache hit.
pub const DONE_FILE: &str = "done.json";
/// Failure marker with the spec error.
pub const ERROR_FILE: &str = "error.json";
/// Cancellation marker (explicit `DELETE`, not a crash).
pub const CANCELLED_FILE: &str = "cancelled.json";
/// Buffered human-readable report of a completed job.
pub const REPORT_FILE: &str = "report.txt";
/// Result tables subdirectory of a job directory.
pub const RESULT_DIR: &str = "result";

/// Lifecycle state of a [`Job`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the queue.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished; result persisted under the job directory.
    Completed,
    /// Rejected or failed with a [`SpecError`].
    Failed,
    /// Cancelled by request.
    Cancelled,
}

impl JobStatus {
    /// The wire name used in JSON responses and events.
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Completed => "completed",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
        }
    }
}

/// One submitted experiment: the spec, its identity, and its event log.
#[derive(Debug)]
pub struct Job {
    id: u64,
    /// The validated spec this job runs.
    pub spec: ExperimentSpec,
    /// The spec fingerprint as 32 hex digits — the job's storage address
    /// and result ETag.
    pub fingerprint: String,
    /// Scheduling priority, 0–9; higher runs first.
    pub priority: u8,
    seq: u64,
    status: Mutex<JobStatus>,
    terminal: AtomicBool,
    cancel: AtomicBool,
    events: Mutex<Vec<String>>,
    cells_done: AtomicUsize,
}

impl Job {
    /// The job's public identifier (`job-<n>`).
    pub fn id_str(&self) -> String {
        format!("job-{}", self.id)
    }

    /// Current lifecycle state.
    pub fn status(&self) -> JobStatus {
        *self.status.lock().expect("job status lock")
    }

    /// `true` once the job reached a terminal state (completed, failed or
    /// cancelled). Event streams finish when this flips.
    pub fn is_terminal(&self) -> bool {
        self.terminal.load(Ordering::Acquire)
    }

    /// Number of campaign cells reported so far.
    pub fn cells_done(&self) -> usize {
        self.cells_done.load(Ordering::Relaxed)
    }

    /// Marks the job for cooperative cancellation; the campaign unwinds at
    /// the next cell boundary.
    pub fn request_cancel(&self) {
        self.cancel.store(true, Ordering::Release);
    }

    /// The NDJSON event lines from index `from` on (each line includes its
    /// trailing newline).
    pub fn events_from(&self, from: usize) -> Vec<String> {
        let events = self.events.lock().expect("job events lock");
        events.get(from..).map(<[String]>::to_vec).unwrap_or_default()
    }

    /// The job as a JSON summary (the `/v1/jobs` representation).
    pub fn describe(&self) -> Value {
        Value::Object(vec![
            ("id".to_string(), Value::String(self.id_str())),
            ("name".to_string(), Value::String(self.spec.name.clone())),
            ("procedure".to_string(), Value::String(self.spec.procedure.to_string())),
            ("fingerprint".to_string(), Value::String(self.fingerprint.clone())),
            ("status".to_string(), Value::String(self.status().as_str().to_string())),
            ("priority".to_string(), Value::Number(f64::from(self.priority))),
            ("cells_done".to_string(), Value::Number(self.cells_done() as f64)),
        ])
    }

    fn push_event(&self, fields: Vec<(String, Value)>) {
        let mut line = serde_json::to_string(&Value::Object(fields)).expect("event rendering");
        line.push('\n');
        self.events.lock().expect("job events lock").push(line);
    }

    fn set_status(&self, status: JobStatus) {
        *self.status.lock().expect("job status lock") = status;
        if !matches!(status, JobStatus::Queued | JobStatus::Running) {
            self.terminal.store(true, Ordering::Release);
        }
    }
}

/// Scheduler counters, all monotonic except `queue_depth`.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Specs accepted as new jobs.
    pub jobs_submitted: AtomicUsize,
    /// Jobs a worker actually started executing (the probe's
    /// no-recomputation assertion watches this one).
    pub jobs_executed: AtomicUsize,
    /// Jobs that completed successfully.
    pub jobs_completed: AtomicUsize,
    /// Jobs that failed with a spec error.
    pub jobs_failed: AtomicUsize,
    /// Jobs cancelled by request.
    pub jobs_cancelled: AtomicUsize,
    /// Submissions answered from a stored result, no job created.
    pub cache_hits: AtomicUsize,
    /// Submissions coalesced onto an already-live identical job.
    pub coalesced: AtomicUsize,
    /// Current queue length.
    pub queue_depth: AtomicUsize,
}

/// A point-in-time copy of the [`Metrics`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // field names mirror Metrics, documented there
pub struct MetricsSnapshot {
    pub jobs_submitted: usize,
    pub jobs_executed: usize,
    pub jobs_completed: usize,
    pub jobs_failed: usize,
    pub jobs_cancelled: usize,
    pub cache_hits: usize,
    pub coalesced: usize,
    pub queue_depth: usize,
}

impl Metrics {
    /// Copies every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_executed: self.jobs_executed.load(Ordering::Relaxed),
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            jobs_cancelled: self.jobs_cancelled.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
        }
    }
}

/// How [`Scheduler::submit`] resolved a spec.
#[derive(Debug)]
pub enum Submission {
    /// The result is already stored — no job was created.
    CachedResult {
        /// The spec fingerprint addressing the stored result.
        fingerprint: String,
    },
    /// An identical job is already queued or running; this is it.
    Existing(Arc<Job>),
    /// A new job was created and queued.
    Queued(Arc<Job>),
}

#[derive(Default)]
struct SchedState {
    queue: Vec<Arc<Job>>,
    jobs: Vec<Arc<Job>>,
    live_by_fp: HashMap<String, Arc<Job>>,
}

/// The job table, queue and worker entry points. Shared via `Arc` between
/// the HTTP layer and the worker threads.
pub struct Scheduler {
    state_dir: PathBuf,
    base_settings: RunSettings,
    state: Mutex<SchedState>,
    cv: Condvar,
    next_seq: AtomicU64,
    shutdown: AtomicBool,
    abandon: Arc<AtomicBool>,
    /// Terminal job directories to retain (`usize::MAX` = keep everything).
    keep_jobs: AtomicUsize,
    /// The service counters.
    pub metrics: Metrics,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("state_dir", &self.state_dir)
            .finish_non_exhaustive()
    }
}

impl Scheduler {
    /// A scheduler persisting under `state_dir`, running jobs with
    /// `base_settings` (each job overrides `out_dir` to its own result
    /// directory; the cache root and assets directory are shared, so jobs
    /// reuse each other's campaign cells and trained models).
    pub fn new(state_dir: PathBuf, base_settings: RunSettings) -> Arc<Self> {
        std::fs::create_dir_all(state_dir.join("jobs")).ok();
        Arc::new(Scheduler {
            state_dir,
            base_settings,
            state: Mutex::new(SchedState::default()),
            cv: Condvar::new(),
            next_seq: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            abandon: Arc::new(AtomicBool::new(false)),
            keep_jobs: AtomicUsize::new(usize::MAX),
            metrics: Metrics::default(),
        })
    }

    /// Caps the number of **terminal** job directories kept on disk.
    /// `None` (the default) keeps everything. The cap is enforced once per
    /// terminal transition and whenever [`Scheduler::gc_terminal_jobs`]
    /// runs; live (queued or running) jobs and the campaign-cell store are
    /// never evicted.
    pub fn set_keep_jobs(&self, keep: Option<usize>) {
        self.keep_jobs.store(keep.unwrap_or(usize::MAX), Ordering::Relaxed);
    }

    /// Deletes the oldest terminal job directories beyond the
    /// [`Scheduler::set_keep_jobs`] cap. Returns how many were removed.
    ///
    /// Only directories under `<state>/jobs/` carrying a completion,
    /// failure or cancellation marker are candidates: unfinished jobs (the
    /// crash-resume inventory) and any fingerprint that is live again
    /// (resubmitted after a cancellation) are always kept, and the
    /// campaign-cell store lives elsewhere entirely. "Oldest" is by the
    /// terminal marker's modification time, so the records that survive
    /// are the ones most recently finished — the ones `GET /v1/results`
    /// clients are most likely to still want.
    pub fn gc_terminal_jobs(&self) -> usize {
        let st = self.state.lock().expect("scheduler lock");
        self.gc_locked(&st)
    }

    fn gc_locked(&self, st: &SchedState) -> usize {
        let keep = self.keep_jobs.load(Ordering::Relaxed);
        if keep == usize::MAX {
            return 0;
        }
        let Ok(entries) = std::fs::read_dir(self.state_dir.join("jobs")) else { return 0 };
        let mut terminal: Vec<(std::time::SystemTime, String, PathBuf)> = Vec::new();
        for entry in entries.flatten() {
            let dir = entry.path();
            let Some(name) = dir.file_name().map(|n| n.to_string_lossy().into_owned()) else {
                continue;
            };
            // a cancelled fingerprint may have been resubmitted: its dir
            // still carries the old marker, but the job is live again
            if st.live_by_fp.contains_key(&name) {
                continue;
            }
            let marker = [DONE_FILE, ERROR_FILE, CANCELLED_FILE]
                .iter()
                .map(|m| dir.join(m))
                .find(|p| p.is_file());
            let Some(marker) = marker else { continue };
            let finished = marker
                .metadata()
                .and_then(|m| m.modified())
                .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            terminal.push((finished, name, dir));
        }
        if terminal.len() <= keep {
            return 0;
        }
        // newest first; fingerprint breaks mtime ties deterministically
        terminal.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        let mut removed = 0;
        for (_, _, dir) in terminal.drain(keep..) {
            if std::fs::remove_dir_all(&dir).is_ok() {
                removed += 1;
            }
        }
        removed
    }

    /// The persistent directory of the given fingerprint's job.
    pub fn job_dir(&self, fingerprint: &str) -> PathBuf {
        self.state_dir.join("jobs").join(fingerprint)
    }

    /// Where the given fingerprint's result tables live.
    pub fn result_dir(&self, fingerprint: &str) -> PathBuf {
        self.job_dir(fingerprint).join(RESULT_DIR)
    }

    /// The stored completion record, if the fingerprint has one.
    pub fn stored_result(&self, fingerprint: &str) -> Option<Value> {
        let text = std::fs::read_to_string(self.job_dir(fingerprint).join(DONE_FILE)).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Submits a validated spec (see [`Submission`] for the outcomes).
    /// Persists new jobs before queueing them.
    pub fn submit(&self, spec: ExperimentSpec, priority: u8) -> Submission {
        let fingerprint = spec.fingerprint().key().to_hex();
        let mut st = self.state.lock().expect("scheduler lock");
        // the disk check lives under the lock: workers remove a finished
        // job from `live_by_fp` only after writing its DONE_FILE (also
        // under the lock), so exactly one of the two branches ever matches
        if self.job_dir(&fingerprint).join(DONE_FILE).is_file() {
            self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Submission::CachedResult { fingerprint };
        }
        if let Some(job) = st.live_by_fp.get(&fingerprint) {
            self.metrics.coalesced.fetch_add(1, Ordering::Relaxed);
            return Submission::Existing(job.clone());
        }

        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let job = Arc::new(Job {
            id: seq,
            spec,
            fingerprint: fingerprint.clone(),
            priority: priority.min(9),
            seq,
            status: Mutex::new(JobStatus::Queued),
            terminal: AtomicBool::new(false),
            cancel: AtomicBool::new(false),
            events: Mutex::new(Vec::new()),
            cells_done: AtomicUsize::new(0),
        });
        self.persist_submission(&job);
        job.push_event(vec![
            ("event".to_string(), Value::String("queued".to_string())),
            ("job".to_string(), Value::String(job.id_str())),
            ("name".to_string(), Value::String(job.spec.name.clone())),
            ("fingerprint".to_string(), Value::String(fingerprint.clone())),
        ]);
        st.queue.push(job.clone());
        st.jobs.push(job.clone());
        st.live_by_fp.insert(fingerprint, job.clone());
        self.metrics.jobs_submitted.fetch_add(1, Ordering::Relaxed);
        self.metrics.queue_depth.store(st.queue.len(), Ordering::Relaxed);
        drop(st);
        self.cv.notify_one();
        Submission::Queued(job)
    }

    /// Looks a job up by its `job-<n>` identifier.
    pub fn find_job(&self, id: &str) -> Option<Arc<Job>> {
        let st = self.state.lock().expect("scheduler lock");
        st.jobs.iter().find(|j| j.id_str() == id).cloned()
    }

    /// Every job this server life knows, in submission order.
    pub fn jobs(&self) -> Vec<Arc<Job>> {
        self.state.lock().expect("scheduler lock").jobs.clone()
    }

    /// Cancels a job. A queued job is removed and marked cancelled
    /// immediately; a running job unwinds at its next cell boundary.
    /// Returns `false` when the job already reached a terminal state.
    pub fn cancel(&self, job: &Arc<Job>) -> bool {
        let mut st = self.state.lock().expect("scheduler lock");
        match job.status() {
            JobStatus::Queued => {
                st.queue.retain(|j| j.seq != job.seq);
                self.metrics.queue_depth.store(st.queue.len(), Ordering::Relaxed);
                self.finish(&mut st, job, JobStatus::Cancelled);
                std::fs::write(self.job_dir(&job.fingerprint).join(CANCELLED_FILE), "{}\n").ok();
                job.push_event(vec![("event".to_string(), Value::String("cancelled".to_string()))]);
                self.metrics.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
                self.gc_locked(&st);
                true
            }
            JobStatus::Running => {
                job.request_cancel();
                true
            }
            _ => false,
        }
    }

    /// Re-queues every persisted job that never finished: a directory with
    /// a spec but no completion, failure or cancellation marker. Returns
    /// how many jobs were resumed. Call before starting workers.
    pub fn resume_from_disk(&self) -> usize {
        let jobs_root = self.state_dir.join("jobs");
        let Ok(entries) = std::fs::read_dir(&jobs_root) else { return 0 };
        let mut specs: Vec<(ExperimentSpec, u8)> = Vec::new();
        for entry in entries.flatten() {
            let dir = entry.path();
            if !dir.join(SPEC_FILE).is_file()
                || dir.join(DONE_FILE).is_file()
                || dir.join(ERROR_FILE).is_file()
                || dir.join(CANCELLED_FILE).is_file()
            {
                continue;
            }
            let Ok(text) = std::fs::read_to_string(dir.join(SPEC_FILE)) else { continue };
            let Ok(spec) = ExperimentSpec::from_json(&text) else { continue };
            let priority = std::fs::read_to_string(dir.join(META_FILE))
                .ok()
                .and_then(|t| serde_json::from_str(&t).ok())
                .and_then(|v: Value| v.get("priority").and_then(Value::as_u64))
                .map_or(5, |p| p.min(9) as u8);
            specs.push((spec, priority));
        }
        // deterministic resume order regardless of directory iteration
        specs.sort_by(|a, b| a.0.name.cmp(&b.0.name));
        let mut resumed = 0;
        for (spec, priority) in specs {
            if matches!(self.submit(spec, priority), Submission::Queued(_)) {
                resumed += 1;
            }
        }
        resumed
    }

    /// Graceful-shutdown signal: each worker finishes the job it has in
    /// hand and then exits. Jobs still queued stay persisted on disk and
    /// are re-enqueued by [`Scheduler::resume_from_disk`] on the next
    /// boot.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.cv.notify_all();
    }

    /// Crash-simulation signal: running campaigns unwind at their next
    /// cell boundary and workers exit **without persisting any job state**
    /// — exactly what `kill -9` would leave behind, minus the risk of
    /// tearing a file mid-write.
    pub fn request_abandon(&self) {
        self.abandon.store(true, Ordering::Release);
        self.shutdown.store(true, Ordering::Release);
        self.cv.notify_all();
    }

    /// `true` once shutdown (graceful or abandon) was requested.
    pub fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// `true` once crash-simulation abandon was requested.
    pub fn abandoning(&self) -> bool {
        self.abandon.load(Ordering::Acquire)
    }

    /// A worker thread's main loop: pop the best job, run it under
    /// `budget` threads, repeat until shutdown. Graceful shutdown stops
    /// **before** picking up another job — whatever is still queued stays
    /// persisted and resumable — while abandon additionally unwinds the
    /// job in flight at its next cell boundary.
    pub fn worker_loop(self: &Arc<Self>, budget: usize) {
        loop {
            let job = {
                let mut st = self.state.lock().expect("scheduler lock");
                loop {
                    if self.stopping() {
                        return;
                    }
                    if let Some(i) = best_index(&st.queue) {
                        let job = st.queue.remove(i);
                        self.metrics.queue_depth.store(st.queue.len(), Ordering::Relaxed);
                        break job;
                    }
                    // timed wait so flag flips are noticed even if a
                    // notification raced past before we started waiting
                    let (guard, _) =
                        self.cv.wait_timeout(st, Duration::from_millis(50)).expect("scheduler lock");
                    st = guard;
                }
            };
            self.run_job(&job, budget);
        }
    }

    fn run_job(&self, job: &Arc<Job>, budget: usize) {
        job.set_status(JobStatus::Running);
        job.push_event(vec![("event".to_string(), Value::String("started".to_string()))]);
        self.metrics.jobs_executed.fetch_add(1, Ordering::Relaxed);

        let settings = RunSettings {
            out_dir: self.result_dir(&job.fingerprint),
            ..self.base_settings.clone()
        };
        let runner = Runner::new(settings);
        let observer: Arc<dyn CampaignObserver> =
            Arc::new(JobProgress { job: job.clone(), abandon: self.abandon.clone() });
        let result = catch_unwind(AssertUnwindSafe(|| {
            with_observer(observer, || {
                ftclip_tensor::with_thread_limit(budget.max(1), || runner.run(&job.spec))
            })
        }));
        match result {
            Ok(Ok(outcome)) => self.complete_job(job, &outcome),
            Ok(Err(error)) => self.fail_job(job, &error),
            Err(payload) => {
                if payload.downcast_ref::<CancelledCampaign>().is_none() {
                    std::panic::resume_unwind(payload);
                }
                if self.abandoning() {
                    // crash simulation: leave the job exactly as a killed
                    // process would — spec persisted, no terminal marker,
                    // every completed cell already in the store
                    return;
                }
                let mut st = self.state.lock().expect("scheduler lock");
                std::fs::write(self.job_dir(&job.fingerprint).join(CANCELLED_FILE), "{}\n").ok();
                self.finish(&mut st, job, JobStatus::Cancelled);
                job.push_event(vec![("event".to_string(), Value::String("cancelled".to_string()))]);
                self.metrics.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
                self.gc_locked(&st);
            }
        }
    }

    fn complete_job(&self, job: &Arc<Job>, outcome: &RunOutcome) {
        let dir = self.job_dir(&job.fingerprint);
        std::fs::write(dir.join(REPORT_FILE), &outcome.report).ok();
        let tables: Vec<Value> = outcome
            .tables
            .iter()
            .filter_map(|p| p.file_stem())
            .map(|s| Value::String(s.to_string_lossy().into_owned()))
            .collect();
        let table_count = tables.len();
        let done = Value::Object(vec![
            ("name".to_string(), Value::String(outcome.name.clone())),
            ("fingerprint".to_string(), Value::String(job.fingerprint.clone())),
            ("tables".to_string(), Value::Array(tables)),
            (
                "failures".to_string(),
                Value::Array(outcome.failures.iter().map(|f| Value::String(f.clone())).collect()),
            ),
        ]);
        let mut st = self.state.lock().expect("scheduler lock");
        // DONE_FILE is written under the lock, making "stored result
        // exists" and "job is live" mutually exclusive for submitters
        let rendered = serde_json::to_string_pretty(&done).expect("render completion record");
        std::fs::write(dir.join(DONE_FILE), rendered).expect("persist job completion");
        self.finish(&mut st, job, JobStatus::Completed);
        job.push_event(vec![
            ("event".to_string(), Value::String("completed".to_string())),
            ("etag".to_string(), Value::String(format!("\"{}\"", job.fingerprint))),
            ("tables".to_string(), Value::Number(table_count as f64)),
            ("failures".to_string(), Value::Number(outcome.failures.len() as f64)),
        ]);
        self.metrics.jobs_completed.fetch_add(1, Ordering::Relaxed);
        self.gc_locked(&st);
    }

    fn fail_job(&self, job: &Arc<Job>, error: &SpecError) {
        let body = Value::Object(vec![("error".to_string(), Value::String(error.to_string()))]);
        if let Ok(rendered) = serde_json::to_string_pretty(&body) {
            std::fs::write(self.job_dir(&job.fingerprint).join(ERROR_FILE), rendered).ok();
        }
        let mut st = self.state.lock().expect("scheduler lock");
        self.finish(&mut st, job, JobStatus::Failed);
        job.push_event(vec![
            ("event".to_string(), Value::String("failed".to_string())),
            ("error".to_string(), Value::String(error.to_string())),
        ]);
        self.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
        self.gc_locked(&st);
    }

    fn finish(&self, st: &mut SchedState, job: &Arc<Job>, status: JobStatus) {
        job.set_status(status);
        st.live_by_fp.remove(&job.fingerprint);
    }

    fn persist_submission(&self, job: &Arc<Job>) {
        let dir = self.job_dir(&job.fingerprint);
        std::fs::create_dir_all(&dir).ok();
        std::fs::write(dir.join(SPEC_FILE), job.spec.to_json()).expect("persist job spec");
        let meta = Value::Object(vec![
            ("priority".to_string(), Value::Number(f64::from(job.priority))),
            ("name".to_string(), Value::String(job.spec.name.clone())),
        ]);
        if let Ok(rendered) = serde_json::to_string_pretty(&meta) {
            std::fs::write(dir.join(META_FILE), rendered).ok();
        }
    }
}

/// Highest priority first, FIFO (lowest sequence number) within a
/// priority.
fn best_index(queue: &[Arc<Job>]) -> Option<usize> {
    queue
        .iter()
        .enumerate()
        .min_by_key(|(_, j)| (std::cmp::Reverse(j.priority), j.seq))
        .map(|(i, _)| i)
}

/// The per-job [`CampaignObserver`]: appends cell events and answers the
/// executors' cancellation polls.
struct JobProgress {
    job: Arc<Job>,
    abandon: Arc<AtomicBool>,
}

impl CampaignObserver for JobProgress {
    fn on_cell(&self, record: &ftclip_fault::RunRecord, cached: bool) {
        let done = self.job.cells_done.fetch_add(1, Ordering::Relaxed) + 1;
        self.job.push_event(vec![
            ("event".to_string(), Value::String("cell".to_string())),
            ("rate_index".to_string(), Value::Number(record.rate_index as f64)),
            ("repetition".to_string(), Value::Number(record.repetition as f64)),
            ("fault_count".to_string(), Value::Number(record.fault_count as f64)),
            ("accuracy".to_string(), Value::Number(record.accuracy)),
            ("cached".to_string(), Value::Bool(cached)),
            ("cells_done".to_string(), Value::Number(done as f64)),
        ]);
    }

    fn on_clean(&self, accuracy: f64) {
        self.job.push_event(vec![
            ("event".to_string(), Value::String("clean".to_string())),
            ("accuracy".to_string(), Value::Number(accuracy)),
        ]);
    }

    fn on_rate_converged(&self, report: &ftclip_fault::RateConvergence) {
        // half_width can be +inf for degenerate samples; the shim renders
        // non-finite numbers as JSON null, which stream consumers treat as
        // "no interval"
        self.job.push_event(vec![
            ("event".to_string(), Value::String("rate_converged".to_string())),
            ("rate_index".to_string(), Value::Number(report.rate_index as f64)),
            ("reps_used".to_string(), Value::Number(report.reps_used as f64)),
            ("half_width".to_string(), Value::Number(report.half_width)),
            ("converged".to_string(), Value::Bool(report.converged)),
        ]);
    }

    fn cancel_requested(&self) -> bool {
        self.job.cancel.load(Ordering::Acquire) || self.abandon.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclip_bench::{Procedure, RateGrid};

    fn tiny_spec(name: &str) -> ExperimentSpec {
        let mut spec = ExperimentSpec::builder(Procedure::CampaignSummary, name)
            .rates(RateGrid::Absolute(vec![1e-4, 1e-3]))
            .repetitions(2)
            .eval_size(32)
            .build()
            .unwrap();
        spec.workload.epochs = 0;
        spec.workload.width_mult = 0.05;
        spec.data.train_size = 16;
        spec.data.val_size = 16;
        spec.data.test_size = 64;
        spec
    }

    fn temp_scheduler(tag: &str) -> (Arc<Scheduler>, PathBuf) {
        let dir = std::env::temp_dir().join(format!("ftclipd-jobs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let settings = RunSettings {
            cache_root: Some(dir.join("cache")),
            assets_dir: dir.join("assets"),
            ..RunSettings::default()
        };
        (Scheduler::new(dir.clone(), settings), dir)
    }

    #[test]
    fn priority_queue_is_fifo_within_priority() {
        let (sched, dir) = temp_scheduler("prio");
        let ids: Vec<String> = [("a", 5), ("b", 9), ("c", 5), ("d", 9)]
            .iter()
            .map(|(name, prio)| match sched.submit(tiny_spec(name), *prio) {
                Submission::Queued(job) => job.id_str(),
                other => panic!("expected fresh queue, got {other:?}"),
            })
            .collect();
        let mut popped = Vec::new();
        {
            let mut st = sched.state.lock().unwrap();
            while let Some(i) = best_index(&st.queue) {
                popped.push(st.queue.remove(i).id_str());
            }
        }
        // priority 9 first in submit order, then priority 5 in submit order
        assert_eq!(popped, vec![ids[1].clone(), ids[3].clone(), ids[0].clone(), ids[2].clone()]);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn identical_specs_coalesce_and_different_ones_do_not() {
        let (sched, dir) = temp_scheduler("dedup");
        let first = match sched.submit(tiny_spec("same"), 5) {
            Submission::Queued(job) => job,
            other => panic!("{other:?}"),
        };
        match sched.submit(tiny_spec("same"), 5) {
            Submission::Existing(job) => assert_eq!(job.id_str(), first.id_str()),
            other => panic!("expected coalescing, got {other:?}"),
        }
        assert!(matches!(sched.submit(tiny_spec("other"), 5), Submission::Queued(_)));
        let m = sched.metrics.snapshot();
        assert_eq!((m.jobs_submitted, m.coalesced, m.queue_depth), (2, 1, 2));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn queued_jobs_cancel_without_running_and_terminal_jobs_do_not() {
        let (sched, dir) = temp_scheduler("cancel");
        let job = match sched.submit(tiny_spec("x"), 5) {
            Submission::Queued(job) => job,
            other => panic!("{other:?}"),
        };
        assert!(sched.cancel(&job));
        assert_eq!(job.status(), JobStatus::Cancelled);
        assert!(job.is_terminal());
        assert!(!sched.cancel(&job), "terminal jobs cannot be re-cancelled");
        assert!(sched.job_dir(&job.fingerprint).join(CANCELLED_FILE).is_file());
        assert_eq!(sched.metrics.snapshot().queue_depth, 0);
        // the fingerprint is free again: resubmitting queues a fresh job
        assert!(matches!(sched.submit(tiny_spec("x"), 5), Submission::Queued(_)));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn submitted_jobs_are_persisted_and_resume_skips_terminal_dirs() {
        let (sched, dir) = temp_scheduler("resume");
        let job = match sched.submit(tiny_spec("r"), 7) {
            Submission::Queued(job) => job,
            other => panic!("{other:?}"),
        };
        assert!(sched.job_dir(&job.fingerprint).join(SPEC_FILE).is_file());
        let done = match sched.submit(tiny_spec("done"), 5) {
            Submission::Queued(job) => job,
            other => panic!("{other:?}"),
        };
        std::fs::write(sched.job_dir(&done.fingerprint).join(DONE_FILE), "{}\n").unwrap();

        // a second scheduler over the same state dir: only the unfinished
        // job comes back, with its persisted priority
        let settings = sched.base_settings.clone();
        let fresh = Scheduler::new(dir.clone(), settings);
        assert_eq!(fresh.resume_from_disk(), 1);
        let resumed = fresh.jobs();
        assert_eq!(resumed.len(), 1);
        assert_eq!(resumed[0].spec.name, "r");
        assert_eq!(resumed[0].priority, 7);
        // the finished fingerprint now answers as a cache hit
        assert!(matches!(fresh.submit(tiny_spec("done"), 5), Submission::CachedResult { .. }));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn adaptive_jobs_emit_rate_converged_events() {
        let (sched, dir) = temp_scheduler("adaptive");
        let mut spec = tiny_spec("adaptive");
        // a loose target so both rates retire at min_reps
        spec.stopping = Some(ftclip_fault::StoppingRule { target_half_width: 0.9, min_reps: 2, max_reps: 2 });
        let job = match sched.submit(spec, 5) {
            Submission::Queued(job) => job,
            other => panic!("{other:?}"),
        };
        let worker = {
            let sched = sched.clone();
            std::thread::spawn(move || sched.worker_loop(2))
        };
        while !job.is_terminal() {
            std::thread::sleep(Duration::from_millis(5));
        }
        sched.request_shutdown();
        worker.join().unwrap();
        assert_eq!(job.status(), JobStatus::Completed);
        let converged: Vec<Value> = job
            .events_from(0)
            .iter()
            .map(|l| serde_json::from_str(l.trim()).unwrap())
            .filter(|v| v.get("event").and_then(Value::as_str) == Some("rate_converged"))
            .collect();
        assert_eq!(converged.len(), 2, "one retirement per fault rate");
        for event in &converged {
            assert_eq!(event.get("reps_used").and_then(Value::as_u64), Some(2));
            assert!(event.get("half_width").is_some());
            assert_eq!(event.get("converged"), Some(&Value::Bool(true)));
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn retention_gc_evicts_only_old_terminal_records() {
        let (sched, dir) = temp_scheduler("gc");
        let mut cancelled = Vec::new();
        for name in ["a", "b", "c"] {
            let job = match sched.submit(tiny_spec(name), 5) {
                Submission::Queued(job) => job,
                other => panic!("{other:?}"),
            };
            assert!(sched.cancel(&job));
            cancelled.push(job);
            // stagger the marker mtimes so "oldest" is well defined
            std::thread::sleep(Duration::from_millis(15));
        }
        // a live job's dir has no terminal marker and must survive any cap
        let live = match sched.submit(tiny_spec("live"), 5) {
            Submission::Queued(job) => job,
            other => panic!("{other:?}"),
        };
        // resubmitting "a" makes its fingerprint live again even though the
        // old cancellation marker is still in the dir — it must survive too
        let resubmitted = match sched.submit(tiny_spec("a"), 5) {
            Submission::Queued(job) => job,
            other => panic!("{other:?}"),
        };
        assert_eq!(resubmitted.fingerprint, cancelled[0].fingerprint);

        // default cap keeps everything
        assert_eq!(sched.gc_terminal_jobs(), 0);
        sched.set_keep_jobs(Some(1));
        // terminal candidates are b and c (a is live again); keep newest
        assert_eq!(sched.gc_terminal_jobs(), 1);
        assert!(!sched.job_dir(&cancelled[1].fingerprint).exists(), "b is the oldest candidate");
        assert!(sched.job_dir(&cancelled[2].fingerprint).exists());
        assert!(sched.job_dir(&cancelled[0].fingerprint).exists());
        assert!(sched.job_dir(&live.fingerprint).join(SPEC_FILE).is_file());
        // idempotent once under the cap
        assert_eq!(sched.gc_terminal_jobs(), 0);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn finishing_a_job_enforces_the_retention_cap() {
        let (sched, dir) = temp_scheduler("gc-run");
        sched.set_keep_jobs(Some(1));
        let old = match sched.submit(tiny_spec("old"), 5) {
            Submission::Queued(job) => job,
            other => panic!("{other:?}"),
        };
        assert!(sched.cancel(&old));
        assert!(sched.job_dir(&old.fingerprint).exists(), "one terminal record fits the cap");
        std::thread::sleep(Duration::from_millis(15));

        let job = match sched.submit(tiny_spec("fresh"), 5) {
            Submission::Queued(job) => job,
            other => panic!("{other:?}"),
        };
        let worker = {
            let sched = sched.clone();
            std::thread::spawn(move || sched.worker_loop(2))
        };
        while !job.is_terminal() {
            std::thread::sleep(Duration::from_millis(5));
        }
        sched.request_shutdown();
        worker.join().unwrap();
        assert_eq!(job.status(), JobStatus::Completed);
        // completing the fresh job pushed the cancelled record over the cap
        assert!(!sched.job_dir(&old.fingerprint).exists());
        assert!(sched.job_dir(&job.fingerprint).join(DONE_FILE).is_file());
        // the campaign-cell store is never part of retention
        assert!(dir.join("cache").exists());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn worker_executes_jobs_and_emits_the_event_protocol() {
        let (sched, dir) = temp_scheduler("run");
        let job = match sched.submit(tiny_spec("w"), 5) {
            Submission::Queued(job) => job,
            other => panic!("{other:?}"),
        };
        let worker = {
            let sched = sched.clone();
            std::thread::spawn(move || sched.worker_loop(2))
        };
        while !job.is_terminal() {
            std::thread::sleep(Duration::from_millis(5));
        }
        sched.request_shutdown(); // worker is now idle; the signal ends it
        worker.join().unwrap();
        assert_eq!(job.status(), JobStatus::Completed);
        let events = job.events_from(0);
        let kinds: Vec<String> = events
            .iter()
            .map(|l| {
                let v: Value = serde_json::from_str(l.trim()).unwrap();
                v.get("event").and_then(Value::as_str).unwrap().to_string()
            })
            .collect();
        assert_eq!(kinds.first().map(String::as_str), Some("queued"));
        assert_eq!(kinds.get(1).map(String::as_str), Some("started"));
        assert_eq!(kinds.last().map(String::as_str), Some("completed"));
        assert!(kinds.iter().any(|k| k == "clean"), "{kinds:?}");
        // 2 rates × 2 repetitions
        assert_eq!(kinds.iter().filter(|k| *k == "cell").count(), 4);
        assert_eq!(job.cells_done(), 4);
        let stored = sched.stored_result(&job.fingerprint).expect("done.json");
        assert_eq!(stored.get("name").and_then(Value::as_str), Some("w"));
        // an identical submission is now a cache hit, executing nothing
        assert!(matches!(sched.submit(tiny_spec("w"), 5), Submission::CachedResult { .. }));
        let m = sched.metrics.snapshot();
        assert_eq!((m.jobs_executed, m.jobs_completed, m.cache_hits), (1, 1, 1));
        std::fs::remove_dir_all(dir).ok();
    }
}
