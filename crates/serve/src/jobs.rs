//! The campaign job scheduler behind `ftclipd`.
//!
//! A [`Scheduler`] owns a FIFO-within-priority queue of validated
//! [`ExperimentSpec`]s, deduplicated by spec fingerprint:
//!
//! * a spec whose result is already on disk is a **cache hit** — no job is
//!   created, the stored result is the answer;
//! * a spec equal to a live (queued or running) job **coalesces** onto that
//!   job instead of queueing a duplicate;
//! * anything else becomes a new [`Job`], persisted under
//!   `<state>/jobs/<fingerprint>/` *before* it is queued, so a crash at any
//!   point leaves a resumable record.
//!
//! Worker threads (the server decides how many) pop the highest-priority,
//! oldest job and execute it under their share of the process thread
//! budget (`ftclip_tensor::with_thread_limit`). Progress and cancellation
//! ride the [`CampaignObserver`] side channel: every completed campaign
//! cell appends an NDJSON event to the job (adaptive campaigns also emit a
//! `rate_converged` event per retired rate), and cancellation unwinds the
//! campaign with [`CancelledCampaign`] at a cell boundary — the
//! content-addressed store keeps every cell already paid for, so a
//! cancelled or crashed campaign resumes bit-identically.
//!
//! Job records are the only state that grows without bound: every distinct
//! spec leaves a `<state>/jobs/<fingerprint>/` directory behind forever.
//! [`Scheduler::set_keep_jobs`] caps that — after each job reaches a
//! terminal state (and once at boot) the scheduler deletes the oldest
//! **terminal** job directories beyond the cap. The campaign-cell store is
//! never touched: evicting a job record only costs re-assembling tables
//! from cells that stay cached.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use ftclip_bench::{ExperimentSpec, RunOutcome, RunSettings, Runner};
use ftclip_fault::{with_observer, CampaignObserver, CancelledCampaign};
use ftclip_store::write_atomic;
use ftclip_tensor::failpoint;
use serde::Value;

/// Poison-tolerant lock: a supervised worker panic (a failpoint, a bug in a
/// campaign cell) may poison any scheduler mutex; every guarded structure
/// here is consistent between operations, so recovery just takes the guard
/// instead of cascading the panic into whoever observes the job next.
fn plock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Spec file inside a job directory (written before the job is queued).
pub const SPEC_FILE: &str = "spec.json";
/// Submission metadata (priority) next to the spec.
pub const META_FILE: &str = "meta.json";
/// Completion marker: its presence makes the fingerprint a cache hit.
pub const DONE_FILE: &str = "done.json";
/// Failure marker with the spec error.
pub const ERROR_FILE: &str = "error.json";
/// Cancellation marker (explicit `DELETE`, not a crash).
pub const CANCELLED_FILE: &str = "cancelled.json";
/// Buffered human-readable report of a completed job.
pub const REPORT_FILE: &str = "report.txt";
/// Result tables subdirectory of a job directory.
pub const RESULT_DIR: &str = "result";

/// Lifecycle state of a [`Job`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the queue.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished; result persisted under the job directory.
    Completed,
    /// Failed: spec error, exhausted retries, or an expired deadline.
    Failed,
    /// Cancelled by request.
    Cancelled,
}

impl JobStatus {
    /// The wire name used in JSON responses and events.
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Completed => "completed",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
        }
    }
}

/// One submitted experiment: the spec, its identity, and its event log.
#[derive(Debug)]
pub struct Job {
    id: u64,
    /// The validated spec this job runs.
    pub spec: ExperimentSpec,
    /// The spec fingerprint as 32 hex digits — the job's storage address
    /// and result ETag.
    pub fingerprint: String,
    /// Scheduling priority, 0–9; higher runs first.
    pub priority: u8,
    seq: u64,
    status: Mutex<JobStatus>,
    terminal: AtomicBool,
    cancel: AtomicBool,
    events: Mutex<Vec<String>>,
    cells_done: AtomicUsize,
    /// Completed execution attempts (a supervised panic ends an attempt).
    attempts: AtomicUsize,
    /// Backoff gate: a retried job is not eligible to run before this.
    not_before: Mutex<Option<Instant>>,
    /// Optional wall-clock deadline; the campaign unwinds at the first cell
    /// boundary past it and the job fails with a `deadline` error.
    deadline: Option<Instant>,
}

impl Job {
    /// The job's public identifier (`job-<n>`).
    pub fn id_str(&self) -> String {
        format!("job-{}", self.id)
    }

    /// Current lifecycle state.
    pub fn status(&self) -> JobStatus {
        *plock(&self.status)
    }

    /// Completed execution attempts (0 until the first supervised retry).
    pub fn attempts(&self) -> usize {
        self.attempts.load(Ordering::Relaxed)
    }

    /// `true` once the job's wall-clock deadline has passed.
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    fn ready(&self, now: Instant) -> bool {
        plock(&self.not_before).is_none_or(|t| t <= now)
    }

    /// `true` once the job reached a terminal state (completed, failed or
    /// cancelled). Event streams finish when this flips.
    pub fn is_terminal(&self) -> bool {
        self.terminal.load(Ordering::Acquire)
    }

    /// Number of campaign cells reported so far.
    pub fn cells_done(&self) -> usize {
        self.cells_done.load(Ordering::Relaxed)
    }

    /// Marks the job for cooperative cancellation; the campaign unwinds at
    /// the next cell boundary.
    pub fn request_cancel(&self) {
        self.cancel.store(true, Ordering::Release);
    }

    /// The NDJSON event lines from index `from` on (each line includes its
    /// trailing newline).
    pub fn events_from(&self, from: usize) -> Vec<String> {
        let events = plock(&self.events);
        events.get(from..).map(<[String]>::to_vec).unwrap_or_default()
    }

    /// The job as a JSON summary (the `/v1/jobs` representation).
    pub fn describe(&self) -> Value {
        Value::Object(vec![
            ("id".to_string(), Value::String(self.id_str())),
            ("name".to_string(), Value::String(self.spec.name.clone())),
            ("procedure".to_string(), Value::String(self.spec.procedure.to_string())),
            ("fingerprint".to_string(), Value::String(self.fingerprint.clone())),
            ("status".to_string(), Value::String(self.status().as_str().to_string())),
            ("priority".to_string(), Value::Number(f64::from(self.priority))),
            ("cells_done".to_string(), Value::Number(self.cells_done() as f64)),
        ])
    }

    fn push_event(&self, fields: Vec<(String, Value)>) {
        // event rendering cannot realistically fail (all values are plain
        // scalars), but a worker thread must never panic over telemetry:
        // drop the event instead
        let Ok(mut line) = serde_json::to_string(&Value::Object(fields)) else { return };
        line.push('\n');
        plock(&self.events).push(line);
    }

    fn set_status(&self, status: JobStatus) {
        *plock(&self.status) = status;
        if !matches!(status, JobStatus::Queued | JobStatus::Running) {
            self.terminal.store(true, Ordering::Release);
        }
    }
}

/// Bounded jittered exponential backoff for supervised retries.
///
/// Attempt `n` (1-based) waits `base_delay × 2^(n−1)`, capped at
/// `max_delay`, scaled by a deterministic jitter factor in `[0.5, 1.0)`
/// derived from the job fingerprint and the attempt number — no wall clock,
/// no OS randomness, so chaos runs replay identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Supervised retries before a panicking job is marked failed
    /// (0 = fail on the first panic).
    pub max_retries: usize,
    /// Backoff for the first retry.
    pub base_delay: Duration,
    /// Upper bound on any single backoff delay.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_delay: Duration::from_millis(250),
            max_delay: Duration::from_secs(5),
        }
    }
}

impl RetryPolicy {
    /// The backoff delay before retry `attempt` (1-based) of `fingerprint`.
    pub fn delay(&self, fingerprint: &str, attempt: usize) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32.checked_shl(attempt.saturating_sub(1).min(16) as u32).unwrap_or(u32::MAX))
            .min(self.max_delay);
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for &b in fingerprint.as_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^= attempt as u64;
        h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
        let jitter = 0.5 + 0.5 * ((h >> 11) as f64 / (1u64 << 53) as f64);
        exp.mul_f64(jitter)
    }
}

/// Scheduler counters, all monotonic except `queue_depth`.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Specs accepted as new jobs.
    pub jobs_submitted: AtomicUsize,
    /// Jobs a worker actually started executing (the probe's
    /// no-recomputation assertion watches this one).
    pub jobs_executed: AtomicUsize,
    /// Jobs that completed successfully.
    pub jobs_completed: AtomicUsize,
    /// Jobs that failed with a spec error.
    pub jobs_failed: AtomicUsize,
    /// Jobs cancelled by request.
    pub jobs_cancelled: AtomicUsize,
    /// Submissions answered from a stored result, no job created.
    pub cache_hits: AtomicUsize,
    /// Submissions coalesced onto an already-live identical job.
    pub coalesced: AtomicUsize,
    /// Current queue length.
    pub queue_depth: AtomicUsize,
    /// Submissions rejected because the queue was at capacity (503).
    pub jobs_shed: AtomicUsize,
    /// Supervised re-queues after a worker panic.
    pub jobs_retried: AtomicUsize,
    /// Worker panics caught by supervision (each either retried or failed).
    pub jobs_panicked: AtomicUsize,
    /// Jobs failed because their wall-clock deadline expired.
    pub jobs_deadline_expired: AtomicUsize,
}

/// A point-in-time copy of the [`Metrics`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // field names mirror Metrics, documented there
pub struct MetricsSnapshot {
    pub jobs_submitted: usize,
    pub jobs_executed: usize,
    pub jobs_completed: usize,
    pub jobs_failed: usize,
    pub jobs_cancelled: usize,
    pub cache_hits: usize,
    pub coalesced: usize,
    pub queue_depth: usize,
    pub jobs_shed: usize,
    pub jobs_retried: usize,
    pub jobs_panicked: usize,
    pub jobs_deadline_expired: usize,
}

impl Metrics {
    /// Copies every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_executed: self.jobs_executed.load(Ordering::Relaxed),
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            jobs_cancelled: self.jobs_cancelled.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            jobs_shed: self.jobs_shed.load(Ordering::Relaxed),
            jobs_retried: self.jobs_retried.load(Ordering::Relaxed),
            jobs_panicked: self.jobs_panicked.load(Ordering::Relaxed),
            jobs_deadline_expired: self.jobs_deadline_expired.load(Ordering::Relaxed),
        }
    }
}

/// How [`Scheduler::submit`] resolved a spec.
#[derive(Debug)]
pub enum Submission {
    /// The result is already stored — no job was created.
    CachedResult {
        /// The spec fingerprint addressing the stored result.
        fingerprint: String,
    },
    /// An identical job is already queued or running; this is it.
    Existing(Arc<Job>),
    /// A new job was created and queued.
    Queued(Arc<Job>),
    /// The queue is at capacity; the caller should retry after the hint
    /// (served as `503` + `Retry-After` by the HTTP layer).
    Shed {
        /// Queue length at rejection time.
        queue_depth: usize,
        /// Suggested client back-off.
        retry_after: Duration,
    },
}

#[derive(Default)]
struct SchedState {
    queue: Vec<Arc<Job>>,
    jobs: Vec<Arc<Job>>,
    live_by_fp: HashMap<String, Arc<Job>>,
}

/// The job table, queue and worker entry points. Shared via `Arc` between
/// the HTTP layer and the worker threads.
pub struct Scheduler {
    state_dir: PathBuf,
    base_settings: RunSettings,
    state: Mutex<SchedState>,
    cv: Condvar,
    next_seq: AtomicU64,
    shutdown: AtomicBool,
    abandon: Arc<AtomicBool>,
    /// Terminal job directories to retain (`usize::MAX` = keep everything).
    keep_jobs: AtomicUsize,
    /// Queued jobs accepted before submissions shed (`usize::MAX` = unbounded).
    max_queue: AtomicUsize,
    /// Default wall-clock deadline applied to jobs submitted without one,
    /// in milliseconds (0 = none).
    default_deadline_ms: AtomicU64,
    /// Supervised-retry policy for panicking jobs.
    retry: Mutex<RetryPolicy>,
    /// The service counters.
    pub metrics: Metrics,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("state_dir", &self.state_dir)
            .finish_non_exhaustive()
    }
}

impl Scheduler {
    /// A scheduler persisting under `state_dir`, running jobs with
    /// `base_settings` (each job overrides `out_dir` to its own result
    /// directory; the cache root and assets directory are shared, so jobs
    /// reuse each other's campaign cells and trained models).
    pub fn new(state_dir: PathBuf, base_settings: RunSettings) -> Arc<Self> {
        std::fs::create_dir_all(state_dir.join("jobs")).ok();
        Arc::new(Scheduler {
            state_dir,
            base_settings,
            state: Mutex::new(SchedState::default()),
            cv: Condvar::new(),
            next_seq: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            abandon: Arc::new(AtomicBool::new(false)),
            keep_jobs: AtomicUsize::new(usize::MAX),
            max_queue: AtomicUsize::new(usize::MAX),
            default_deadline_ms: AtomicU64::new(0),
            retry: Mutex::new(RetryPolicy::default()),
            metrics: Metrics::default(),
        })
    }

    /// Caps the submission queue; submissions beyond the cap are
    /// [`Submission::Shed`]. `None` (the default) accepts everything.
    pub fn set_max_queue(&self, max: Option<usize>) {
        self.max_queue.store(max.unwrap_or(usize::MAX), Ordering::Relaxed);
    }

    /// Default wall-clock deadline for jobs submitted without an explicit
    /// one. `None` (the default) lets jobs run indefinitely.
    pub fn set_default_deadline(&self, deadline: Option<Duration>) {
        self.default_deadline_ms
            .store(deadline.map_or(0, |d| d.as_millis().min(u128::from(u64::MAX)) as u64), Ordering::Relaxed);
    }

    /// Replaces the supervised-retry policy for panicking jobs.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *plock(&self.retry) = policy;
    }

    /// The current supervised-retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        *plock(&self.retry)
    }

    /// Caps the number of **terminal** job directories kept on disk.
    /// `None` (the default) keeps everything. The cap is enforced once per
    /// terminal transition and whenever [`Scheduler::gc_terminal_jobs`]
    /// runs; live (queued or running) jobs and the campaign-cell store are
    /// never evicted.
    pub fn set_keep_jobs(&self, keep: Option<usize>) {
        self.keep_jobs.store(keep.unwrap_or(usize::MAX), Ordering::Relaxed);
    }

    /// Deletes the oldest terminal job directories beyond the
    /// [`Scheduler::set_keep_jobs`] cap. Returns how many were removed.
    ///
    /// Only directories under `<state>/jobs/` carrying a completion,
    /// failure or cancellation marker are candidates: unfinished jobs (the
    /// crash-resume inventory) and any fingerprint that is live again
    /// (resubmitted after a cancellation) are always kept, and the
    /// campaign-cell store lives elsewhere entirely. "Oldest" is by the
    /// terminal marker's modification time, so the records that survive
    /// are the ones most recently finished — the ones `GET /v1/results`
    /// clients are most likely to still want.
    pub fn gc_terminal_jobs(&self) -> usize {
        let st = plock(&self.state);
        self.gc_locked(&st)
    }

    fn gc_locked(&self, st: &SchedState) -> usize {
        let keep = self.keep_jobs.load(Ordering::Relaxed);
        if keep == usize::MAX {
            return 0;
        }
        let Ok(entries) = std::fs::read_dir(self.state_dir.join("jobs")) else { return 0 };
        let mut terminal: Vec<(std::time::SystemTime, String, PathBuf)> = Vec::new();
        for entry in entries.flatten() {
            let dir = entry.path();
            let Some(name) = dir.file_name().map(|n| n.to_string_lossy().into_owned()) else {
                continue;
            };
            // a cancelled fingerprint may have been resubmitted: its dir
            // still carries the old marker, but the job is live again
            if st.live_by_fp.contains_key(&name) {
                continue;
            }
            let marker = [DONE_FILE, ERROR_FILE, CANCELLED_FILE]
                .iter()
                .map(|m| dir.join(m))
                .find(|p| p.is_file());
            let Some(marker) = marker else { continue };
            let finished = marker
                .metadata()
                .and_then(|m| m.modified())
                .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            terminal.push((finished, name, dir));
        }
        if terminal.len() <= keep {
            return 0;
        }
        // newest first; fingerprint breaks mtime ties deterministically
        terminal.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        let mut removed = 0;
        for (_, _, dir) in terminal.drain(keep..) {
            if std::fs::remove_dir_all(&dir).is_ok() {
                removed += 1;
            }
        }
        removed
    }

    /// The persistent directory of the given fingerprint's job.
    pub fn job_dir(&self, fingerprint: &str) -> PathBuf {
        self.state_dir.join("jobs").join(fingerprint)
    }

    /// Where the given fingerprint's result tables live.
    pub fn result_dir(&self, fingerprint: &str) -> PathBuf {
        self.job_dir(fingerprint).join(RESULT_DIR)
    }

    /// The stored completion record, if the fingerprint has one.
    pub fn stored_result(&self, fingerprint: &str) -> Option<Value> {
        let text = std::fs::read_to_string(self.job_dir(fingerprint).join(DONE_FILE)).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Submits a validated spec (see [`Submission`] for the outcomes).
    /// Persists new jobs before queueing them. The scheduler's default
    /// deadline (if any) applies; [`Scheduler::submit_with_deadline`] takes
    /// an explicit one.
    pub fn submit(&self, spec: ExperimentSpec, priority: u8) -> Submission {
        self.submit_with_deadline(spec, priority, None)
    }

    /// [`Scheduler::submit`] with an explicit wall-clock deadline
    /// (overriding the scheduler default; `None` falls back to it).
    pub fn submit_with_deadline(
        &self,
        spec: ExperimentSpec,
        priority: u8,
        deadline: Option<Duration>,
    ) -> Submission {
        let fingerprint = spec.fingerprint().key().to_hex();
        let mut st = plock(&self.state);
        // the disk check lives under the lock: workers remove a finished
        // job from `live_by_fp` only after writing its DONE_FILE (also
        // under the lock), so exactly one of the two branches ever matches.
        // The record must *parse*: a torn marker from a crashed process is
        // not a result and falls through to queueing a fresh job.
        if self.stored_result(&fingerprint).is_some() {
            self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Submission::CachedResult { fingerprint };
        }
        if let Some(job) = st.live_by_fp.get(&fingerprint) {
            self.metrics.coalesced.fetch_add(1, Ordering::Relaxed);
            return Submission::Existing(job.clone());
        }
        let max_queue = self.max_queue.load(Ordering::Relaxed);
        if st.queue.len() >= max_queue {
            self.metrics.jobs_shed.fetch_add(1, Ordering::Relaxed);
            return Submission::Shed {
                queue_depth: st.queue.len(),
                retry_after: Duration::from_secs(1),
            };
        }

        let default_ms = self.default_deadline_ms.load(Ordering::Relaxed);
        let effective = deadline.or((default_ms > 0).then(|| Duration::from_millis(default_ms)));
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let job = Arc::new(Job {
            id: seq,
            spec,
            fingerprint: fingerprint.clone(),
            priority: priority.min(9),
            seq,
            status: Mutex::new(JobStatus::Queued),
            terminal: AtomicBool::new(false),
            cancel: AtomicBool::new(false),
            events: Mutex::new(Vec::new()),
            cells_done: AtomicUsize::new(0),
            attempts: AtomicUsize::new(0),
            not_before: Mutex::new(None),
            deadline: effective.map(|d| Instant::now() + d),
        });
        self.persist_submission(&job);
        job.push_event(vec![
            ("event".to_string(), Value::String("queued".to_string())),
            ("job".to_string(), Value::String(job.id_str())),
            ("name".to_string(), Value::String(job.spec.name.clone())),
            ("fingerprint".to_string(), Value::String(fingerprint.clone())),
        ]);
        st.queue.push(job.clone());
        st.jobs.push(job.clone());
        st.live_by_fp.insert(fingerprint, job.clone());
        self.metrics.jobs_submitted.fetch_add(1, Ordering::Relaxed);
        self.metrics.queue_depth.store(st.queue.len(), Ordering::Relaxed);
        drop(st);
        self.cv.notify_one();
        Submission::Queued(job)
    }

    /// Looks a job up by its `job-<n>` identifier.
    pub fn find_job(&self, id: &str) -> Option<Arc<Job>> {
        let st = plock(&self.state);
        st.jobs.iter().find(|j| j.id_str() == id).cloned()
    }

    /// Every job this server life knows, in submission order.
    pub fn jobs(&self) -> Vec<Arc<Job>> {
        plock(&self.state).jobs.clone()
    }

    /// Cancels a job. A queued job is removed and marked cancelled
    /// immediately; a running job unwinds at its next cell boundary.
    /// Returns `false` when the job already reached a terminal state.
    pub fn cancel(&self, job: &Arc<Job>) -> bool {
        let mut st = plock(&self.state);
        match job.status() {
            JobStatus::Queued => {
                st.queue.retain(|j| j.seq != job.seq);
                self.metrics.queue_depth.store(st.queue.len(), Ordering::Relaxed);
                self.finish(&mut st, job, JobStatus::Cancelled);
                write_atomic(&self.job_dir(&job.fingerprint).join(CANCELLED_FILE), b"{}\n").ok();
                job.push_event(vec![("event".to_string(), Value::String("cancelled".to_string()))]);
                self.metrics.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
                self.gc_locked(&st);
                true
            }
            JobStatus::Running => {
                job.request_cancel();
                true
            }
            _ => false,
        }
    }

    /// Re-queues every persisted job that never finished: a directory with
    /// a spec but no (valid) completion, failure or cancellation marker.
    /// Returns how many jobs were resumed. Call before starting workers.
    ///
    /// Partially written records from an abandoned process are repaired,
    /// never trusted and never fatal:
    ///
    /// * a terminal marker that does not parse as JSON (torn write) is set
    ///   aside as `<marker>.corrupt` and the job re-enqueues cleanly;
    /// * a job directory whose `spec.json` is missing or unreadable is
    ///   moved to `<state>/jobs-quarantine/` — boot continues without it.
    pub fn resume_from_disk(&self) -> usize {
        let jobs_root = self.state_dir.join("jobs");
        let Ok(entries) = std::fs::read_dir(&jobs_root) else { return 0 };
        let mut specs: Vec<(ExperimentSpec, u8)> = Vec::new();
        for entry in entries.flatten() {
            let dir = entry.path();
            if !dir.is_dir() {
                continue; // stray files (e.g. orphaned *.tmp) are not jobs
            }
            let mut terminal = false;
            for marker in [DONE_FILE, ERROR_FILE, CANCELLED_FILE] {
                let path = dir.join(marker);
                if !path.is_file() {
                    continue;
                }
                let parses = std::fs::read_to_string(&path)
                    .ok()
                    .and_then(|t| serde_json::from_str(&t).ok())
                    .map(|_: Value| ())
                    .is_some();
                if parses {
                    terminal = true;
                } else {
                    eprintln!(
                        "[jobs] torn terminal marker {}; setting it aside and re-enqueueing the job",
                        path.display()
                    );
                    std::fs::rename(&path, dir.join(format!("{marker}.corrupt"))).ok();
                }
            }
            if terminal {
                continue;
            }
            let spec = std::fs::read_to_string(dir.join(SPEC_FILE))
                .ok()
                .and_then(|text| ExperimentSpec::from_json(&text).ok());
            let Some(spec) = spec else {
                // no readable spec: not resumable, but not fatal either —
                // quarantine the directory so the damage stays inspectable
                // and the jobs dir stays clean
                let name = dir.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
                let qroot = self.state_dir.join("jobs-quarantine");
                std::fs::create_dir_all(&qroot).ok();
                if std::fs::rename(&dir, qroot.join(&name)).is_err() {
                    std::fs::remove_dir_all(&dir).ok();
                }
                eprintln!("[jobs] quarantined unreadable job record {name} (missing or torn spec.json)");
                continue;
            };
            let priority = std::fs::read_to_string(dir.join(META_FILE))
                .ok()
                .and_then(|t| serde_json::from_str(&t).ok())
                .and_then(|v: Value| v.get("priority").and_then(Value::as_u64))
                .map_or(5, |p| p.min(9) as u8);
            specs.push((spec, priority));
        }
        // deterministic resume order regardless of directory iteration
        specs.sort_by(|a, b| a.0.name.cmp(&b.0.name));
        let mut resumed = 0;
        for (spec, priority) in specs {
            if matches!(self.submit(spec, priority), Submission::Queued(_)) {
                resumed += 1;
            }
        }
        resumed
    }

    /// Graceful-shutdown signal: each worker finishes the job it has in
    /// hand and then exits. Jobs still queued stay persisted on disk and
    /// are re-enqueued by [`Scheduler::resume_from_disk`] on the next
    /// boot.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.cv.notify_all();
    }

    /// Crash-simulation signal: running campaigns unwind at their next
    /// cell boundary and workers exit **without persisting any job state**
    /// — exactly what `kill -9` would leave behind, minus the risk of
    /// tearing a file mid-write.
    pub fn request_abandon(&self) {
        self.abandon.store(true, Ordering::Release);
        self.shutdown.store(true, Ordering::Release);
        self.cv.notify_all();
    }

    /// `true` once shutdown (graceful or abandon) was requested.
    pub fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// `true` once crash-simulation abandon was requested.
    pub fn abandoning(&self) -> bool {
        self.abandon.load(Ordering::Acquire)
    }

    /// A worker thread's main loop: pop the best job, run it under
    /// `budget` threads, repeat until shutdown. Graceful shutdown stops
    /// **before** picking up another job — whatever is still queued stays
    /// persisted and resumable — while abandon additionally unwinds the
    /// job in flight at its next cell boundary.
    pub fn worker_loop(self: &Arc<Self>, budget: usize) {
        loop {
            let job = {
                let mut st = plock(&self.state);
                loop {
                    if self.stopping() {
                        return;
                    }
                    if let Some(i) = best_index(&st.queue, Instant::now()) {
                        let job = st.queue.remove(i);
                        self.metrics.queue_depth.store(st.queue.len(), Ordering::Relaxed);
                        break job;
                    }
                    // timed wait so flag flips (and jobs whose backoff gate
                    // opens) are noticed even if a notification raced past
                    // before we started waiting
                    let (guard, _) = self
                        .cv
                        .wait_timeout(st, Duration::from_millis(50))
                        .unwrap_or_else(PoisonError::into_inner);
                    st = guard;
                }
            };
            self.run_job(&job, budget);
        }
    }

    fn run_job(&self, job: &Arc<Job>, budget: usize) {
        if job.deadline_exceeded() {
            // expired while queued: fail without burning a worker on it
            self.metrics.jobs_deadline_expired.fetch_add(1, Ordering::Relaxed);
            self.fail_job(job, "deadline exceeded before the job started");
            return;
        }
        job.set_status(JobStatus::Running);
        job.push_event(vec![("event".to_string(), Value::String("started".to_string()))]);
        self.metrics.jobs_executed.fetch_add(1, Ordering::Relaxed);

        let settings = RunSettings {
            out_dir: self.result_dir(&job.fingerprint),
            ..self.base_settings.clone()
        };
        let runner = Runner::new(settings);
        let observer: Arc<dyn CampaignObserver> =
            Arc::new(JobProgress { job: job.clone(), abandon: self.abandon.clone() });
        let result = catch_unwind(AssertUnwindSafe(|| {
            // inside the closure so an injected panic exercises the same
            // supervision path a real campaign bug would
            failpoint::fires("serve.job");
            with_observer(observer, || {
                ftclip_tensor::with_thread_limit(budget.max(1), || runner.run(&job.spec))
            })
        }));
        match result {
            Ok(Ok(outcome)) => self.complete_job(job, &outcome),
            Ok(Err(error)) => self.fail_job(job, &error.to_string()),
            Err(payload) => {
                if payload.downcast_ref::<CancelledCampaign>().is_some() {
                    self.handle_unwound(job);
                } else {
                    // &*: coerce to the payload itself, not &Box-as-Any
                    // (the Box would fail every downcast)
                    self.handle_panic(job, &*payload);
                }
            }
        }
    }

    /// A campaign unwound cooperatively ([`CancelledCampaign`]): abandon
    /// simulation, an explicit cancel, or an expired deadline.
    fn handle_unwound(&self, job: &Arc<Job>) {
        if self.abandoning() {
            // crash simulation: leave the job exactly as a killed
            // process would — spec persisted, no terminal marker,
            // every completed cell already in the store
            return;
        }
        if !job.cancel.load(Ordering::Acquire) && job.deadline_exceeded() {
            self.metrics.jobs_deadline_expired.fetch_add(1, Ordering::Relaxed);
            self.fail_job(job, "deadline exceeded");
            return;
        }
        let mut st = plock(&self.state);
        write_atomic(&self.job_dir(&job.fingerprint).join(CANCELLED_FILE), b"{}\n").ok();
        self.finish(&mut st, job, JobStatus::Cancelled);
        job.push_event(vec![("event".to_string(), Value::String("cancelled".to_string()))]);
        self.metrics.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
        self.gc_locked(&st);
    }

    /// Supervision for a real panic out of the campaign: the worker slot
    /// survives, the job either re-queues with backoff or fails with the
    /// panic message in its event log — it never wedges.
    fn handle_panic(&self, job: &Arc<Job>, payload: &(dyn std::any::Any + Send)) {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panic with non-string payload".to_string());
        self.metrics.jobs_panicked.fetch_add(1, Ordering::Relaxed);
        let attempt = job.attempts.fetch_add(1, Ordering::Relaxed) + 1;
        let policy = self.retry_policy();
        if attempt <= policy.max_retries && !self.stopping() {
            let delay = policy.delay(&job.fingerprint, attempt);
            job.push_event(vec![
                ("event".to_string(), Value::String("retrying".to_string())),
                ("attempt".to_string(), Value::Number(attempt as f64)),
                ("delay_ms".to_string(), Value::Number(delay.as_millis() as f64)),
                ("error".to_string(), Value::String(message)),
            ]);
            *plock(&job.not_before) = Some(Instant::now() + delay);
            job.set_status(JobStatus::Queued);
            self.metrics.jobs_retried.fetch_add(1, Ordering::Relaxed);
            let mut st = plock(&self.state);
            st.queue.push(job.clone());
            self.metrics.queue_depth.store(st.queue.len(), Ordering::Relaxed);
            drop(st);
            self.cv.notify_one();
        } else {
            self.fail_job(job, &format!("panicked after {attempt} attempt(s): {message}"));
        }
    }

    fn complete_job(&self, job: &Arc<Job>, outcome: &RunOutcome) {
        let dir = self.job_dir(&job.fingerprint);
        std::fs::write(dir.join(REPORT_FILE), &outcome.report).ok();
        let tables: Vec<Value> = outcome
            .tables
            .iter()
            .filter_map(|p| p.file_stem())
            .map(|s| Value::String(s.to_string_lossy().into_owned()))
            .collect();
        let table_count = tables.len();
        let done = Value::Object(vec![
            ("name".to_string(), Value::String(outcome.name.clone())),
            ("fingerprint".to_string(), Value::String(job.fingerprint.clone())),
            ("tables".to_string(), Value::Array(tables)),
            (
                "failures".to_string(),
                Value::Array(outcome.failures.iter().map(|f| Value::String(f.clone())).collect()),
            ),
        ]);
        let mut st = plock(&self.state);
        // DONE_FILE is written under the lock, making "stored result
        // exists" and "job is live" mutually exclusive for submitters.
        // If the marker cannot be persisted (disk fault, injected or real)
        // the work is NOT a stored result: finish the job as failed so no
        // future submission is answered from a record that does not exist.
        let persisted = serde_json::to_string_pretty(&done)
            .map_err(std::io::Error::other)
            .and_then(|rendered| write_atomic(&dir.join(DONE_FILE), rendered.as_bytes()));
        if let Err(error) = persisted {
            drop(st);
            self.fail_job(job, &format!("completed but the result record could not be persisted: {error}"));
            return;
        }
        self.finish(&mut st, job, JobStatus::Completed);
        job.push_event(vec![
            ("event".to_string(), Value::String("completed".to_string())),
            ("etag".to_string(), Value::String(format!("\"{}\"", job.fingerprint))),
            ("tables".to_string(), Value::Number(table_count as f64)),
            ("failures".to_string(), Value::Number(outcome.failures.len() as f64)),
        ]);
        self.metrics.jobs_completed.fetch_add(1, Ordering::Relaxed);
        self.gc_locked(&st);
    }

    fn fail_job(&self, job: &Arc<Job>, error: &str) {
        let body = Value::Object(vec![("error".to_string(), Value::String(error.to_string()))]);
        if let Ok(rendered) = serde_json::to_string_pretty(&body) {
            write_atomic(&self.job_dir(&job.fingerprint).join(ERROR_FILE), rendered.as_bytes()).ok();
        }
        let mut st = plock(&self.state);
        self.finish(&mut st, job, JobStatus::Failed);
        job.push_event(vec![
            ("event".to_string(), Value::String("failed".to_string())),
            ("error".to_string(), Value::String(error.to_string())),
        ]);
        self.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
        self.gc_locked(&st);
    }

    fn finish(&self, st: &mut SchedState, job: &Arc<Job>, status: JobStatus) {
        job.set_status(status);
        st.live_by_fp.remove(&job.fingerprint);
    }

    fn persist_submission(&self, job: &Arc<Job>) {
        let dir = self.job_dir(&job.fingerprint);
        std::fs::create_dir_all(&dir).ok();
        // a resubmitted fingerprint (after a cancellation or failure) must
        // not look terminal to the next boot's resume scan
        for stale in [ERROR_FILE, CANCELLED_FILE] {
            std::fs::remove_file(dir.join(stale)).ok();
        }
        if let Err(error) = write_atomic(&dir.join(SPEC_FILE), job.spec.to_json().as_bytes()) {
            // the job still runs this server life; it just won't survive a
            // crash. Degrade (and say so) rather than take the service down.
            eprintln!("[jobs] could not persist spec for {}: {error}", job.fingerprint);
        }
        let meta = Value::Object(vec![
            ("priority".to_string(), Value::Number(f64::from(job.priority))),
            ("name".to_string(), Value::String(job.spec.name.clone())),
        ]);
        if let Ok(rendered) = serde_json::to_string_pretty(&meta) {
            write_atomic(&dir.join(META_FILE), rendered.as_bytes()).ok();
        }
    }
}

/// Highest priority first, FIFO (lowest sequence number) within a
/// priority; jobs inside their retry-backoff window are not eligible.
fn best_index(queue: &[Arc<Job>], now: Instant) -> Option<usize> {
    queue
        .iter()
        .enumerate()
        .filter(|(_, j)| j.ready(now))
        .min_by_key(|(_, j)| (std::cmp::Reverse(j.priority), j.seq))
        .map(|(i, _)| i)
}

/// The per-job [`CampaignObserver`]: appends cell events and answers the
/// executors' cancellation polls.
struct JobProgress {
    job: Arc<Job>,
    abandon: Arc<AtomicBool>,
}

impl CampaignObserver for JobProgress {
    fn on_cell(&self, record: &ftclip_fault::RunRecord, cached: bool) {
        // a chaos schedule can make any cell boundary panic; supervision
        // above catches it, so the site doubles as the worker-panic drill
        failpoint::fires("serve.cell");
        let done = self.job.cells_done.fetch_add(1, Ordering::Relaxed) + 1;
        self.job.push_event(vec![
            ("event".to_string(), Value::String("cell".to_string())),
            ("rate_index".to_string(), Value::Number(record.rate_index as f64)),
            ("repetition".to_string(), Value::Number(record.repetition as f64)),
            ("fault_count".to_string(), Value::Number(record.fault_count as f64)),
            ("accuracy".to_string(), Value::Number(record.accuracy)),
            ("cached".to_string(), Value::Bool(cached)),
            ("cells_done".to_string(), Value::Number(done as f64)),
        ]);
    }

    fn on_clean(&self, accuracy: f64) {
        self.job.push_event(vec![
            ("event".to_string(), Value::String("clean".to_string())),
            ("accuracy".to_string(), Value::Number(accuracy)),
        ]);
    }

    fn on_rate_converged(&self, report: &ftclip_fault::RateConvergence) {
        // half_width can be +inf for degenerate samples; the shim renders
        // non-finite numbers as JSON null, which stream consumers treat as
        // "no interval"
        self.job.push_event(vec![
            ("event".to_string(), Value::String("rate_converged".to_string())),
            ("rate_index".to_string(), Value::Number(report.rate_index as f64)),
            ("reps_used".to_string(), Value::Number(report.reps_used as f64)),
            ("half_width".to_string(), Value::Number(report.half_width)),
            ("converged".to_string(), Value::Bool(report.converged)),
        ]);
    }

    fn cancel_requested(&self) -> bool {
        self.job.cancel.load(Ordering::Acquire)
            || self.abandon.load(Ordering::Acquire)
            || self.job.deadline_exceeded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftclip_bench::{Procedure, RateGrid};

    fn tiny_spec(name: &str) -> ExperimentSpec {
        let mut spec = ExperimentSpec::builder(Procedure::CampaignSummary, name)
            .rates(RateGrid::Absolute(vec![1e-4, 1e-3]))
            .repetitions(2)
            .eval_size(32)
            .build()
            .unwrap();
        spec.workload.epochs = 0;
        spec.workload.width_mult = 0.05;
        spec.data.train_size = 16;
        spec.data.val_size = 16;
        spec.data.test_size = 64;
        spec
    }

    fn temp_scheduler(tag: &str) -> (Arc<Scheduler>, PathBuf) {
        let dir = std::env::temp_dir().join(format!("ftclipd-jobs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let settings = RunSettings {
            cache_root: Some(dir.join("cache")),
            assets_dir: dir.join("assets"),
            ..RunSettings::default()
        };
        (Scheduler::new(dir.clone(), settings), dir)
    }

    #[test]
    fn priority_queue_is_fifo_within_priority() {
        let (sched, dir) = temp_scheduler("prio");
        let ids: Vec<String> = [("a", 5), ("b", 9), ("c", 5), ("d", 9)]
            .iter()
            .map(|(name, prio)| match sched.submit(tiny_spec(name), *prio) {
                Submission::Queued(job) => job.id_str(),
                other => panic!("expected fresh queue, got {other:?}"),
            })
            .collect();
        let mut popped = Vec::new();
        {
            let mut st = sched.state.lock().unwrap();
            while let Some(i) = best_index(&st.queue, Instant::now()) {
                popped.push(st.queue.remove(i).id_str());
            }
        }
        // priority 9 first in submit order, then priority 5 in submit order
        assert_eq!(popped, vec![ids[1].clone(), ids[3].clone(), ids[0].clone(), ids[2].clone()]);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn identical_specs_coalesce_and_different_ones_do_not() {
        let (sched, dir) = temp_scheduler("dedup");
        let first = match sched.submit(tiny_spec("same"), 5) {
            Submission::Queued(job) => job,
            other => panic!("{other:?}"),
        };
        match sched.submit(tiny_spec("same"), 5) {
            Submission::Existing(job) => assert_eq!(job.id_str(), first.id_str()),
            other => panic!("expected coalescing, got {other:?}"),
        }
        assert!(matches!(sched.submit(tiny_spec("other"), 5), Submission::Queued(_)));
        let m = sched.metrics.snapshot();
        assert_eq!((m.jobs_submitted, m.coalesced, m.queue_depth), (2, 1, 2));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn queued_jobs_cancel_without_running_and_terminal_jobs_do_not() {
        let (sched, dir) = temp_scheduler("cancel");
        let job = match sched.submit(tiny_spec("x"), 5) {
            Submission::Queued(job) => job,
            other => panic!("{other:?}"),
        };
        assert!(sched.cancel(&job));
        assert_eq!(job.status(), JobStatus::Cancelled);
        assert!(job.is_terminal());
        assert!(!sched.cancel(&job), "terminal jobs cannot be re-cancelled");
        assert!(sched.job_dir(&job.fingerprint).join(CANCELLED_FILE).is_file());
        assert_eq!(sched.metrics.snapshot().queue_depth, 0);
        // the fingerprint is free again: resubmitting queues a fresh job
        assert!(matches!(sched.submit(tiny_spec("x"), 5), Submission::Queued(_)));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn submitted_jobs_are_persisted_and_resume_skips_terminal_dirs() {
        let (sched, dir) = temp_scheduler("resume");
        let job = match sched.submit(tiny_spec("r"), 7) {
            Submission::Queued(job) => job,
            other => panic!("{other:?}"),
        };
        assert!(sched.job_dir(&job.fingerprint).join(SPEC_FILE).is_file());
        let done = match sched.submit(tiny_spec("done"), 5) {
            Submission::Queued(job) => job,
            other => panic!("{other:?}"),
        };
        std::fs::write(sched.job_dir(&done.fingerprint).join(DONE_FILE), "{}\n").unwrap();

        // a second scheduler over the same state dir: only the unfinished
        // job comes back, with its persisted priority
        let settings = sched.base_settings.clone();
        let fresh = Scheduler::new(dir.clone(), settings);
        assert_eq!(fresh.resume_from_disk(), 1);
        let resumed = fresh.jobs();
        assert_eq!(resumed.len(), 1);
        assert_eq!(resumed[0].spec.name, "r");
        assert_eq!(resumed[0].priority, 7);
        // the finished fingerprint now answers as a cache hit
        assert!(matches!(fresh.submit(tiny_spec("done"), 5), Submission::CachedResult { .. }));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn adaptive_jobs_emit_rate_converged_events() {
        let (sched, dir) = temp_scheduler("adaptive");
        let mut spec = tiny_spec("adaptive");
        // a loose target so both rates retire at min_reps
        spec.stopping = Some(ftclip_fault::StoppingRule { target_half_width: 0.9, min_reps: 2, max_reps: 2 });
        let job = match sched.submit(spec, 5) {
            Submission::Queued(job) => job,
            other => panic!("{other:?}"),
        };
        let worker = {
            let sched = sched.clone();
            std::thread::spawn(move || sched.worker_loop(2))
        };
        while !job.is_terminal() {
            std::thread::sleep(Duration::from_millis(5));
        }
        sched.request_shutdown();
        worker.join().unwrap();
        assert_eq!(job.status(), JobStatus::Completed);
        let converged: Vec<Value> = job
            .events_from(0)
            .iter()
            .map(|l| serde_json::from_str(l.trim()).unwrap())
            .filter(|v| v.get("event").and_then(Value::as_str) == Some("rate_converged"))
            .collect();
        assert_eq!(converged.len(), 2, "one retirement per fault rate");
        for event in &converged {
            assert_eq!(event.get("reps_used").and_then(Value::as_u64), Some(2));
            assert!(event.get("half_width").is_some());
            assert_eq!(event.get("converged"), Some(&Value::Bool(true)));
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn retention_gc_evicts_only_old_terminal_records() {
        let (sched, dir) = temp_scheduler("gc");
        let mut cancelled = Vec::new();
        for name in ["a", "b", "c"] {
            let job = match sched.submit(tiny_spec(name), 5) {
                Submission::Queued(job) => job,
                other => panic!("{other:?}"),
            };
            assert!(sched.cancel(&job));
            cancelled.push(job);
            // stagger the marker mtimes so "oldest" is well defined
            std::thread::sleep(Duration::from_millis(15));
        }
        // a live job's dir has no terminal marker and must survive any cap
        let live = match sched.submit(tiny_spec("live"), 5) {
            Submission::Queued(job) => job,
            other => panic!("{other:?}"),
        };
        // resubmitting "a" makes its fingerprint live again even though the
        // old cancellation marker is still in the dir — it must survive too
        let resubmitted = match sched.submit(tiny_spec("a"), 5) {
            Submission::Queued(job) => job,
            other => panic!("{other:?}"),
        };
        assert_eq!(resubmitted.fingerprint, cancelled[0].fingerprint);

        // default cap keeps everything
        assert_eq!(sched.gc_terminal_jobs(), 0);
        sched.set_keep_jobs(Some(1));
        // terminal candidates are b and c (a is live again); keep newest
        assert_eq!(sched.gc_terminal_jobs(), 1);
        assert!(!sched.job_dir(&cancelled[1].fingerprint).exists(), "b is the oldest candidate");
        assert!(sched.job_dir(&cancelled[2].fingerprint).exists());
        assert!(sched.job_dir(&cancelled[0].fingerprint).exists());
        assert!(sched.job_dir(&live.fingerprint).join(SPEC_FILE).is_file());
        // idempotent once under the cap
        assert_eq!(sched.gc_terminal_jobs(), 0);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn finishing_a_job_enforces_the_retention_cap() {
        let (sched, dir) = temp_scheduler("gc-run");
        sched.set_keep_jobs(Some(1));
        let old = match sched.submit(tiny_spec("old"), 5) {
            Submission::Queued(job) => job,
            other => panic!("{other:?}"),
        };
        assert!(sched.cancel(&old));
        assert!(sched.job_dir(&old.fingerprint).exists(), "one terminal record fits the cap");
        std::thread::sleep(Duration::from_millis(15));

        let job = match sched.submit(tiny_spec("fresh"), 5) {
            Submission::Queued(job) => job,
            other => panic!("{other:?}"),
        };
        let worker = {
            let sched = sched.clone();
            std::thread::spawn(move || sched.worker_loop(2))
        };
        while !job.is_terminal() {
            std::thread::sleep(Duration::from_millis(5));
        }
        sched.request_shutdown();
        worker.join().unwrap();
        assert_eq!(job.status(), JobStatus::Completed);
        // completing the fresh job pushed the cancelled record over the cap
        assert!(!sched.job_dir(&old.fingerprint).exists());
        assert!(sched.job_dir(&job.fingerprint).join(DONE_FILE).is_file());
        // the campaign-cell store is never part of retention
        assert!(dir.join("cache").exists());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn worker_executes_jobs_and_emits_the_event_protocol() {
        let (sched, dir) = temp_scheduler("run");
        let job = match sched.submit(tiny_spec("w"), 5) {
            Submission::Queued(job) => job,
            other => panic!("{other:?}"),
        };
        let worker = {
            let sched = sched.clone();
            std::thread::spawn(move || sched.worker_loop(2))
        };
        while !job.is_terminal() {
            std::thread::sleep(Duration::from_millis(5));
        }
        sched.request_shutdown(); // worker is now idle; the signal ends it
        worker.join().unwrap();
        assert_eq!(job.status(), JobStatus::Completed);
        let events = job.events_from(0);
        let kinds: Vec<String> = events
            .iter()
            .map(|l| {
                let v: Value = serde_json::from_str(l.trim()).unwrap();
                v.get("event").and_then(Value::as_str).unwrap().to_string()
            })
            .collect();
        assert_eq!(kinds.first().map(String::as_str), Some("queued"));
        assert_eq!(kinds.get(1).map(String::as_str), Some("started"));
        assert_eq!(kinds.last().map(String::as_str), Some("completed"));
        assert!(kinds.iter().any(|k| k == "clean"), "{kinds:?}");
        // 2 rates × 2 repetitions
        assert_eq!(kinds.iter().filter(|k| *k == "cell").count(), 4);
        assert_eq!(job.cells_done(), 4);
        let stored = sched.stored_result(&job.fingerprint).expect("done.json");
        assert_eq!(stored.get("name").and_then(Value::as_str), Some("w"));
        // an identical submission is now a cache hit, executing nothing
        assert!(matches!(sched.submit(tiny_spec("w"), 5), Submission::CachedResult { .. }));
        let m = sched.metrics.snapshot();
        assert_eq!((m.jobs_executed, m.jobs_completed, m.cache_hits), (1, 1, 1));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn bounded_queue_sheds_beyond_capacity() {
        let (sched, dir) = temp_scheduler("shed");
        sched.set_max_queue(Some(2));
        assert!(matches!(sched.submit(tiny_spec("a"), 5), Submission::Queued(_)));
        assert!(matches!(sched.submit(tiny_spec("b"), 5), Submission::Queued(_)));
        match sched.submit(tiny_spec("c"), 5) {
            Submission::Shed { queue_depth, retry_after } => {
                assert_eq!(queue_depth, 2);
                assert!(retry_after >= Duration::from_millis(1));
            }
            other => panic!("expected shed, got {other:?}"),
        }
        // shed submissions leave no job record behind
        assert_eq!(sched.jobs().len(), 2);
        let m = sched.metrics.snapshot();
        assert_eq!((m.jobs_submitted, m.jobs_shed), (2, 1));
        // coalescing onto a live job still works at capacity
        assert!(matches!(sched.submit(tiny_spec("a"), 5), Submission::Existing(_)));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn expired_deadline_fails_a_queued_job_without_executing_it() {
        let (sched, dir) = temp_scheduler("deadline");
        let job = match sched.submit_with_deadline(tiny_spec("late"), 5, Some(Duration::ZERO)) {
            Submission::Queued(job) => job,
            other => panic!("{other:?}"),
        };
        let worker = {
            let sched = sched.clone();
            std::thread::spawn(move || sched.worker_loop(2))
        };
        while !job.is_terminal() {
            std::thread::sleep(Duration::from_millis(5));
        }
        sched.request_shutdown();
        worker.join().unwrap();
        assert_eq!(job.status(), JobStatus::Failed);
        let m = sched.metrics.snapshot();
        assert_eq!((m.jobs_executed, m.jobs_deadline_expired), (0, 1));
        let events = job.events_from(0).join("");
        assert!(events.contains("deadline"), "{events}");
        assert!(sched.job_dir(&job.fingerprint).join(ERROR_FILE).is_file());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn default_deadline_applies_when_submission_has_none() {
        let (sched, dir) = temp_scheduler("deadline-default");
        // sub-millisecond defaults round to "no deadline"; 1ms is the floor
        sched.set_default_deadline(Some(Duration::from_millis(1)));
        let job = match sched.submit(tiny_spec("late"), 5) {
            Submission::Queued(job) => job,
            other => panic!("{other:?}"),
        };
        std::thread::sleep(Duration::from_millis(5));
        assert!(job.deadline_exceeded());
        // an explicit deadline overrides the default
        let job = match sched.submit_with_deadline(tiny_spec("ok"), 5, Some(Duration::from_secs(3600))) {
            Submission::Queued(job) => job,
            other => panic!("{other:?}"),
        };
        assert!(!job.deadline_exceeded());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn retry_backoff_is_deterministic_bounded_and_jittered() {
        let policy = RetryPolicy::default();
        let d1 = policy.delay("abcd", 1);
        assert_eq!(d1, policy.delay("abcd", 1), "same inputs, same delay");
        assert_ne!(d1, policy.delay("efgh", 1), "jitter keys off the fingerprint");
        // jitter keeps each delay within [0.5, 1.0) of the exponential step
        for attempt in 1..=8 {
            let exp = policy
                .base_delay
                .saturating_mul(1u32 << (attempt - 1).min(16))
                .min(policy.max_delay);
            let d = policy.delay("abcd", attempt as usize);
            assert!(d >= exp.mul_f64(0.5) && d < exp, "attempt {attempt}: {d:?} vs {exp:?}");
        }
        // the cap holds no matter how deep the retries go
        assert!(policy.delay("abcd", 64) <= policy.max_delay);
    }

    #[test]
    fn backoff_gate_hides_a_job_until_its_time_arrives() {
        let (sched, dir) = temp_scheduler("gate");
        let job = match sched.submit(tiny_spec("g"), 5) {
            Submission::Queued(job) => job,
            other => panic!("{other:?}"),
        };
        let now = Instant::now();
        *plock(&job.not_before) = Some(now + Duration::from_secs(60));
        {
            let st = sched.state.lock().unwrap();
            assert_eq!(best_index(&st.queue, now), None, "gated job must not be eligible");
            assert_eq!(best_index(&st.queue, now + Duration::from_secs(61)), Some(0));
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn resume_requeues_jobs_with_torn_terminal_markers() {
        let (sched, dir) = temp_scheduler("resume-torn");
        let job = match sched.submit(tiny_spec("torn"), 5) {
            Submission::Queued(job) => job,
            other => panic!("{other:?}"),
        };
        // a crash mid-write leaves a truncated, unparseable marker
        std::fs::write(sched.job_dir(&job.fingerprint).join(DONE_FILE), "{\"name\": \"to").unwrap();
        let fresh = Scheduler::new(dir.clone(), sched.base_settings.clone());
        assert_eq!(fresh.resume_from_disk(), 1, "a torn marker is not a completion");
        assert!(sched.job_dir(&job.fingerprint).join(format!("{DONE_FILE}.corrupt")).is_file());
        assert!(!sched.job_dir(&job.fingerprint).join(DONE_FILE).exists());
        // and the torn record is no longer served as a cached result
        assert!(matches!(fresh.submit(tiny_spec("torn"), 5), Submission::Existing(_)));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn resume_quarantines_job_dirs_with_torn_specs() {
        let (sched, dir) = temp_scheduler("resume-spec");
        let job = match sched.submit(tiny_spec("ok"), 5) {
            Submission::Queued(job) => job,
            other => panic!("{other:?}"),
        };
        let broken = dir.join("jobs").join("deadbeefdeadbeefdeadbeefdeadbeef");
        std::fs::create_dir_all(&broken).unwrap();
        std::fs::write(broken.join(SPEC_FILE), "{\"procedure\": \"camp").unwrap();
        let fresh = Scheduler::new(dir.clone(), sched.base_settings.clone());
        assert_eq!(fresh.resume_from_disk(), 1, "only the intact job resumes");
        assert_eq!(fresh.jobs()[0].spec.name, job.spec.name);
        assert!(!broken.exists(), "the broken record leaves the jobs dir");
        assert!(dir.join("jobs-quarantine").join("deadbeefdeadbeefdeadbeefdeadbeef").is_dir());
        std::fs::remove_dir_all(dir).ok();
    }
}
