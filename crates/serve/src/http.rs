//! An HTTP/1.1 layer over non-blocking TCP, written against the
//! [`crate::rt`] contract: every I/O future returns `Pending` on
//! `WouldBlock` and relies on the executor's next tick to retry.
//!
//! Scope: exactly what `ftclipd` needs. Request parsing (request line,
//! headers, `Content-Length` bodies), response rendering with keep-alive,
//! and chunked transfer encoding for the NDJSON event stream. No TLS, no
//! compression, no `Transfer-Encoding: chunked` *requests* (`411` would be
//! the correct refusal; the API only uses small JSON bodies).

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use serde::Value;

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body (specs are a few KB of JSON).
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// How long a connection may sit idle between requests before the handler
/// closes it.
pub const KEEP_ALIVE_IDLE: Duration = Duration::from_secs(30);
/// How long a single request (head + body) may take to arrive.
pub const REQUEST_DEADLINE: Duration = Duration::from_secs(10);

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, `DELETE`, …).
    pub method: String,
    /// The decoded path component, e.g. `/v1/jobs/job-3`.
    pub path: String,
    /// Decoded query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names are lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// The first query parameter with the given name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open (HTTP/1.1
    /// default unless `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        !self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// A response under construction. Rendered by [`write_response`].
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the defaults (`Content-Length`, `Connection`).
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with the given status.
    pub fn new(status: u16) -> Self {
        Response { status, headers: Vec::new(), body: Vec::new() }
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response::new(status)
            .header("Content-Type", "text/plain; charset=utf-8")
            .with_body(body.into().into_bytes())
    }

    /// An `application/json` response rendering `value`. A value the shim
    /// cannot render (it never happens for the plain scalars the service
    /// builds, but a connection handler must not panic over it) degrades to
    /// a 500 with a plain-text body.
    pub fn json(status: u16, value: &Value) -> Self {
        match serde_json::to_string(value) {
            Ok(body) => Response::new(status)
                .header("Content-Type", "application/json")
                .with_body(body.into_bytes()),
            Err(_) => Response::text(500, "internal error: unrenderable response body\n"),
        }
    }

    /// The standard error shape: `{"error": {"code": …, "message": …}}`.
    pub fn error(status: u16, code: &str, message: &str) -> Self {
        Response::json(
            status,
            &Value::Object(vec![(
                "error".to_string(),
                Value::Object(vec![
                    ("code".to_string(), Value::String(code.to_string())),
                    ("message".to_string(), Value::String(message.to_string())),
                ]),
            )]),
        )
    }

    /// Adds a header.
    pub fn header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Replaces the body.
    pub fn with_body(mut self, body: Vec<u8>) -> Self {
        self.body = body;
        self
    }

    /// Serializes status line, headers and body.
    fn render(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 256);
        let reason = reason_phrase(self.status);
        out.extend_from_slice(format!("HTTP/1.1 {} {reason}\r\n", self.status).as_bytes());
        let chunked = self
            .headers
            .iter()
            .any(|(n, v)| n.eq_ignore_ascii_case("transfer-encoding") && v.eq_ignore_ascii_case("chunked"));
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        if !chunked {
            out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        }
        out.extend_from_slice(if keep_alive {
            b"Connection: keep-alive\r\n"
        } else {
            b"Connection: close\r\n"
        });
        out.extend_from_slice(b"\r\n");
        if !chunked {
            out.extend_from_slice(&self.body);
        }
        out
    }
}

/// Reason phrases for the status codes the API uses.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        204 => "No Content",
        304 => "Not Modified",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Reads bytes into `buf`, awaiting across `WouldBlock`. `Ok(0)` is EOF.
/// Fails with [`ErrorKind::TimedOut`] past `deadline`.
pub async fn read_some(stream: &TcpStream, buf: &mut [u8], deadline: Instant) -> std::io::Result<usize> {
    std::future::poll_fn(|cx| {
        match (&mut (&*stream)).read(buf) {
            Ok(n) => std::task::Poll::Ready(Ok(n)),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return std::task::Poll::Ready(Err(ErrorKind::TimedOut.into()));
                }
                // no reactor: the executor re-polls next tick
                cx.waker().wake_by_ref();
                std::task::Poll::Pending
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {
                cx.waker().wake_by_ref();
                std::task::Poll::Pending
            }
            Err(e) => std::task::Poll::Ready(Err(e)),
        }
    })
    .await
}

/// Writes all of `bytes`, awaiting across `WouldBlock`.
pub async fn write_all(stream: &TcpStream, bytes: &[u8], deadline: Instant) -> std::io::Result<()> {
    let mut written = 0usize;
    while written < bytes.len() {
        let n = std::future::poll_fn(|cx| match (&mut (&*stream)).write(&bytes[written..]) {
            Ok(n) => std::task::Poll::Ready(Ok(n)),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return std::task::Poll::Ready(Err(ErrorKind::TimedOut.into()));
                }
                cx.waker().wake_by_ref();
                std::task::Poll::Pending
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {
                cx.waker().wake_by_ref();
                std::task::Poll::Pending
            }
            Err(e) => std::task::Poll::Ready(Err(e)),
        })
        .await?;
        if n == 0 {
            return Err(ErrorKind::WriteZero.into());
        }
        written += n;
    }
    Ok(())
}

/// Reads one request. `Ok(None)` means the client closed the connection
/// cleanly before sending anything (the normal end of a keep-alive
/// session); `idle` bounds how long to wait for the first byte.
pub async fn read_request(stream: &TcpStream, idle: Duration) -> std::io::Result<Option<Request>> {
    let mut head = Vec::with_capacity(1024);
    let mut buf = [0u8; 4096];
    // first byte: idle timeout; rest of the request: the request deadline
    let idle_deadline = Instant::now() + idle;
    let mut deadline = idle_deadline;
    let header_end;
    loop {
        let n = read_some(stream, &mut buf, deadline).await?;
        if n == 0 {
            if head.is_empty() {
                return Ok(None);
            }
            return Err(ErrorKind::UnexpectedEof.into());
        }
        if head.is_empty() {
            deadline = Instant::now() + REQUEST_DEADLINE;
        }
        head.extend_from_slice(&buf[..n]);
        if let Some(pos) = find_header_end(&head) {
            header_end = pos;
            break;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(std::io::Error::new(ErrorKind::InvalidData, "request head too large"));
        }
    }

    let head_text = std::str::from_utf8(&head[..header_end])
        .map_err(|_| std::io::Error::new(ErrorKind::InvalidData, "request head is not UTF-8"))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "missing method"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "missing request target"))?;

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "malformed header line"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|_| std::io::Error::new(ErrorKind::InvalidData, "bad Content-Length"))?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(std::io::Error::new(ErrorKind::InvalidData, "request body too large"));
    }

    let mut body = head[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = read_some(stream, &mut buf, deadline).await?;
        if n == 0 {
            return Err(ErrorKind::UnexpectedEof.into());
        }
        body.extend_from_slice(&buf[..n]);
    }
    body.truncate(content_length);

    let (path, query) = split_target(target);
    Ok(Some(Request { method, path, query, headers, body }))
}

/// Writes `response`, honoring `keep_alive` in the `Connection` header.
pub async fn write_response(
    stream: &TcpStream,
    response: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let deadline = Instant::now() + REQUEST_DEADLINE;
    write_all(stream, &response.render(keep_alive), deadline).await
}

/// Writes one chunk of a `Transfer-Encoding: chunked` body.
pub async fn write_chunk(stream: &TcpStream, data: &[u8]) -> std::io::Result<()> {
    if data.is_empty() {
        return Ok(()); // an empty chunk would terminate the stream
    }
    let deadline = Instant::now() + REQUEST_DEADLINE;
    let mut frame = format!("{:x}\r\n", data.len()).into_bytes();
    frame.extend_from_slice(data);
    frame.extend_from_slice(b"\r\n");
    write_all(stream, &frame, deadline).await
}

/// Terminates a chunked body.
pub async fn finish_chunks(stream: &TcpStream) -> std::io::Result<()> {
    let deadline = Instant::now() + REQUEST_DEADLINE;
    write_all(stream, b"0\r\n\r\n", deadline).await
}

/// Byte offset of the `\r\n\r\n` head terminator.
fn find_header_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Splits a request target into its decoded path and query parameters.
fn split_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (percent_decode(target), Vec::new()),
        Some((path, query)) => {
            let params = query
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|pair| match pair.split_once('=') {
                    Some((k, v)) => (percent_decode(k), percent_decode(v)),
                    None => (percent_decode(pair), String::new()),
                })
                .collect();
            (percent_decode(path), params)
        }
    }
}

/// Decodes `%XX` escapes and `+`-as-space; malformed escapes pass through
/// verbatim (this API's identifiers are ASCII names and hex keys).
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() + 1 && i + 2 < bytes.len() + 1 => {
                match (hex_val(bytes.get(i + 1)), hex_val(bytes.get(i + 2))) {
                    (Some(hi), Some(lo)) => {
                        out.push(hi * 16 + lo);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_val(b: Option<&u8>) -> Option<u8> {
    b.copied().and_then(|b| (b as char).to_digit(16).map(|d| d as u8))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_splitting_and_decoding() {
        let (path, query) = split_target("/v1/jobs/job-1/events");
        assert_eq!(path, "/v1/jobs/job-1/events");
        assert!(query.is_empty());

        let (path, query) = split_target("/v1/results/abc?format=csv&table=fig1b%5Fx&flag");
        assert_eq!(path, "/v1/results/abc");
        assert_eq!(
            query,
            vec![
                ("format".to_string(), "csv".to_string()),
                ("table".to_string(), "fig1b_x".to_string()),
                ("flag".to_string(), String::new()),
            ]
        );
        assert_eq!(percent_decode("a+b%20c"), "a b c");
        assert_eq!(percent_decode("100%"), "100%", "malformed escapes pass through");
    }

    #[test]
    fn response_rendering_includes_length_and_connection() {
        let rendered = Response::text(200, "hi").render(true);
        let text = String::from_utf8(rendered).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\nhi"), "{text}");

        let closed = String::from_utf8(Response::new(204).render(false)).unwrap();
        assert!(closed.contains("Connection: close\r\n"), "{closed}");
    }

    #[test]
    fn error_shape_is_stable() {
        let resp = Response::error(400, "bad-spec", "name must not be empty");
        let body = String::from_utf8(resp.body).unwrap();
        assert_eq!(body, r#"{"error":{"code":"bad-spec","message":"name must not be empty"}}"#);
    }

    #[test]
    fn request_accessors() {
        let req = Request {
            method: "GET".into(),
            path: "/x".into(),
            query: vec![("priority".into(), "7".into())],
            headers: vec![("connection".into(), "close".into()), ("x-a".into(), "1".into())],
            body: Vec::new(),
        };
        assert_eq!(req.header("Connection"), Some("close"));
        assert_eq!(req.header("X-A"), Some("1"));
        assert_eq!(req.header("missing"), None);
        assert_eq!(req.query_param("priority"), Some("7"));
        assert!(!req.keep_alive());
    }
}
