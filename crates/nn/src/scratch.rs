//! Reusable scratch storage for the inference hot path.
//!
//! Every forward pass through a convolutional network allocates the same
//! sequence of buffers: one im2col column matrix per conv layer (often an
//! order of magnitude larger than the activations), one matrix-product
//! output, and one activation tensor per layer. A fault campaign repeats
//! that sequence thousands of times with identical shapes, so the inference
//! entry points ([`crate::Sequential::forward_scratch`],
//! [`crate::evaluate`]) thread a [`Scratch`] arena through the pass and
//! recycle each layer's input buffer as soon as the next layer has consumed
//! it. After the first batch, the allocation-dominated buffers — batch
//! slices, im2col columns, matrix products, activations, flatten copies —
//! all come from the pool; only the pooling layers' downsampled outputs (a
//! small fraction of the activation volume) still allocate.
//!
//! The arena never changes numerics: buffers handed out by
//! [`Scratch::zeroed`] are indistinguishable from fresh `vec![0.0; len]`
//! storage, and [`Scratch::buffer`] is only used where every element is
//! overwritten before being read.

/// A pool of recycled `f32` buffers (see the module docs).
///
/// # Example
///
/// ```
/// use ftclip_nn::Scratch;
///
/// let mut scratch = Scratch::new();
/// let buf = scratch.zeroed(128);
/// assert!(buf.iter().all(|&x| x == 0.0));
/// scratch.recycle(buf); // the next zeroed/buffer call reuses the storage
/// assert_eq!(scratch.pooled(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Scratch {
    pool: Vec<Vec<f32>>,
}

/// Retained buffers beyond this count are dropped on [`Scratch::recycle`];
/// a forward pass keeps at most a handful of buffers in flight.
const MAX_POOLED: usize = 16;

impl Scratch {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Number of idle buffers currently held by the arena.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// A buffer of `len` zeros, reusing pooled storage when possible.
    pub fn zeroed(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.grab(len);
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// A buffer of exactly `len` elements with **unspecified contents**
    /// (whatever the recycled storage last held). Only for destinations
    /// where every element is written before being read.
    pub fn buffer(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.grab(len);
        if buf.capacity() < len {
            // contents are unspecified anyway: don't let the growth realloc
            // memcpy the stale elements
            buf.clear();
        }
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to the pool for later reuse.
    pub fn recycle(&mut self, buf: Vec<f32>) {
        if self.pool.len() < MAX_POOLED && buf.capacity() > 0 {
            self.pool.push(buf);
        }
    }

    /// Pops the **best-fitting** pooled buffer: the smallest whose capacity
    /// already covers `len`, else the largest available (it grows once),
    /// else a fresh empty one. First-fit would hand the im2col-sized buffer
    /// to tiny requests and balloon every pool entry toward the largest
    /// matrix; best-fit keeps one buffer per size class.
    fn grab(&mut self, len: usize) -> Vec<f32> {
        let fitting = self
            .pool
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= len)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i);
        let idx = fitting
            .or_else(|| self.pool.iter().enumerate().max_by_key(|(_, b)| b.capacity()).map(|(i, _)| i));
        match idx {
            Some(i) => self.pool.swap_remove(i),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_reuses_and_rezeroes() {
        let mut s = Scratch::new();
        let mut buf = s.zeroed(8);
        let ptr = buf.as_ptr();
        buf.iter_mut().for_each(|x| *x = 7.0);
        s.recycle(buf);
        let again = s.zeroed(4);
        assert_eq!(again.as_ptr(), ptr, "same storage must be reused");
        assert!(again.iter().all(|&x| x == 0.0), "recycled storage must be re-zeroed");
        assert_eq!(again.len(), 4);
    }

    #[test]
    fn buffer_has_exact_len() {
        let mut s = Scratch::new();
        s.recycle(vec![1.0; 32]);
        assert_eq!(s.buffer(8).len(), 8);
        assert_eq!(s.buffer(64).len(), 64);
    }

    #[test]
    fn pool_is_bounded() {
        let mut s = Scratch::new();
        for _ in 0..100 {
            s.recycle(vec![0.0; 4]);
        }
        assert!(s.pooled() <= MAX_POOLED);
    }

    #[test]
    fn prefers_fitting_buffer() {
        let mut s = Scratch::new();
        s.recycle(vec![0.0; 2]);
        s.recycle(vec![0.0; 100]);
        let buf = s.zeroed(50);
        assert!(buf.capacity() >= 100, "the already-large buffer should be chosen");
    }

    #[test]
    fn best_fit_spares_the_large_buffer_for_large_requests() {
        // a small request must take the small buffer, not occupy the
        // im2col-sized one and force the next conv to regrow a tiny vec
        let mut s = Scratch::new();
        s.recycle(Vec::with_capacity(8));
        s.recycle(Vec::with_capacity(1_000));
        let small = s.zeroed(4);
        assert!(small.capacity() < 1_000, "small request must pick the small fitting buffer");
        let large = s.zeroed(900);
        assert!(large.capacity() >= 1_000, "large buffer must still be available, unregrown");
    }

    #[test]
    fn grows_the_largest_when_nothing_fits() {
        let mut s = Scratch::new();
        s.recycle(Vec::with_capacity(8));
        s.recycle(Vec::with_capacity(64));
        let buf = s.zeroed(100);
        assert_eq!(buf.len(), 100);
        assert_eq!(s.pooled(), 1);
        assert_eq!(s.pool[0].capacity(), 8, "the smaller buffer stays pooled untouched");
    }
}
