//! Feed-forward network container.

use std::sync::Arc;

use ftclip_tensor::Tensor;
use rand::Rng;

use crate::graph::{plan_for, ForwardPlan, Span};
use crate::{Activation, Layer, LayerKind, NnError, ParamKind, ParamRef, Scratch};

/// A feed-forward stack of [`Layer`]s.
///
/// `Sequential` is the network type used for every model in the paper
/// (AlexNet, VGG-16, LeNet-5 are all linear chains). Beyond forward/backward
/// it exposes the three capabilities the FT-ClipAct methodology needs:
///
/// 1. **Activation recording** ([`Sequential::forward_recording`]) — Step 1
///    of the methodology profiles the output distribution of every layer.
/// 2. **Clipping control** ([`Sequential::convert_to_clipped`],
///    [`Sequential::set_clip_threshold`]) — Step 2 replaces unbounded
///    activations with clipped ones; Step 3 fine-tunes the thresholds.
/// 3. **Raw parameter access** ([`Sequential::visit_params_mut`]) — the
///    fault injector flips bits directly in the weight memories.
///
/// # Example
///
/// ```
/// use ftclip_nn::{Layer, Sequential};
/// use ftclip_tensor::Tensor;
///
/// let net = Sequential::new(vec![
///     Layer::conv2d(1, 4, 3, 1, 1, 0),
///     Layer::relu(),
///     Layer::flatten(),
///     Layer::linear(4 * 8 * 8, 10, 1),
/// ]);
/// use ftclip_nn::{Scratch, Span};
/// let logits = net.execute(&Tensor::zeros(&[2, 1, 8, 8]), Span::full(), &mut Scratch::new());
/// assert_eq!(logits.shape().dims(), &[2, 10]);
/// assert_eq!(net.computational_names(), vec!["CONV-1", "FC-1"]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Sequential {
    layers: Vec<Layer>,
}

/// Output of one layer captured by [`Sequential::forward_recording`].
#[derive(Debug, Clone)]
pub struct LayerRecord {
    /// Index of the layer within the network.
    pub layer_index: usize,
    /// Discriminant of the layer.
    pub kind: LayerKind,
    /// The layer's output tensor.
    pub output: Tensor,
}

impl Sequential {
    /// Creates a network from a layer list.
    pub fn new(layers: Vec<Layer>) -> Self {
        Sequential { layers }
    }

    /// Appends a layer (builder-style plumbing for the model zoo).
    pub fn push(&mut self, layer: Layer) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// The layers of the network.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layers.
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` if the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    // ------------------------------------------------------------------
    // Inference and training
    // ------------------------------------------------------------------

    /// **The** inference entry point: executes the layers selected by `span`
    /// through the compiled, fused, run-wide-cached [`ForwardPlan`] for this
    /// architecture (see [`crate::graph`]). The full pass is
    /// `Span::full()`, the clean-prefix / faulted-suffix split of the reuse
    /// path is `Span::prefix(cut)` / `Span::suffix(cut)`, and cache
    /// extensions are `Span::range(a, b)` — all bit-identical to the legacy
    /// per-layer loop at any thread count.
    ///
    /// Immutable, so fault campaigns share a network across evaluation
    /// batches without cloning; plans are pure structure, so parameter
    /// mutations (fault injection, threshold tuning) are always visible.
    ///
    /// # Panics
    ///
    /// Panics if the span is outside the network or shapes mismatch.
    pub fn execute(&self, x: &Tensor, span: Span, scratch: &mut Scratch) -> Tensor {
        plan_for(self, span.start(), x.shape().dims()).execute(self, x, span, scratch)
    }

    /// The memoized [`ForwardPlan`] for this architecture and input shape —
    /// compile once per (arch, batch-shape), reuse run-wide. Callers that
    /// execute many spans against one batch shape (the eval and suffix-reuse
    /// paths) fetch the plan once and call [`ForwardPlan::execute`] with
    /// different [`Span`]s.
    ///
    /// # Panics
    ///
    /// Panics if `input_dims` is inconsistent with the layer stack.
    pub fn plan(&self, input_dims: &[usize]) -> Arc<ForwardPlan> {
        plan_for(self, 0, input_dims)
    }

    /// Deprecated shim for a full inference pass: call
    /// [`Sequential::execute`] with [`Span::full`] instead —
    /// `net.execute(x, Span::full(), &mut Scratch::new())` is this method's
    /// exact body, and supplying a reused [`Scratch`] arena there avoids the
    /// per-call allocation this shim pays.
    ///
    /// # Panics
    ///
    /// Panics on input shape mismatches.
    #[deprecated(note = "superseded by the graph-IR plan API: use `Sequential::execute(x, Span::full(), \
                         &mut Scratch::new())` or `ForwardPlan::execute`")]
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.execute(x, Span::full(), &mut Scratch::new())
    }

    /// Deprecated shim for a full pass with a caller-owned arena: call
    /// [`Sequential::execute`] with [`Span::full`] instead —
    /// `net.execute(x, Span::full(), scratch)` is this method's exact body.
    /// The arena-recycling behaviour described in the [`Scratch`] module
    /// docs belongs to `execute` itself, not to this shim.
    ///
    /// # Panics
    ///
    /// Panics on input shape mismatches.
    #[deprecated(note = "superseded by the graph-IR plan API: use `Sequential::execute(x, Span::full(), \
                         scratch)` or `ForwardPlan::execute`")]
    pub fn forward_scratch(&self, x: &Tensor, scratch: &mut Scratch) -> Tensor {
        self.execute(x, Span::full(), scratch)
    }

    /// Deprecated shim for an explicit `[from, to)` slice of the network:
    /// call [`Sequential::execute`] with [`Span::range`] instead —
    /// `net.execute(x, Span::range(from, to), scratch)` is this method's
    /// exact body. Splitting a pass at any cut stays bit-identical by the
    /// plan's fusion contract; an empty span returns `x` unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `from > to`, `to` exceeds the layer count, or shapes
    /// mismatch.
    #[deprecated(note = "superseded by the graph-IR plan API: use `Sequential::execute(x, \
                         Span::range(from, to), scratch)` or `ForwardPlan::execute`")]
    pub fn forward_span_scratch(&self, x: &Tensor, from: usize, to: usize, scratch: &mut Scratch) -> Tensor {
        self.execute(x, Span::range(from, to), scratch)
    }

    /// Deprecated shim for the clean prefix entering layer `cut`: call
    /// [`Sequential::execute`] with [`Span::prefix`] instead —
    /// `net.execute(x, Span::prefix(cut), &mut Scratch::new())` is this
    /// method's exact body (the whole-network output when `cut == len`, the
    /// input itself when `cut == 0`). Prefix + suffix spans compose
    /// bit-identically at every cut; see
    /// [`Sequential::param_layer_indices`] for the cut naming contract.
    ///
    /// # Panics
    ///
    /// Panics if `cut` exceeds the layer count or shapes mismatch.
    #[deprecated(note = "superseded by the graph-IR plan API: use `Sequential::execute(x, \
                         Span::prefix(cut), &mut Scratch::new())` or `ForwardPlan::execute`")]
    pub fn forward_prefix(&self, x: &Tensor, cut: usize) -> Tensor {
        self.execute(x, Span::prefix(cut), &mut Scratch::new())
    }

    /// Deprecated shim for the clean prefix with a caller-owned arena: call
    /// [`Sequential::execute`] with [`Span::prefix`] instead —
    /// `net.execute(x, Span::prefix(cut), scratch)` is this method's exact
    /// body.
    ///
    /// # Panics
    ///
    /// Panics if `cut` exceeds the layer count or shapes mismatch.
    #[deprecated(note = "superseded by the graph-IR plan API: use `Sequential::execute(x, \
                         Span::prefix(cut), scratch)` or `ForwardPlan::execute`")]
    pub fn forward_prefix_scratch(&self, x: &Tensor, cut: usize, scratch: &mut Scratch) -> Tensor {
        self.execute(x, Span::prefix(cut), scratch)
    }

    /// Deprecated shim for resuming from the activation entering layer
    /// `cut`: call [`Sequential::execute`] with [`Span::suffix`] instead —
    /// `net.execute(act, Span::suffix(cut), scratch)` is this method's exact
    /// body. For every cut and input, executing `Span::prefix(cut)` then
    /// `Span::suffix(cut)` is bit-identical to one `Span::full()` pass —
    /// the same kernels run in the same order on the same values.
    ///
    /// # Panics
    ///
    /// Panics if `cut` exceeds the layer count or shapes mismatch.
    #[deprecated(note = "superseded by the graph-IR plan API: use `Sequential::execute(act, \
                         Span::suffix(cut), scratch)` or `ForwardPlan::execute`")]
    pub fn forward_suffix_scratch(&self, act: &Tensor, cut: usize, scratch: &mut Scratch) -> Tensor {
        self.execute(act, Span::suffix(cut), scratch)
    }

    /// Inference forward pass that additionally captures every layer's
    /// output (Step 1 profiling and the Fig. 3 distribution analysis).
    pub fn forward_recording(&self, x: &Tensor) -> (Tensor, Vec<LayerRecord>) {
        let mut records = Vec::with_capacity(self.layers.len());
        let mut cur = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            cur = layer.forward(&cur);
            records.push(LayerRecord { layer_index: i, kind: layer.kind(), output: cur.clone() });
        }
        (cur, records)
    }

    /// Training forward pass: layers cache what their backward passes need.
    pub fn forward_train<R: Rng + ?Sized>(&mut self, x: &Tensor, rng: &mut R) -> Tensor {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward_train(&cur, rng);
        }
        cur
    }

    /// Backward pass through all layers; gradients accumulate into the
    /// parameter `grad` tensors.
    ///
    /// # Panics
    ///
    /// Panics if [`Sequential::forward_train`] was not run first.
    pub fn backward(&mut self, grad_logits: &Tensor) -> Tensor {
        let mut g = grad_logits.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Zeroes all gradient accumulators.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Drops all cached training state (e.g. before serialization).
    pub fn clear_caches(&mut self) {
        for layer in &mut self.layers {
            layer.clear_cache();
        }
    }

    // ------------------------------------------------------------------
    // Parameter access
    // ------------------------------------------------------------------

    /// Visits every parameter tensor immutably as
    /// `(layer_index, kind, values, grad)`.
    pub fn visit_params(&self, f: &mut dyn FnMut(usize, ParamKind, &Tensor, &Tensor)) {
        for (i, layer) in self.layers.iter().enumerate() {
            layer.visit_params(&mut |kind, v, g| f(i, kind, v, g));
        }
    }

    /// Visits every parameter tensor mutably — the fault injector's entry
    /// point into the weight memory.
    pub fn visit_params_mut(&mut self, f: &mut dyn FnMut(usize, ParamKind, &mut Tensor, &mut Tensor)) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            layer.visit_params_mut(&mut |kind, v, g| f(i, kind, v, g));
        }
    }

    /// Collects mutable parameter references for the optimizers.
    pub fn params_mut(&mut self) -> Vec<ParamRef<'_>> {
        let mut out = Vec::new();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            match layer {
                Layer::Conv2d(c) => {
                    out.push(ParamRef {
                        layer: i,
                        kind: ParamKind::Weight,
                        values: &mut c.weight,
                        grad: &mut c.grad_weight,
                    });
                    out.push(ParamRef {
                        layer: i,
                        kind: ParamKind::Bias,
                        values: &mut c.bias,
                        grad: &mut c.grad_bias,
                    });
                }
                Layer::Linear(l) => {
                    out.push(ParamRef {
                        layer: i,
                        kind: ParamKind::Weight,
                        values: &mut l.weight,
                        grad: &mut l.grad_weight,
                    });
                    out.push(ParamRef {
                        layer: i,
                        kind: ParamKind::Bias,
                        values: &mut l.bias,
                        grad: &mut l.grad_bias,
                    });
                }
                Layer::BatchNorm2d(b) => {
                    out.push(ParamRef {
                        layer: i,
                        kind: ParamKind::Weight,
                        values: &mut b.gamma,
                        grad: &mut b.grad_gamma,
                    });
                    out.push(ParamRef {
                        layer: i,
                        kind: ParamKind::Bias,
                        values: &mut b.beta,
                        grad: &mut b.grad_beta,
                    });
                }
                _ => {}
            }
        }
        out
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Layer::param_count).sum()
    }

    /// Size of the parameter memory in bytes (`f32` words), the quantity
    /// plotted in the paper's Fig. 1a.
    pub fn param_bytes(&self) -> usize {
        self.param_count() * std::mem::size_of::<f32>()
    }

    // ------------------------------------------------------------------
    // Layer naming and lookup
    // ------------------------------------------------------------------

    /// Indices of the computational (conv / linear) layers.
    pub fn computational_indices(&self) -> Vec<usize> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_computational())
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of the layers holding trainable parameters (conv, linear,
    /// batch-norm), in network order — the **stable layer-index ↔
    /// parameter-memory mapping** the fault side uses to name suffix cuts.
    ///
    /// The contract: the `layer` index reported by
    /// [`Sequential::visit_params`] (and therefore by every sampled fault)
    /// is the layer's position in [`Sequential::layers`], so a fault set
    /// whose earliest faulted layer is `ℓ` leaves the activation returned
    /// by [`Sequential::forward_prefix`]`(x, ℓ)` bit-identical to the clean
    /// network's.
    pub fn param_layer_indices(&self) -> Vec<usize> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.param_count() > 0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Paper-style names for the computational layers: `CONV-1`, `CONV-2`,
    /// …, `FC-1`, … in network order.
    pub fn computational_names(&self) -> Vec<String> {
        let mut conv = 0usize;
        let mut fc = 0usize;
        let mut names = Vec::new();
        for layer in &self.layers {
            match layer.kind() {
                LayerKind::Conv2d => {
                    conv += 1;
                    names.push(format!("CONV-{conv}"));
                }
                LayerKind::Linear => {
                    fc += 1;
                    names.push(format!("FC-{fc}"));
                }
                _ => {}
            }
        }
        names
    }

    /// Resolves a paper-style layer name (`"CONV-5"`, `"FC-1"`) to the layer
    /// index, or `None` when absent.
    pub fn layer_index_by_name(&self, name: &str) -> Option<usize> {
        let names = self.computational_names();
        let indices = self.computational_indices();
        names.iter().position(|n| n == name).map(|p| indices[p])
    }

    // ------------------------------------------------------------------
    // Clipped-activation control (paper Steps 2 and 3)
    // ------------------------------------------------------------------

    /// Indices of the activation layers — the paper's "activation sites",
    /// one per computational layer in the standard models.
    pub fn activation_sites(&self) -> Vec<usize> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| matches!(l, Layer::Activation(_)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Replaces every unbounded activation with its clipped counterpart,
    /// initializing the thresholds site-by-site (Step 2 of the methodology).
    ///
    /// # Panics
    ///
    /// Panics if `thresholds.len()` differs from the number of activation
    /// sites. Use [`Sequential::try_convert_to_clipped`] for a fallible
    /// variant.
    pub fn convert_to_clipped(&mut self, thresholds: &[f32]) {
        self.try_convert_to_clipped(thresholds)
            .expect("threshold count must match activation sites");
    }

    /// Fallible variant of [`Sequential::convert_to_clipped`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ThresholdCountMismatch`] when the threshold count
    /// is wrong and [`NnError::InvalidThreshold`] for non-finite or
    /// non-positive thresholds.
    pub fn try_convert_to_clipped(&mut self, thresholds: &[f32]) -> Result<(), NnError> {
        let sites = self.activation_sites();
        if sites.len() != thresholds.len() {
            return Err(NnError::ThresholdCountMismatch { expected: sites.len(), got: thresholds.len() });
        }
        for &t in thresholds {
            if !(t.is_finite() && t > 0.0) {
                return Err(NnError::InvalidThreshold { value: t });
            }
        }
        for (&site, &t) in sites.iter().zip(thresholds) {
            if let Layer::Activation(a) = &mut self.layers[site] {
                a.func = a.func.clipped(t);
            }
        }
        Ok(())
    }

    /// The clipping threshold of every activation site (`None` for
    /// unbounded activations), in network order.
    pub fn clip_thresholds(&self) -> Vec<Option<f32>> {
        self.activation_sites()
            .into_iter()
            .map(|i| match &self.layers[i] {
                Layer::Activation(a) => a.func.threshold(),
                _ => None,
            })
            .collect()
    }

    /// Sets the clipping threshold of the activation layer at `layer_index`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoSuchLayer`] for a bad index,
    /// [`NnError::NotAClippedActivation`] if the layer is not a clipped
    /// activation, and [`NnError::InvalidThreshold`] for a bad value.
    pub fn set_clip_threshold(&mut self, layer_index: usize, threshold: f32) -> Result<(), NnError> {
        if !(threshold.is_finite() && threshold > 0.0) {
            return Err(NnError::InvalidThreshold { value: threshold });
        }
        let len = self.layers.len();
        let layer = self
            .layers
            .get_mut(layer_index)
            .ok_or(NnError::NoSuchLayer { index: layer_index, len })?;
        match layer {
            Layer::Activation(a) => match a.func.with_threshold(threshold) {
                Some(func) => {
                    a.func = func;
                    Ok(())
                }
                None => Err(NnError::NotAClippedActivation { index: layer_index }),
            },
            _ => Err(NnError::NotAClippedActivation { index: layer_index }),
        }
    }

    /// The activation function at `layer_index`, when that layer is an
    /// activation.
    pub fn activation_at(&self, layer_index: usize) -> Option<Activation> {
        match self.layers.get(layer_index) {
            Some(Layer::Activation(a)) => Some(a.func),
            _ => None,
        }
    }

    /// One-line architecture summary (layer kinds and parameter counts).
    pub fn summary(&self) -> String {
        let mut parts = Vec::new();
        for (name, idx) in self.computational_names().iter().zip(self.computational_indices()) {
            parts.push(format!("{name}({} params)", self.layers[idx].param_count()));
        }
        format!(
            "Sequential: {} layers, {} params ({:.2} MB) [{}]",
            self.layers.len(),
            self.param_count(),
            self.param_bytes() as f64 / (1024.0 * 1024.0),
            parts.join(" → ")
        )
    }
}

impl FromIterator<Layer> for Sequential {
    fn from_iter<I: IntoIterator<Item = Layer>>(iter: I) -> Self {
        Sequential::new(iter.into_iter().collect())
    }
}

impl Extend<Layer> for Sequential {
    fn extend<I: IntoIterator<Item = Layer>>(&mut self, iter: I) {
        self.layers.extend(iter);
    }
}

#[cfg(test)]
#[allow(deprecated)] // the legacy shim surface stays pinned until removal
mod tests {
    use super::*;

    fn tiny_net() -> Sequential {
        Sequential::new(vec![
            Layer::conv2d(1, 2, 3, 1, 1, 10),
            Layer::relu(),
            Layer::MaxPool2d(crate::MaxPool2d::new(2, 2)),
            Layer::flatten(),
            Layer::linear(2 * 4 * 4, 10, 11),
            Layer::relu(),
            Layer::linear(10, 4, 12),
        ])
    }

    #[test]
    fn forward_shapes() {
        let net = tiny_net();
        let y = net.execute(&Tensor::zeros(&[3, 1, 8, 8]), Span::full(), &mut Scratch::new());
        assert_eq!(y.shape().dims(), &[3, 4]);
    }

    #[test]
    fn forward_recording_captures_every_layer() {
        let net = tiny_net();
        let (y, recs) = net.forward_recording(&Tensor::zeros(&[1, 1, 8, 8]));
        assert_eq!(recs.len(), net.len());
        assert!(recs.last().unwrap().output.approx_eq(&y, 0.0));
        assert_eq!(recs[0].kind, LayerKind::Conv2d);
    }

    #[test]
    fn computational_names_follow_paper_convention() {
        let net = tiny_net();
        assert_eq!(net.computational_names(), vec!["CONV-1", "FC-1", "FC-2"]);
        assert_eq!(net.layer_index_by_name("FC-2"), Some(6));
        assert_eq!(net.layer_index_by_name("CONV-9"), None);
    }

    #[test]
    fn convert_to_clipped_sets_all_sites() {
        let mut net = tiny_net();
        assert_eq!(net.clip_thresholds(), vec![None, None]);
        net.convert_to_clipped(&[3.0, 5.0]);
        assert_eq!(net.clip_thresholds(), vec![Some(3.0), Some(5.0)]);
    }

    #[test]
    fn convert_to_clipped_validates() {
        let mut net = tiny_net();
        assert!(matches!(
            net.try_convert_to_clipped(&[1.0]),
            Err(NnError::ThresholdCountMismatch { expected: 2, got: 1 })
        ));
        assert!(matches!(
            net.try_convert_to_clipped(&[1.0, f32::NAN]),
            Err(NnError::InvalidThreshold { .. })
        ));
    }

    #[test]
    fn set_clip_threshold_errors() {
        let mut net = tiny_net();
        assert!(matches!(net.set_clip_threshold(99, 1.0), Err(NnError::NoSuchLayer { .. })));
        // layer 0 is a conv, not an activation
        assert!(matches!(net.set_clip_threshold(0, 1.0), Err(NnError::NotAClippedActivation { .. })));
        // unclipped relu cannot take a threshold
        assert!(matches!(net.set_clip_threshold(1, 1.0), Err(NnError::NotAClippedActivation { .. })));
        net.convert_to_clipped(&[3.0, 5.0]);
        assert!(net.set_clip_threshold(1, 7.0).is_ok());
        assert_eq!(net.clip_thresholds()[0], Some(7.0));
    }

    #[test]
    fn clipping_bounds_forward_outputs() {
        let mut net = tiny_net();
        // blow up one weight to emulate a fault
        net.visit_params_mut(&mut |i, kind, v, _| {
            if i == 0 && kind == ParamKind::Weight {
                v.data_mut()[0] = 1e20;
            }
        });
        let x = Tensor::ones(&[1, 1, 8, 8]);
        let mut scratch = Scratch::new();
        let unprotected_max = net.execute(&x, Span::full(), &mut scratch).max().abs();
        assert!(unprotected_max > 1e10, "fault should dominate, got {unprotected_max}");
        net.convert_to_clipped(&[2.0, 2.0]);
        let protected = net.execute(&x, Span::full(), &mut scratch);
        assert!(protected.max().abs() < 1e10, "clipping must squash the faulty activation");
    }

    #[test]
    fn param_count_and_bytes() {
        let net = tiny_net();
        let expect = (2 * 9 + 2) + (32 * 10 + 10) + (10 * 4 + 4);
        assert_eq!(net.param_count(), expect);
        assert_eq!(net.param_bytes(), expect * 4);
    }

    #[test]
    fn params_mut_matches_visit() {
        let mut net = tiny_net();
        let n_params = net.params_mut().len();
        let mut visited = 0;
        net.visit_params(&mut |_, _, _, _| visited += 1);
        assert_eq!(n_params, visited);
        assert_eq!(n_params, 6); // 3 computational layers × (weight, bias)
    }

    #[test]
    fn training_reduces_loss_on_toy_problem() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // overfit 8 random samples with 2 classes
        let mut rng = StdRng::seed_from_u64(99);
        let x = ftclip_tensor::uniform_init(&[8, 1, 8, 8], -1.0, 1.0, &mut rng);
        let labels: Vec<usize> = (0..8).map(|i| i % 2).collect();
        let mut net = Sequential::new(vec![
            Layer::conv2d(1, 4, 3, 1, 1, 1),
            Layer::relu(),
            Layer::flatten(),
            Layer::linear(4 * 8 * 8, 2, 2),
        ]);
        let loss0 = {
            let logits = net.execute(&x, Span::full(), &mut Scratch::new());
            crate::loss::SoftmaxCrossEntropy::new().loss(&logits, &labels)
        };
        for _ in 0..30 {
            net.zero_grad();
            let logits = net.forward_train(&x, &mut rng);
            let (_, grad) = crate::loss::SoftmaxCrossEntropy::new().loss_and_grad(&logits, &labels);
            net.backward(&grad);
            for p in net.params_mut() {
                let g = p.grad.clone();
                p.values.axpy(-0.05, &g);
            }
        }
        let loss1 = {
            let logits = net.execute(&x, Span::full(), &mut Scratch::new());
            crate::loss::SoftmaxCrossEntropy::new().loss(&logits, &labels)
        };
        assert!(loss1 < loss0 * 0.7, "loss should drop: {loss0} → {loss1}");
    }

    #[test]
    fn prefix_plus_suffix_is_bitwise_forward_at_every_cut() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let net = tiny_net();
        let mut rng = StdRng::seed_from_u64(41);
        let x = ftclip_tensor::uniform_init(&[2, 1, 8, 8], -1.0, 1.0, &mut rng);
        let full = net.forward_scratch(&x, &mut Scratch::new());
        let full_bits: Vec<u32> = full.data().iter().map(|v| v.to_bits()).collect();
        for cut in 0..=net.len() {
            let act = net.forward_prefix(&x, cut);
            let mut scratch = Scratch::new();
            let resumed = net.forward_suffix_scratch(&act, cut, &mut scratch);
            let bits: Vec<u32> = resumed.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, full_bits, "cut {cut}");
            assert_eq!(resumed.shape().dims(), full.shape().dims(), "cut {cut}");
        }
    }

    #[test]
    fn prefix_at_zero_is_input_and_at_len_is_output() {
        let net = tiny_net();
        let x = Tensor::ones(&[1, 1, 8, 8]);
        assert!(net.forward_prefix(&x, 0).approx_eq(&x, 0.0));
        assert!(net.forward_prefix(&x, net.len()).approx_eq(&net.forward(&x), 0.0));
    }

    #[test]
    #[should_panic(expected = "outside network")]
    fn span_rejects_out_of_range_cut() {
        let net = tiny_net();
        net.forward_prefix(&Tensor::ones(&[1, 1, 8, 8]), net.len() + 1);
    }

    #[test]
    fn param_layer_indices_name_every_fault_site() {
        let net = tiny_net();
        // conv at 0, linear at 4 and 6 — exactly the layers visit_params visits
        assert_eq!(net.param_layer_indices(), vec![0, 4, 6]);
        let mut visited = std::collections::BTreeSet::new();
        net.visit_params(&mut |i, _, _, _| {
            visited.insert(i);
        });
        assert_eq!(net.param_layer_indices(), visited.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn from_iterator_collects() {
        let net: Sequential = vec![Layer::flatten(), Layer::relu()].into_iter().collect();
        assert_eq!(net.len(), 2);
    }
}
