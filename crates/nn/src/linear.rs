//! Fully-connected (dense) layer.

use ftclip_tensor::{matmul, matmul_nt, matmul_nt_into, matmul_tn, Tensor};
use rand::Rng;

use crate::Scratch;

/// A fully-connected layer computing `y = x · Wᵀ + b`.
///
/// The weight matrix is stored `[out_features, in_features]`, one contiguous
/// row per output neuron, matching the weight-memory layout assumed by the
/// fault-injection framework.
///
/// # Example
///
/// ```
/// use ftclip_nn::Linear;
/// use ftclip_tensor::Tensor;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let fc = Linear::new(16, 4, &mut rng);
/// let y = fc.forward(&Tensor::zeros(&[2, 16]));
/// assert_eq!(y.shape().dims(), &[2, 4]);
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    in_features: usize,
    out_features: usize,
    pub(crate) weight: Tensor,
    pub(crate) bias: Tensor,
    pub(crate) grad_weight: Tensor,
    pub(crate) grad_bias: Tensor,
    cache: Option<Tensor>,
}

impl Linear {
    /// Creates a layer with He-normal weights and zero biases.
    ///
    /// # Panics
    ///
    /// Panics if either feature count is zero.
    pub fn new<R: Rng + ?Sized>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        assert!(in_features > 0 && out_features > 0, "feature counts must be positive");
        let weight = ftclip_tensor::he_normal(&[out_features, in_features], in_features, rng);
        Linear {
            in_features,
            out_features,
            grad_weight: Tensor::zeros(&[out_features, in_features]),
            grad_bias: Tensor::zeros(&[out_features]),
            bias: Tensor::zeros(&[out_features]),
            weight,
            cache: None,
        }
    }

    /// Rebuilds a layer from stored parameters (deserialization).
    ///
    /// # Panics
    ///
    /// Panics if the parameter shapes are inconsistent.
    pub fn from_parts(in_features: usize, out_features: usize, weight: Tensor, bias: Tensor) -> Self {
        assert_eq!(weight.shape().dims(), &[out_features, in_features], "linear weight shape mismatch");
        assert_eq!(bias.shape().dims(), &[out_features], "linear bias shape mismatch");
        Linear {
            in_features,
            out_features,
            grad_weight: Tensor::zeros(&[out_features, in_features]),
            grad_bias: Tensor::zeros(&[out_features]),
            weight,
            bias,
            cache: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The `[out_features, in_features]` weight matrix.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The per-output biases.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    /// Inference forward pass on a `[batch, in_features]` input.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank 2 or its trailing dimension differs from
    /// `in_features`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let (n, f) = x.shape().as_matrix();
        assert_eq!(f, self.in_features, "linear input feature mismatch");
        let mut y = matmul_nt(x, &self.weight);
        self.add_bias(n, y.data_mut());
        y
    }

    /// [`Linear::forward`] writing the output into recycled [`Scratch`]
    /// storage instead of a fresh allocation. Bit-identical to the
    /// allocating path.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank 2 or its trailing dimension differs from
    /// `in_features`.
    pub fn forward_scratch(&self, x: &Tensor, scratch: &mut Scratch) -> Tensor {
        let (n, f) = x.shape().as_matrix();
        assert_eq!(f, self.in_features, "linear input feature mismatch");
        // matmul_nt_into overwrites every element, so unzeroed storage is fine
        let mut y = Tensor::from_vec(scratch.buffer(n * self.out_features), &[n, self.out_features])
            .expect("output volume matches");
        matmul_nt_into(x, &self.weight, &mut y);
        self.add_bias(n, y.data_mut());
        y
    }

    fn add_bias(&self, n: usize, data: &mut [f32]) {
        for r in 0..n {
            for (c, &b) in self.bias.data().iter().enumerate() {
                data[r * self.out_features + c] += b;
            }
        }
    }

    /// Training forward pass; caches the input for [`Linear::backward`].
    pub fn forward_train(&mut self, x: &Tensor) -> Tensor {
        let y = self.forward(x);
        self.cache = Some(x.clone());
        y
    }

    /// Backward pass: accumulates parameter gradients, returns `dL/dx`.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Linear::forward_train`] or with a
    /// mismatched gradient shape.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cache.take().expect("backward called before forward_train");
        let (n, o) = grad_out.shape().as_matrix();
        assert_eq!(o, self.out_features, "grad shape mismatch");
        assert_eq!(n, x.shape()[0], "grad batch mismatch");
        // dW += gᵀ · x
        let dw = matmul_tn(grad_out, &x);
        self.grad_weight.axpy(1.0, &dw);
        // db += column sums of g
        for r in 0..n {
            for c in 0..o {
                self.grad_bias.data_mut()[c] += grad_out.data()[r * o + c];
            }
        }
        // dx = g · W
        matmul(grad_out, &self.weight)
    }

    /// Drops any cached training state.
    pub fn clear_cache(&mut self) {
        self.cache = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn forward_known_values() {
        let mut fc = Linear::new(2, 2, &mut rng());
        fc.weight = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        fc.bias = Tensor::from_slice(&[10.0, 20.0]);
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        // y0 = 1+2+10 = 13 ; y1 = 3+4+20 = 27
        assert_eq!(fc.forward(&x).data(), &[13.0, 27.0]);
    }

    #[test]
    fn gradient_check() {
        let mut fc = Linear::new(3, 2, &mut rng());
        let x = ftclip_tensor::uniform_init(&[4, 3], -1.0, 1.0, &mut rng());
        let y = fc.forward_train(&x);
        let gx = fc.backward(&Tensor::ones(y.shape().dims()));
        let eps = 1e-3;
        // weights
        for wi in 0..fc.weight.len() {
            let orig = fc.weight.data()[wi];
            fc.weight.data_mut()[wi] = orig + eps;
            let lp = fc.forward(&x).sum();
            fc.weight.data_mut()[wi] = orig - eps;
            let lm = fc.forward(&x).sum();
            fc.weight.data_mut()[wi] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - fc.grad_weight.data()[wi]).abs() < 1e-2);
        }
        // input
        let mut xp = x.clone();
        for xi in 0..x.len() {
            let orig = x.data()[xi];
            xp.data_mut()[xi] = orig + eps;
            let lp = fc.forward(&xp).sum();
            xp.data_mut()[xi] = orig - eps;
            let lm = fc.forward(&xp).sum();
            xp.data_mut()[xi] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - gx.data()[xi]).abs() < 1e-2);
        }
        // bias gradient is batch size per output
        for c in 0..2 {
            assert!((fc.grad_bias.data()[c] - 4.0).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "feature mismatch")]
    fn rejects_wrong_width() {
        Linear::new(3, 2, &mut rng()).forward(&Tensor::zeros(&[1, 4]));
    }

    #[test]
    fn from_parts_roundtrip() {
        let fc = Linear::new(5, 3, &mut rng());
        let re = Linear::from_parts(5, 3, fc.weight.clone(), fc.bias.clone());
        let x = ftclip_tensor::uniform_init(&[2, 5], -1.0, 1.0, &mut rng());
        assert!(fc.forward(&x).approx_eq(&re.forward(&x), 0.0));
    }

    #[test]
    fn param_count() {
        let fc = Linear::new(5, 3, &mut rng());
        assert_eq!(fc.param_count(), 5 * 3 + 3);
    }
}
