use std::error::Error;
use std::fmt;

/// Errors produced by network construction, mutation and (de)serialization.
#[derive(Debug)]
pub enum NnError {
    /// A layer index passed to a [`crate::Sequential`] API does not exist.
    NoSuchLayer {
        /// The offending index.
        index: usize,
        /// Number of layers in the network.
        len: usize,
    },
    /// An operation that requires an activation layer was applied to a
    /// different layer kind, or to an unclipped activation.
    NotAClippedActivation {
        /// The offending layer index.
        index: usize,
    },
    /// The number of thresholds supplied differs from the number of
    /// activation sites in the network.
    ThresholdCountMismatch {
        /// Number of activation sites in the network.
        expected: usize,
        /// Number of thresholds supplied.
        got: usize,
    },
    /// A clipping threshold was not strictly positive and finite.
    InvalidThreshold {
        /// The offending value.
        value: f32,
    },
    /// The serialized network file is malformed or has an unsupported
    /// version.
    Format {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// An underlying I/O failure while reading or writing a network file.
    Io(std::io::Error),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::NoSuchLayer { index, len } => {
                write!(f, "layer index {index} out of range for network with {len} layers")
            }
            NnError::NotAClippedActivation { index } => {
                write!(f, "layer {index} is not a clipped activation")
            }
            NnError::ThresholdCountMismatch { expected, got } => {
                write!(f, "expected {expected} clipping thresholds, got {got}")
            }
            NnError::InvalidThreshold { value } => {
                write!(f, "clipping threshold must be positive and finite, got {value}")
            }
            NnError::Format { reason } => write!(f, "malformed network file: {reason}"),
            NnError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NnError {
    fn from(e: std::io::Error) -> Self {
        NnError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = NnError::ThresholdCountMismatch { expected: 5, got: 3 };
        assert!(e.to_string().contains('5') && e.to_string().contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }

    #[test]
    fn io_error_source_preserved() {
        let inner = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = NnError::from(inner);
        assert!(e.source().is_some());
    }
}
