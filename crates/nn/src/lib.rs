//! CNN inference and training engine for the FT-ClipAct reproduction.
//!
//! This crate is the workspace's stand-in for the PyTorch substrate the paper
//! used. It provides:
//!
//! * [`Layer`] — a closed set of layer types: [`Conv2d`], [`Linear`],
//!   [`MaxPool2d`], [`AvgPool2d`], [`Layer::Flatten`], [`Dropout`] and
//!   [`Activation`] — including the paper's **clipped ReLU**
//!   ([`Activation::ClippedRelu`]), which maps values outside `[0, T]` to
//!   zero.
//! * [`Sequential`] — a feed-forward network with immutable inference
//!   through compiled fused plans ([`Sequential::execute`] /
//!   [`ForwardPlan::execute`], see the [`graph`] module), per-layer
//!   activation recording for Step 1 profiling
//!   ([`Sequential::forward_recording`]), training-mode forward and
//!   backprop, and raw parameter access for the fault injector
//!   ([`Sequential::visit_params_mut`]).
//! * [`loss::SoftmaxCrossEntropy`], optimizers ([`opt::Sgd`], [`opt::Adam`]),
//!   learning-rate schedules ([`sched::LrSchedule`]) and a batteries-included
//!   [`Trainer`].
//! * Versioned binary (de)serialization of whole networks
//!   ([`save_network`]/[`load_network`]) so trained models can be cached.
//!
//! # Example
//!
//! ```
//! use ftclip_nn::{Activation, Layer, Scratch, Sequential, Span};
//! use ftclip_tensor::Tensor;
//!
//! let mut net = Sequential::new(vec![
//!     Layer::linear(4, 8, 0),
//!     Layer::relu(),
//!     Layer::linear(8, 2, 1),
//! ]);
//! let x = Tensor::ones(&[1, 4]);
//! let logits = net.execute(&x, Span::full(), &mut Scratch::new());
//! assert_eq!(logits.shape().dims(), &[1, 2]);
//! // Convert the ReLU to the paper's clipped variant with threshold 6.0:
//! net.convert_to_clipped(&[6.0]);
//! assert_eq!(net.clip_thresholds(), vec![Some(6.0)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod batchnorm;
mod conv;
mod dropout;
mod error;
pub mod graph;
mod layer;
mod linear;
pub mod loss;
pub mod opt;
mod param;
mod pool;
pub mod sched;
mod scratch;
mod sequential;
mod serialize;
mod train;

pub use activation::Activation;
pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use dropout::Dropout;
pub use error::NnError;
pub use graph::{ForwardPlan, PlanNode, Span};
pub use layer::{ActivationLayer, Layer, LayerKind};
pub use linear::Linear;
pub use param::{ParamKind, ParamRef};
pub use pool::{AvgPool2d, MaxPool2d};
pub use scratch::Scratch;
pub use sequential::{LayerRecord, Sequential};
pub use serialize::{load_network, read_network, save_network, write_network, FORMAT_VERSION};
pub use train::{
    evaluate, evaluate_with_threads, sharded_batch_sum, EpochStats, OptimizerKind, Trainer, TrainerBuilder,
};
