//! The closed set of network layers.

use ftclip_tensor::Tensor;
use rand::Rng;

use crate::{Activation, AvgPool2d, BatchNorm2d, Conv2d, Dropout, Linear, MaxPool2d, ParamKind, Scratch};

/// An [`Activation`] function together with its training-time cache.
///
/// The cache stores the pre-activation input of the latest
/// `forward_train`, which the backward pass needs to evaluate the
/// activation derivative.
#[derive(Debug, Clone)]
pub struct ActivationLayer {
    /// The activation function applied elementwise.
    pub func: Activation,
    cache: Option<Tensor>,
}

impl ActivationLayer {
    /// Wraps an activation function as a layer.
    pub fn new(func: Activation) -> Self {
        ActivationLayer { func, cache: None }
    }
}

impl From<Activation> for ActivationLayer {
    fn from(func: Activation) -> Self {
        ActivationLayer::new(func)
    }
}

/// One layer of a [`crate::Sequential`] network.
///
/// `Layer` is a closed enum rather than a trait object: the FT-ClipAct
/// methodology needs to *inspect and mutate* layers — swap activations for
/// their clipped variants, walk parameter memories for fault injection,
/// serialize whole architectures — and a closed set makes those operations
/// total and explicit.
#[derive(Debug, Clone)]
pub enum Layer {
    /// 2-D convolution.
    Conv2d(Conv2d),
    /// Fully-connected layer.
    Linear(Linear),
    /// Elementwise activation function.
    Activation(ActivationLayer),
    /// Max pooling.
    MaxPool2d(MaxPool2d),
    /// Average pooling.
    AvgPool2d(AvgPool2d),
    /// Reshapes `[n, c, h, w]` to `[n, c·h·w]` (cached for backward).
    Flatten {
        /// Input shape cached by the training forward pass.
        cached_dims: Option<Vec<usize>>,
    },
    /// Inverted dropout (identity at inference).
    Dropout(Dropout),
    /// Per-channel batch normalization.
    BatchNorm2d(BatchNorm2d),
}

/// Discriminant of [`Layer`], used in reports and layer naming.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// 2-D convolution.
    Conv2d,
    /// Fully-connected layer.
    Linear,
    /// Activation function.
    Activation,
    /// Max pooling.
    MaxPool2d,
    /// Average pooling.
    AvgPool2d,
    /// Flatten.
    Flatten,
    /// Dropout.
    Dropout,
    /// Batch normalization.
    BatchNorm2d,
}

impl std::fmt::Display for LayerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LayerKind::Conv2d => "conv2d",
            LayerKind::Linear => "linear",
            LayerKind::Activation => "activation",
            LayerKind::MaxPool2d => "maxpool2d",
            LayerKind::AvgPool2d => "avgpool2d",
            LayerKind::Flatten => "flatten",
            LayerKind::Dropout => "dropout",
            LayerKind::BatchNorm2d => "batchnorm2d",
        };
        write!(f, "{s}")
    }
}

impl Layer {
    /// Convenience constructor for a [`Conv2d`] layer with a deterministic
    /// per-layer seed (useful in tests and model builders).
    pub fn conv2d(in_c: usize, out_c: usize, kernel: usize, stride: usize, pad: usize, seed: u64) -> Layer {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Layer::Conv2d(Conv2d::new(in_c, out_c, kernel, stride, pad, &mut rng))
    }

    /// Convenience constructor for a [`Linear`] layer with a deterministic
    /// per-layer seed.
    pub fn linear(in_f: usize, out_f: usize, seed: u64) -> Layer {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Layer::Linear(Linear::new(in_f, out_f, &mut rng))
    }

    /// Convenience constructor for an activation layer.
    pub fn activation(func: Activation) -> Layer {
        Layer::Activation(ActivationLayer::new(func))
    }

    /// Convenience constructor for a ReLU activation layer (the baseline
    /// activation of every model in the paper).
    pub fn relu() -> Layer {
        Layer::activation(Activation::Relu)
    }

    /// Convenience constructor for a flatten layer.
    pub fn flatten() -> Layer {
        Layer::Flatten { cached_dims: None }
    }

    /// The discriminant of this layer.
    pub fn kind(&self) -> LayerKind {
        match self {
            Layer::Conv2d(_) => LayerKind::Conv2d,
            Layer::Linear(_) => LayerKind::Linear,
            Layer::Activation(_) => LayerKind::Activation,
            Layer::MaxPool2d(_) => LayerKind::MaxPool2d,
            Layer::AvgPool2d(_) => LayerKind::AvgPool2d,
            Layer::Flatten { .. } => LayerKind::Flatten,
            Layer::Dropout(_) => LayerKind::Dropout,
            Layer::BatchNorm2d(_) => LayerKind::BatchNorm2d,
        }
    }

    /// `true` for layers with trainable parameters (conv and linear) — the
    /// paper's "computational layers".
    pub fn is_computational(&self) -> bool {
        matches!(self, Layer::Conv2d(_) | Layer::Linear(_))
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        match self {
            Layer::Conv2d(c) => c.param_count(),
            Layer::Linear(l) => l.param_count(),
            Layer::BatchNorm2d(b) => b.param_count(),
            _ => 0,
        }
    }

    /// Inference forward pass. Does not mutate the layer.
    ///
    /// # Panics
    ///
    /// Panics on input shape mismatches (see the individual layer docs).
    pub fn forward(&self, x: &Tensor) -> Tensor {
        match self {
            Layer::Conv2d(c) => c.forward(x),
            Layer::Linear(l) => l.forward(x),
            Layer::Activation(a) => a.func.apply(x),
            Layer::MaxPool2d(p) => p.forward(x),
            Layer::AvgPool2d(p) => p.forward(x),
            Layer::Flatten { .. } => flatten_forward(x),
            Layer::Dropout(d) => d.forward(x),
            Layer::BatchNorm2d(b) => b.forward(x),
        }
    }

    /// [`Layer::forward`] drawing output (and, for convolutions, im2col)
    /// storage from a reusable [`Scratch`] arena. Layers whose forward pass
    /// is not allocation-dominated simply delegate to [`Layer::forward`].
    /// Bit-identical to the allocating path.
    ///
    /// # Panics
    ///
    /// Panics on input shape mismatches (see the individual layer docs).
    pub fn forward_scratch(&self, x: &Tensor, scratch: &mut Scratch) -> Tensor {
        match self {
            Layer::Conv2d(c) => c.forward_scratch(x, scratch),
            Layer::Linear(l) => l.forward_scratch(x, scratch),
            Layer::Activation(a) => {
                let mut buf = scratch.buffer(x.len());
                for (o, &v) in buf.iter_mut().zip(x.data()) {
                    *o = a.func.apply_scalar(v);
                }
                Tensor::from_vec(buf, x.shape().dims()).expect("activation preserves shape")
            }
            Layer::Flatten { .. } => {
                // reshape clones the full activation; copy into recycled
                // storage instead (same bits, no allocation)
                let n = x.shape()[0];
                let rest: usize = x.shape().dims()[1..].iter().product();
                let mut buf = scratch.buffer(x.len());
                buf.copy_from_slice(x.data());
                Tensor::from_vec(buf, &[n, rest]).expect("flatten preserves volume")
            }
            other => other.forward(x),
        }
    }

    /// Training forward pass: caches whatever the backward pass needs.
    pub fn forward_train<R: Rng + ?Sized>(&mut self, x: &Tensor, rng: &mut R) -> Tensor {
        match self {
            Layer::Conv2d(c) => c.forward_train(x),
            Layer::Linear(l) => l.forward_train(x),
            Layer::Activation(a) => {
                let y = a.func.apply(x);
                a.cache = Some(x.clone());
                y
            }
            Layer::MaxPool2d(p) => p.forward_train(x),
            Layer::AvgPool2d(p) => p.forward_train(x),
            Layer::Flatten { cached_dims } => {
                *cached_dims = Some(x.shape().dims().to_vec());
                flatten_forward(x)
            }
            Layer::Dropout(d) => d.forward_train(x, rng),
            Layer::BatchNorm2d(b) => b.forward_train(x),
        }
    }

    /// Backward pass: returns the gradient with respect to the layer input.
    ///
    /// # Panics
    ///
    /// Panics if the matching training forward pass was not run first.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match self {
            Layer::Conv2d(c) => c.backward(grad_out),
            Layer::Linear(l) => l.backward(grad_out),
            Layer::Activation(a) => {
                let pre = a.cache.take().expect("backward called before forward_train");
                assert_eq!(pre.len(), grad_out.len(), "grad shape mismatch");
                let mut g = grad_out.clone();
                for (gv, &xv) in g.data_mut().iter_mut().zip(pre.data()) {
                    *gv *= a.func.derivative(xv);
                }
                g
            }
            Layer::MaxPool2d(p) => p.backward(grad_out),
            Layer::AvgPool2d(p) => p.backward(grad_out),
            Layer::Flatten { cached_dims } => {
                let dims = cached_dims.take().expect("backward called before forward_train");
                grad_out.reshape(&dims).expect("flatten preserves volume")
            }
            Layer::Dropout(d) => d.backward(grad_out),
            Layer::BatchNorm2d(b) => b.backward(grad_out),
        }
    }

    /// Visits the layer's parameter tensors immutably as
    /// `(kind, values, grad)`.
    pub fn visit_params(&self, f: &mut dyn FnMut(ParamKind, &Tensor, &Tensor)) {
        match self {
            Layer::Conv2d(c) => {
                f(ParamKind::Weight, &c.weight, &c.grad_weight);
                f(ParamKind::Bias, &c.bias, &c.grad_bias);
            }
            Layer::Linear(l) => {
                f(ParamKind::Weight, &l.weight, &l.grad_weight);
                f(ParamKind::Bias, &l.bias, &l.grad_bias);
            }
            Layer::BatchNorm2d(b) => {
                f(ParamKind::Weight, &b.gamma, &b.grad_gamma);
                f(ParamKind::Bias, &b.beta, &b.grad_beta);
            }
            _ => {}
        }
    }

    /// Visits the layer's parameter tensors mutably.
    pub fn visit_params_mut(&mut self, f: &mut dyn FnMut(ParamKind, &mut Tensor, &mut Tensor)) {
        match self {
            Layer::Conv2d(c) => {
                f(ParamKind::Weight, &mut c.weight, &mut c.grad_weight);
                f(ParamKind::Bias, &mut c.bias, &mut c.grad_bias);
            }
            Layer::Linear(l) => {
                f(ParamKind::Weight, &mut l.weight, &mut l.grad_weight);
                f(ParamKind::Bias, &mut l.bias, &mut l.grad_bias);
            }
            Layer::BatchNorm2d(b) => {
                f(ParamKind::Weight, &mut b.gamma, &mut b.grad_gamma);
                f(ParamKind::Bias, &mut b.beta, &mut b.grad_beta);
            }
            _ => {}
        }
    }

    /// Zeroes the gradient accumulators.
    pub fn zero_grad(&mut self) {
        self.visit_params_mut(&mut |_, _, grad| grad.fill(0.0));
    }

    /// Drops all cached training state.
    pub fn clear_cache(&mut self) {
        match self {
            Layer::Conv2d(c) => c.clear_cache(),
            Layer::Linear(l) => l.clear_cache(),
            Layer::Activation(a) => a.cache = None,
            Layer::MaxPool2d(p) => p.clear_cache(),
            Layer::AvgPool2d(p) => p.clear_cache(),
            Layer::Flatten { cached_dims } => *cached_dims = None,
            Layer::Dropout(d) => d.clear_cache(),
            Layer::BatchNorm2d(b) => b.clear_cache(),
        }
    }
}

fn flatten_forward(x: &Tensor) -> Tensor {
    let n = x.shape()[0];
    let rest: usize = x.shape().dims()[1..].iter().product();
    x.reshape(&[n, rest]).expect("flatten preserves volume")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_roundtrip() {
        let x = Tensor::zeros(&[2, 3, 4, 4]);
        let mut l = Layer::flatten();
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let y = l.forward_train(&x, &mut rng);
        assert_eq!(y.shape().dims(), &[2, 48]);
        let g = l.backward(&Tensor::ones(&[2, 48]));
        assert_eq!(g.shape().dims(), &[2, 3, 4, 4]);
    }

    #[test]
    fn activation_backward_uses_preactivation() {
        let mut l = Layer::relu();
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let x = Tensor::from_slice(&[-1.0, 2.0]);
        let y = l.forward_train(&x, &mut rng);
        assert_eq!(y.data(), &[0.0, 2.0]);
        let g = l.backward(&Tensor::from_slice(&[10.0, 10.0]));
        assert_eq!(g.data(), &[0.0, 10.0]);
    }

    #[test]
    fn clipped_activation_blocks_gradient_above_threshold() {
        let mut l = Layer::activation(Activation::ClippedRelu { threshold: 1.0 });
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let x = Tensor::from_slice(&[0.5, 5.0]);
        l.forward_train(&x, &mut rng);
        let g = l.backward(&Tensor::from_slice(&[1.0, 1.0]));
        assert_eq!(g.data(), &[1.0, 0.0]);
    }

    #[test]
    fn param_visiting_only_computational() {
        let conv = Layer::conv2d(1, 2, 3, 1, 1, 0);
        let mut count = 0;
        conv.visit_params(&mut |_, _, _| count += 1);
        assert_eq!(count, 2); // weight + bias
        let mut count = 0;
        Layer::flatten().visit_params(&mut |_, _, _| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn zero_grad_clears() {
        let mut fc = Layer::linear(2, 2, 0);
        fc.visit_params_mut(&mut |_, _, g| g.fill(3.0));
        fc.zero_grad();
        fc.visit_params(&mut |_, _, g| assert_eq!(g.sum(), 0.0));
    }

    #[test]
    fn kind_reporting() {
        assert_eq!(Layer::flatten().kind(), LayerKind::Flatten);
        assert_eq!(Layer::linear(1, 1, 0).kind(), LayerKind::Linear);
        assert!(Layer::linear(1, 1, 0).is_computational());
        assert!(!Layer::relu().is_computational());
    }

    #[test]
    fn layer_survives_moving_between_forward_and_backward() {
        // Caches live inside the layer, so moving the Vec that owns it must
        // not lose them.
        let mut layers = vec![Layer::relu()];
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let x = Tensor::from_slice(&[-1.0, 2.0]);
        layers[0].forward_train(&x, &mut rng);
        layers.reserve(100); // force reallocation
        let g = layers[0].backward(&Tensor::from_slice(&[1.0, 1.0]));
        assert_eq!(g.data(), &[0.0, 1.0]);
    }
}
