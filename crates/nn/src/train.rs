//! A batteries-included training loop.

use std::time::Instant;

use ftclip_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::loss::SoftmaxCrossEntropy;
use crate::opt::{Adam, Optimizer, Sgd};
use crate::sched::LrSchedule;
use crate::{Sequential, Span};

/// Which optimizer the [`Trainer`] instantiates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// SGD with the given momentum and weight decay.
    Sgd {
        /// Momentum coefficient.
        momentum: f32,
        /// Decoupled weight decay.
        weight_decay: f32,
    },
    /// Adam with canonical betas.
    Adam,
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Learning rate used this epoch.
    pub lr: f32,
    /// Mean training loss over the epoch.
    pub train_loss: f32,
    /// Training accuracy over the epoch (computed on the training batches).
    pub train_accuracy: f64,
    /// Validation accuracy, when a validation set was supplied.
    pub val_accuracy: Option<f64>,
    /// Wall-clock seconds spent in the epoch.
    pub seconds: f64,
}

/// Configurable mini-batch trainer for [`Sequential`] networks.
///
/// # Example
///
/// ```
/// use ftclip_nn::{Layer, Sequential, Trainer};
/// use ftclip_tensor::Tensor;
///
/// let mut net = Sequential::new(vec![
///     Layer::flatten(),
///     Layer::linear(4, 2, 0),
/// ]);
/// let images = Tensor::zeros(&[8, 1, 2, 2]);
/// let labels = vec![0usize, 1, 0, 1, 0, 1, 0, 1];
/// let trainer = Trainer::builder().epochs(1).batch_size(4).build();
/// let stats = trainer.fit(&mut net, &images, &labels, None);
/// assert_eq!(stats.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Trainer {
    epochs: usize,
    batch_size: usize,
    schedule: LrSchedule,
    optimizer: OptimizerKind,
    seed: u64,
    augment: bool,
    verbose: bool,
}

impl Trainer {
    /// Starts building a trainer.
    pub fn builder() -> TrainerBuilder {
        TrainerBuilder::default()
    }

    /// Trains `net` on `(images, labels)`; evaluates on `val` after each
    /// epoch when provided. Returns per-epoch statistics.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the leading dimension of
    /// `images`, or shapes are incompatible with the network.
    pub fn fit(
        &self,
        net: &mut Sequential,
        images: &Tensor,
        labels: &[usize],
        val: Option<(&Tensor, &[usize])>,
    ) -> Vec<EpochStats> {
        let n = images.shape()[0];
        assert_eq!(labels.len(), n, "label count must match image count");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut opt: Box<dyn Optimizer> = match self.optimizer {
            OptimizerKind::Sgd { momentum, weight_decay } => Box::new(Sgd::new(momentum, weight_decay)),
            OptimizerKind::Adam => Box::new(Adam::new()),
        };
        let ce = SoftmaxCrossEntropy::new();
        let mut order: Vec<usize> = (0..n).collect();
        let mut stats = Vec::with_capacity(self.epochs);
        for epoch in 0..self.epochs {
            let start = Instant::now();
            let lr = self.schedule.lr_at(epoch);
            order.shuffle(&mut rng);
            let mut loss_sum = 0.0f64;
            let mut correct = 0usize;
            let mut batches = 0usize;
            for chunk in order.chunks(self.batch_size) {
                let (bx, by) = gather_batch(images, labels, chunk);
                let bx = if self.augment { augment_batch(&bx, &mut rng) } else { bx };
                net.zero_grad();
                let logits = net.forward_train(&bx, &mut rng);
                let (loss, grad) = ce.loss_and_grad(&logits, &by);
                net.backward(&grad);
                opt.step(&mut net.params_mut(), lr);
                loss_sum += loss as f64;
                correct += logits.argmax_rows().iter().zip(&by).filter(|(p, l)| p == l).count();
                batches += 1;
            }
            let val_accuracy = val.map(|(vx, vy)| evaluate(net, vx, vy, self.batch_size));
            let stat = EpochStats {
                epoch,
                lr,
                train_loss: (loss_sum / batches.max(1) as f64) as f32,
                train_accuracy: correct as f64 / n as f64,
                val_accuracy,
                seconds: start.elapsed().as_secs_f64(),
            };
            if self.verbose {
                match stat.val_accuracy {
                    Some(va) => eprintln!(
                        "epoch {:>3}: lr {:.4} loss {:.4} train-acc {:.3} val-acc {:.3} ({:.1}s)",
                        stat.epoch, stat.lr, stat.train_loss, stat.train_accuracy, va, stat.seconds
                    ),
                    None => eprintln!(
                        "epoch {:>3}: lr {:.4} loss {:.4} train-acc {:.3} ({:.1}s)",
                        stat.epoch, stat.lr, stat.train_loss, stat.train_accuracy, stat.seconds
                    ),
                }
            }
            stats.push(stat);
        }
        net.clear_caches();
        stats
    }
}

/// Builder for [`Trainer`] (see [`Trainer::builder`]).
#[derive(Debug, Clone)]
pub struct TrainerBuilder {
    epochs: usize,
    batch_size: usize,
    schedule: LrSchedule,
    optimizer: OptimizerKind,
    seed: u64,
    augment: bool,
    verbose: bool,
}

impl Default for TrainerBuilder {
    fn default() -> Self {
        TrainerBuilder {
            epochs: 10,
            batch_size: 64,
            schedule: LrSchedule::Constant { lr: 0.01 },
            optimizer: OptimizerKind::Sgd { momentum: 0.9, weight_decay: 5e-4 },
            seed: 0,
            augment: false,
            verbose: false,
        }
    }
}

impl TrainerBuilder {
    /// Number of passes over the training set.
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Mini-batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0` (at [`TrainerBuilder::build`]).
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Learning-rate schedule.
    pub fn schedule(mut self, schedule: LrSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Optimizer choice.
    pub fn optimizer(mut self, optimizer: OptimizerKind) -> Self {
        self.optimizer = optimizer;
        self
    }

    /// RNG seed controlling shuffling, dropout and augmentation.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables random horizontal flips and ±2 px translations on NCHW
    /// batches.
    pub fn augment(mut self, augment: bool) -> Self {
        self.augment = augment;
        self
    }

    /// Prints per-epoch progress to stderr.
    pub fn verbose(mut self, verbose: bool) -> Self {
        self.verbose = verbose;
        self
    }

    /// Finalizes the trainer.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0` or `epochs == 0`.
    pub fn build(self) -> Trainer {
        assert!(self.batch_size > 0, "batch size must be positive");
        assert!(self.epochs > 0, "epoch count must be positive");
        Trainer {
            epochs: self.epochs,
            batch_size: self.batch_size,
            schedule: self.schedule,
            optimizer: self.optimizer,
            seed: self.seed,
            augment: self.augment,
            verbose: self.verbose,
        }
    }
}

/// Batched evaluation: classification accuracy of `net` on `(images, labels)`.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the leading dimension of `images`.
pub fn evaluate(net: &Sequential, images: &Tensor, labels: &[usize], batch_size: usize) -> f64 {
    evaluate_with_threads(net, images, labels, batch_size, ftclip_tensor::num_threads())
}

/// [`evaluate`] with an explicit worker budget (`FTCLIP_THREADS` is
/// process-global and cached, so tests and probes comparing thread counts
/// inside one process use this entry point).
///
/// The evaluation batches are split into contiguous shards, one scoped
/// worker per shard, and each worker runs its forward passes under
/// [`ftclip_tensor::with_thread_limit`] with its share of the remaining
/// budget (`threads / workers`) — so when there are fewer batches than
/// threads, the matmul kernels underneath soak up the leftover parallelism
/// instead of idling. Each worker reuses one [`crate::Scratch`] arena across
/// its batches, eliminating steady-state allocation.
///
/// Results are **bit-identical at any thread count**: every batch's forward
/// pass is banding-invariant, each batch is scored by exactly one worker,
/// and the per-batch correct counts are integers whose sum is
/// order-independent.
pub fn evaluate_with_threads(
    net: &Sequential,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
    threads: usize,
) -> f64 {
    let n = images.shape()[0];
    assert_eq!(labels.len(), n, "label count must match image count");
    let bs = batch_size.max(1);
    let batches = n.div_ceil(bs);
    let correct = sharded_batch_sum(batches, threads, |range| {
        correct_in_batches(net, images, labels, bs, range, &mut crate::Scratch::new())
    });
    correct as f64 / n as f64
}

/// The one batch-shard engine behind [`evaluate_with_threads`] (and the
/// suffix-evaluation path in `ftclip_core`): splits `batches` contiguous
/// batch indices across `threads` scoped workers and sums each worker's
/// count. Keeping every sharded scorer on this single implementation is
/// what makes their results comparable bit for bit — the split convention
/// can never diverge between callers.
///
/// The convention: `min(threads, batches)` workers, contiguous ranges with
/// the first `batches % workers` workers taking one extra batch, each
/// worker running under [`ftclip_tensor::with_thread_limit`] with its share
/// of the remaining budget (the first `threads % workers` workers absorb
/// the remainder). With one worker the scorer runs inline — still under
/// the explicit budget, so a `threads: 1` baseline never silently
/// parallelizes the kernels underneath. Bit-identical at any thread count
/// whenever `count` is pure per range: each batch is scored by exactly one
/// worker and the summed counts are order-independent.
pub fn sharded_batch_sum(
    batches: usize,
    threads: usize,
    count: impl Fn(std::ops::Range<usize>) -> usize + Sync,
) -> usize {
    let workers = threads.max(1).min(batches);
    if workers <= 1 {
        return ftclip_tensor::with_thread_limit(threads.max(1), || count(0..batches));
    }
    let inner = threads / workers;
    let spare_threads = threads % workers; // first workers absorb the remainder
    let base = batches / workers;
    let extra = batches % workers;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        let mut b0 = 0usize;
        for w in 0..workers {
            let n = base + usize::from(w < extra);
            let range = b0..b0 + n;
            b0 += n;
            let budget = inner + usize::from(w < spare_threads);
            let count = &count;
            handles.push(scope.spawn(move || ftclip_tensor::with_thread_limit(budget, || count(range))));
        }
        handles.into_iter().map(|h| h.join().expect("evaluation worker panicked")).sum()
    })
}

/// Correct-classification count over a contiguous range of batch indices.
fn correct_in_batches(
    net: &Sequential,
    images: &Tensor,
    labels: &[usize],
    bs: usize,
    batches: std::ops::Range<usize>,
    scratch: &mut crate::Scratch,
) -> usize {
    let n = images.shape()[0];
    let stride: usize = images.shape().dims()[1..].iter().product();
    let mut dims = images.shape().dims().to_vec();
    let mut correct = 0usize;
    for b in batches {
        let start = b * bs;
        let end = (start + bs).min(n);
        // copy the batch into recycled storage (what slice_batch does, minus
        // the per-batch allocation) so the steady-state loop stays heap-free
        let mut buf = scratch.buffer((end - start) * stride);
        buf.copy_from_slice(&images.data()[start * stride..end * stride]);
        dims[0] = end - start;
        let bx = Tensor::from_vec(buf, &dims).expect("batch volume matches");
        let logits = net.execute(&bx, Span::full(), scratch);
        correct += logits
            .argmax_rows()
            .iter()
            .zip(&labels[start..end])
            .filter(|(p, l)| p == l)
            .count();
        scratch.recycle(logits.into_vec());
        scratch.recycle(bx.into_vec());
    }
    correct
}

fn gather_batch(images: &Tensor, labels: &[usize], idxs: &[usize]) -> (Tensor, Vec<usize>) {
    let mut dims = images.shape().dims().to_vec();
    dims[0] = idxs.len();
    let stride: usize = images.shape().dims()[1..].iter().product();
    let mut data = Vec::with_capacity(idxs.len() * stride);
    let mut ls = Vec::with_capacity(idxs.len());
    for &i in idxs {
        data.extend_from_slice(&images.data()[i * stride..(i + 1) * stride]);
        ls.push(labels[i]);
    }
    (Tensor::from_vec(data, &dims).expect("batch volume matches"), ls)
}

/// Random horizontal flip (p = 0.5) and ±2 px translation per image.
fn augment_batch<R: Rng + ?Sized>(batch: &Tensor, rng: &mut R) -> Tensor {
    if batch.shape().rank() != 4 {
        return batch.clone();
    }
    let (n, c, h, w) = batch.shape().as_nchw();
    let mut out = batch.clone();
    for i in 0..n {
        let flip = rng.gen_bool(0.5);
        let dy = rng.gen_range(-2i32..=2);
        let dx = rng.gen_range(-2i32..=2);
        if !flip && dy == 0 && dx == 0 {
            continue;
        }
        for ci in 0..c {
            for y in 0..h {
                for x in 0..w {
                    let sy = y as i32 - dy;
                    let sx0 = if flip { (w - 1 - x) as i32 } else { x as i32 };
                    let sx = sx0 - dx;
                    let v = if sy >= 0 && sy < h as i32 && sx >= 0 && sx < w as i32 {
                        batch.at4(i, ci, sy as usize, sx as usize)
                    } else {
                        0.0
                    };
                    out.set4(i, ci, y, x, v);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Layer;

    fn toy_problem(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        // linearly separable: class = (mean of image > 0)
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(n * 16);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let offset: f32 = if i % 2 == 0 { 0.5 } else { -0.5 };
            for _ in 0..16 {
                data.push(offset + rng.gen_range(-0.3f32..0.3));
            }
            labels.push(usize::from(i % 2 == 0));
        }
        (Tensor::from_vec(data, &[n, 1, 4, 4]).unwrap(), labels)
    }

    #[test]
    fn trainer_learns_separable_problem() {
        let (x, y) = toy_problem(64, 5);
        let mut net = Sequential::new(vec![Layer::flatten(), Layer::linear(16, 2, 1)]);
        let trainer = Trainer::builder()
            .epochs(20)
            .batch_size(16)
            .schedule(LrSchedule::Constant { lr: 0.1 })
            .optimizer(OptimizerKind::Sgd { momentum: 0.9, weight_decay: 0.0 })
            .build();
        let stats = trainer.fit(&mut net, &x, &y, Some((&x, &y)));
        let last = stats.last().unwrap();
        assert!(last.val_accuracy.unwrap() > 0.95, "should fit separable data: {last:?}");
        assert!(last.train_loss < stats[0].train_loss);
    }

    #[test]
    fn adam_also_learns() {
        let (x, y) = toy_problem(64, 6);
        let mut net = Sequential::new(vec![Layer::flatten(), Layer::linear(16, 2, 2)]);
        let trainer = Trainer::builder()
            .epochs(15)
            .batch_size(16)
            .schedule(LrSchedule::Constant { lr: 0.01 })
            .optimizer(OptimizerKind::Adam)
            .build();
        let stats = trainer.fit(&mut net, &x, &y, Some((&x, &y)));
        assert!(stats.last().unwrap().val_accuracy.unwrap() > 0.9);
    }

    #[test]
    fn fit_is_deterministic_per_seed() {
        let (x, y) = toy_problem(32, 7);
        let run = |seed| {
            let mut net = Sequential::new(vec![Layer::flatten(), Layer::linear(16, 2, 3)]);
            let trainer = Trainer::builder().epochs(3).batch_size(8).seed(seed).build();
            trainer.fit(&mut net, &x, &y, None);
            net.execute(&x, Span::full(), &mut crate::Scratch::new()).data().to_vec()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn evaluate_batches_cover_everything() {
        let (x, y) = toy_problem(10, 8);
        let net = Sequential::new(vec![Layer::flatten(), Layer::linear(16, 2, 4)]);
        // batch size larger than n, equal to n, and ragged
        let a = evaluate(&net, &x, &y, 100);
        let b = evaluate(&net, &x, &y, 10);
        let c = evaluate(&net, &x, &y, 3);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn augment_preserves_shape_and_range() {
        let (x, _) = toy_problem(4, 9);
        let mut rng = StdRng::seed_from_u64(1);
        let a = augment_batch(&x, &mut rng);
        assert_eq!(a.shape().dims(), x.shape().dims());
        assert!(a.max() <= x.max() + 1e-6);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn builder_rejects_zero_batch() {
        Trainer::builder().batch_size(0).build();
    }
}
