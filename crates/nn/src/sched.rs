//! Learning-rate schedules.

/// A learning-rate schedule: maps an epoch index to a learning rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// The same rate every epoch.
    Constant {
        /// The learning rate.
        lr: f32,
    },
    /// Multiplies the rate by `gamma` every `step` epochs.
    StepDecay {
        /// Initial learning rate.
        lr: f32,
        /// Epochs between decays.
        step: usize,
        /// Multiplicative decay factor.
        gamma: f32,
    },
    /// Cosine annealing from `lr` to `min_lr` over `total_epochs`.
    Cosine {
        /// Initial learning rate.
        lr: f32,
        /// Final learning rate.
        min_lr: f32,
        /// Total number of epochs in the schedule.
        total_epochs: usize,
    },
}

impl LrSchedule {
    /// The learning rate for `epoch` (0-based).
    pub fn lr_at(&self, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::StepDecay { lr, step, gamma } => {
                let decays = epoch.checked_div(step).unwrap_or(0);
                lr * gamma.powi(decays as i32)
            }
            LrSchedule::Cosine { lr, min_lr, total_epochs } => {
                if total_epochs <= 1 {
                    return lr;
                }
                let t = (epoch.min(total_epochs - 1)) as f32 / (total_epochs - 1) as f32;
                min_lr + 0.5 * (lr - min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
            }
        }
    }
}

impl Default for LrSchedule {
    /// A constant rate of `0.01`.
    fn default() -> Self {
        LrSchedule::Constant { lr: 0.01 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant { lr: 0.1 };
        assert_eq!(s.lr_at(0), 0.1);
        assert_eq!(s.lr_at(100), 0.1);
    }

    #[test]
    fn step_decay_halves() {
        let s = LrSchedule::StepDecay { lr: 0.1, step: 10, gamma: 0.5 };
        assert!((s.lr_at(0) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(9) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(10) - 0.05).abs() < 1e-7);
        assert!((s.lr_at(25) - 0.025).abs() < 1e-7);
    }

    #[test]
    fn cosine_endpoints() {
        let s = LrSchedule::Cosine { lr: 0.1, min_lr: 0.001, total_epochs: 11 };
        assert!((s.lr_at(0) - 0.1).abs() < 1e-6);
        assert!((s.lr_at(10) - 0.001).abs() < 1e-6);
        // monotone decreasing
        for e in 0..10 {
            assert!(s.lr_at(e + 1) <= s.lr_at(e) + 1e-9);
        }
    }

    #[test]
    fn cosine_degenerate_single_epoch() {
        let s = LrSchedule::Cosine { lr: 0.1, min_lr: 0.0, total_epochs: 1 };
        assert_eq!(s.lr_at(0), 0.1);
    }
}
