//! Versioned binary (de)serialization of whole networks.
//!
//! The format (`FTCW`, little-endian) stores both the **architecture** and
//! the **parameters**, so a trained model can be reloaded without its
//! constructor — this is what lets the model zoo cache trained networks on
//! disk between experiment runs.
//!
//! ```text
//! magic   b"FTCW"
//! version u32 (currently 1)
//! layers  u32
//! repeat per layer:
//!   tag u8
//!   0 conv2d : in_c u32, out_c u32, kernel u32, stride u32, pad u32,
//!              weight f32[out_c·in_c·k·k], bias f32[out_c]
//!   1 linear : in_f u32, out_f u32, weight f32[out_f·in_f], bias f32[out_f]
//!   2 act    : act_tag u8 (+ f32 params, see below)
//!   3 maxpool: kernel u32, stride u32
//!   4 avgpool: kernel u32, stride u32
//!   5 flatten
//!   6 dropout: p f32
//!   7 batchnorm2d: channels u32, eps f32, momentum f32,
//!                  gamma f32[c], beta f32[c],
//!                  running_mean f32[c], running_var f32[c]
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use ftclip_tensor::Tensor;

use crate::{
    Activation, AvgPool2d, BatchNorm2d, Conv2d, Dropout, Layer, Linear, MaxPool2d, NnError, Sequential,
};

/// Current file-format version.
pub const FORMAT_VERSION: u32 = 1;

const MAGIC: &[u8; 4] = b"FTCW";

/// Serializes a network to any writer.
///
/// # Errors
///
/// Returns [`NnError::Io`] on write failure.
pub fn write_network<W: Write>(net: &Sequential, mut w: W) -> Result<(), NnError> {
    w.write_all(MAGIC)?;
    write_u32(&mut w, FORMAT_VERSION)?;
    write_u32(&mut w, net.len() as u32)?;
    for layer in net.layers() {
        match layer {
            Layer::Conv2d(c) => {
                w.write_all(&[0u8])?;
                let geom = c.geometry();
                for v in [c.in_channels(), c.out_channels(), geom.kernel, geom.stride, geom.pad] {
                    write_u32(&mut w, v as u32)?;
                }
                write_f32s(&mut w, c.weight().data())?;
                write_f32s(&mut w, c.bias().data())?;
            }
            Layer::Linear(l) => {
                w.write_all(&[1u8])?;
                write_u32(&mut w, l.in_features() as u32)?;
                write_u32(&mut w, l.out_features() as u32)?;
                write_f32s(&mut w, l.weight().data())?;
                write_f32s(&mut w, l.bias().data())?;
            }
            Layer::Activation(a) => {
                w.write_all(&[2u8])?;
                write_activation(&mut w, a.func)?;
            }
            Layer::MaxPool2d(p) => {
                w.write_all(&[3u8])?;
                write_u32(&mut w, p.kernel() as u32)?;
                write_u32(&mut w, p.stride() as u32)?;
            }
            Layer::AvgPool2d(p) => {
                w.write_all(&[4u8])?;
                write_u32(&mut w, p.kernel() as u32)?;
                write_u32(&mut w, p.stride() as u32)?;
            }
            Layer::Flatten { .. } => {
                w.write_all(&[5u8])?;
            }
            Layer::Dropout(d) => {
                w.write_all(&[6u8])?;
                write_f32(&mut w, d.probability())?;
            }
            Layer::BatchNorm2d(b) => {
                w.write_all(&[7u8])?;
                write_u32(&mut w, b.channels() as u32)?;
                write_f32(&mut w, b.eps())?;
                write_f32(&mut w, b.momentum())?;
                write_f32s(&mut w, b.gamma().data())?;
                write_f32s(&mut w, b.beta().data())?;
                write_f32s(&mut w, b.running_mean().data())?;
                write_f32s(&mut w, b.running_var().data())?;
            }
        }
    }
    Ok(())
}

/// Deserializes a network from any reader.
///
/// # Errors
///
/// Returns [`NnError::Format`] for malformed data or an unsupported version,
/// and [`NnError::Io`] on read failure.
pub fn read_network<R: Read>(mut r: R) -> Result<Sequential, NnError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(NnError::Format { reason: format!("bad magic {magic:?}") });
    }
    let version = read_u32(&mut r)?;
    if version != FORMAT_VERSION {
        return Err(NnError::Format { reason: format!("unsupported version {version}") });
    }
    let n_layers = read_u32(&mut r)? as usize;
    if n_layers > 100_000 {
        return Err(NnError::Format { reason: format!("implausible layer count {n_layers}") });
    }
    let mut layers = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        let tag = read_u8(&mut r)?;
        let layer = match tag {
            0 => {
                let in_c = read_u32(&mut r)? as usize;
                let out_c = read_u32(&mut r)? as usize;
                let kernel = read_u32(&mut r)? as usize;
                let stride = read_u32(&mut r)? as usize;
                let pad = read_u32(&mut r)? as usize;
                check_dims(&[in_c, out_c, kernel, stride])?;
                let weight = read_tensor(&mut r, &[out_c, in_c * kernel * kernel])?;
                let bias = read_tensor(&mut r, &[out_c])?;
                Layer::Conv2d(Conv2d::from_parts(in_c, out_c, kernel, stride, pad, weight, bias))
            }
            1 => {
                let in_f = read_u32(&mut r)? as usize;
                let out_f = read_u32(&mut r)? as usize;
                check_dims(&[in_f, out_f])?;
                let weight = read_tensor(&mut r, &[out_f, in_f])?;
                let bias = read_tensor(&mut r, &[out_f])?;
                Layer::Linear(Linear::from_parts(in_f, out_f, weight, bias))
            }
            2 => Layer::activation(read_activation(&mut r)?),
            3 => {
                let kernel = read_u32(&mut r)? as usize;
                let stride = read_u32(&mut r)? as usize;
                check_dims(&[kernel, stride])?;
                Layer::MaxPool2d(MaxPool2d::new(kernel, stride))
            }
            4 => {
                let kernel = read_u32(&mut r)? as usize;
                let stride = read_u32(&mut r)? as usize;
                check_dims(&[kernel, stride])?;
                Layer::AvgPool2d(AvgPool2d::new(kernel, stride))
            }
            5 => Layer::flatten(),
            6 => {
                let p = read_f32(&mut r)?;
                if !(0.0..1.0).contains(&p) {
                    return Err(NnError::Format { reason: format!("bad dropout probability {p}") });
                }
                Layer::Dropout(Dropout::new(p))
            }
            7 => {
                let channels = read_u32(&mut r)? as usize;
                check_dims(&[channels])?;
                let eps = read_f32(&mut r)?;
                let momentum = read_f32(&mut r)?;
                let hyper_valid = eps > 0.0 && momentum > 0.0 && momentum <= 1.0;
                if !hyper_valid {
                    return Err(NnError::Format {
                        reason: format!("bad batchnorm hyper-params eps={eps} momentum={momentum}"),
                    });
                }
                let gamma = read_tensor(&mut r, &[channels])?;
                let beta = read_tensor(&mut r, &[channels])?;
                let running_mean = read_tensor(&mut r, &[channels])?;
                let running_var = read_tensor(&mut r, &[channels])?;
                Layer::BatchNorm2d(BatchNorm2d::from_parts(
                    channels,
                    eps,
                    momentum,
                    gamma,
                    beta,
                    running_mean,
                    running_var,
                ))
            }
            other => return Err(NnError::Format { reason: format!("unknown layer tag {other}") }),
        };
        layers.push(layer);
    }
    Ok(Sequential::new(layers))
}

/// Saves a network to `path` (creating parent directories).
///
/// # Errors
///
/// Returns [`NnError::Io`] on filesystem failure.
pub fn save_network<P: AsRef<Path>>(net: &Sequential, path: P) -> Result<(), NnError> {
    if let Some(parent) = path.as_ref().parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let file = File::create(path)?;
    write_network(net, BufWriter::new(file))
}

/// Loads a network from `path`.
///
/// # Errors
///
/// Returns [`NnError::Io`] if the file cannot be read and
/// [`NnError::Format`] if it is malformed.
pub fn load_network<P: AsRef<Path>>(path: P) -> Result<Sequential, NnError> {
    let file = File::open(path)?;
    read_network(BufReader::new(file))
}

fn write_activation<W: Write>(w: &mut W, a: Activation) -> Result<(), NnError> {
    match a {
        Activation::Identity => w.write_all(&[0u8])?,
        Activation::Relu => w.write_all(&[1u8])?,
        Activation::ClippedRelu { threshold } => {
            w.write_all(&[2u8])?;
            write_f32(w, threshold)?;
        }
        Activation::SaturatedRelu { threshold } => {
            w.write_all(&[3u8])?;
            write_f32(w, threshold)?;
        }
        Activation::LeakyRelu { slope } => {
            w.write_all(&[4u8])?;
            write_f32(w, slope)?;
        }
        Activation::ClippedLeakyRelu { slope, threshold } => {
            w.write_all(&[5u8])?;
            write_f32(w, slope)?;
            write_f32(w, threshold)?;
        }
    }
    Ok(())
}

fn read_activation<R: Read>(r: &mut R) -> Result<Activation, NnError> {
    Ok(match read_u8(r)? {
        0 => Activation::Identity,
        1 => Activation::Relu,
        2 => Activation::ClippedRelu { threshold: read_f32(r)? },
        3 => Activation::SaturatedRelu { threshold: read_f32(r)? },
        4 => Activation::LeakyRelu { slope: read_f32(r)? },
        5 => Activation::ClippedLeakyRelu { slope: read_f32(r)?, threshold: read_f32(r)? },
        other => return Err(NnError::Format { reason: format!("unknown activation tag {other}") }),
    })
}

fn check_dims(dims: &[usize]) -> Result<(), NnError> {
    for &d in dims {
        if d == 0 || d > 1 << 24 {
            return Err(NnError::Format { reason: format!("implausible dimension {d}") });
        }
    }
    Ok(())
}

fn read_tensor<R: Read>(r: &mut R, dims: &[usize]) -> Result<Tensor, NnError> {
    let volume: usize = dims.iter().product();
    let mut buf = vec![0u8; volume * 4];
    r.read_exact(&mut buf)?;
    let data: Vec<f32> = buf
        .chunks_exact(4)
        .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .collect();
    Tensor::from_vec(data, dims).map_err(|e| NnError::Format { reason: e.to_string() })
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32<R: Read>(r: &mut R) -> std::io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u8<R: Read>(r: &mut R) -> std::io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn write_f32<W: Write>(w: &mut W, v: f32) -> std::io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_f32<R: Read>(r: &mut R) -> std::io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

fn write_f32s<W: Write>(w: &mut W, vs: &[f32]) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(vs.len() * 4);
    for v in vs {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    w.write_all(&buf)
}

#[cfg(test)]
#[allow(deprecated)] // round-trip checks ride the legacy shims until removal
mod tests {
    use super::*;

    fn sample_net() -> Sequential {
        Sequential::new(vec![
            Layer::conv2d(3, 4, 3, 1, 1, 20),
            Layer::BatchNorm2d(BatchNorm2d::new(4)),
            Layer::activation(Activation::ClippedRelu { threshold: 3.5 }),
            Layer::MaxPool2d(MaxPool2d::new(2, 2)),
            Layer::AvgPool2d(AvgPool2d::new(2, 2)),
            Layer::flatten(),
            Layer::Dropout(Dropout::new(0.25)),
            Layer::linear(4 * 2 * 2, 5, 21),
            Layer::activation(Activation::ClippedLeakyRelu { slope: 0.01, threshold: 9.0 }),
        ])
    }

    #[test]
    fn roundtrip_preserves_architecture_and_outputs() {
        let net = sample_net();
        let mut buf = Vec::new();
        write_network(&net, &mut buf).unwrap();
        let loaded = read_network(buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), net.len());
        assert_eq!(loaded.clip_thresholds(), net.clip_thresholds());
        let x = Tensor::ones(&[2, 3, 8, 8]);
        assert!(net.forward(&x).approx_eq(&loaded.forward(&x), 0.0));
    }

    #[test]
    fn roundtrip_via_file() {
        let net = sample_net();
        let dir = std::env::temp_dir().join("ftclip-serialize-test");
        let path = dir.join("net.ftcw");
        save_network(&net, &path).unwrap();
        let loaded = load_network(&path).unwrap();
        let x = Tensor::ones(&[1, 3, 8, 8]);
        assert!(net.forward(&x).approx_eq(&loaded.forward(&x), 0.0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_network(&b"NOPE"[..]).unwrap_err();
        assert!(matches!(err, NnError::Format { .. }));
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(read_network(buf.as_slice()), Err(NnError::Format { .. })));
    }

    #[test]
    fn rejects_truncated_file() {
        let net = sample_net();
        let mut buf = Vec::new();
        write_network(&net, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_network(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_unknown_layer_tag() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(200u8);
        assert!(matches!(read_network(buf.as_slice()), Err(NnError::Format { .. })));
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load_network("/nonexistent/net.ftcw").unwrap_err();
        assert!(matches!(err, NnError::Io(_)));
    }
}
