//! Inverted dropout (train-time only).

use ftclip_tensor::Tensor;
use rand::Rng;

/// Inverted dropout: during training each element is zeroed with probability
/// `p` and survivors are scaled by `1/(1-p)`; at inference it is the
/// identity.
///
/// The paper cites dropout as one of the inspirations for mapping
/// high-intensity activations to zero (§IV-A); the AlexNet classifier head
/// uses it during training.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p < 1`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0, 1), got {p}");
        Dropout { p, mask: None }
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }

    /// Inference forward pass — the identity.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        x.clone()
    }

    /// Training forward pass: samples and caches a mask.
    pub fn forward_train<R: Rng + ?Sized>(&mut self, x: &Tensor, rng: &mut R) -> Tensor {
        if self.p == 0.0 {
            self.mask = Some(vec![1.0; x.len()]);
            return x.clone();
        }
        let scale = 1.0 / (1.0 - self.p);
        let mask: Vec<f32> = (0..x.len())
            .map(|_| if rng.gen::<f32>() < self.p { 0.0 } else { scale })
            .collect();
        let mut y = x.clone();
        for (v, m) in y.data_mut().iter_mut().zip(&mask) {
            *v *= m;
        }
        self.mask = Some(mask);
        y
    }

    /// Backward pass: applies the cached mask to the gradient.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Dropout::forward_train`].
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.take().expect("backward called before forward_train");
        assert_eq!(mask.len(), grad_out.len(), "grad shape mismatch");
        let mut g = grad_out.clone();
        for (v, m) in g.data_mut().iter_mut().zip(&mask) {
            *v *= m;
        }
        g
    }

    /// Drops any cached training state.
    pub fn clear_cache(&mut self) {
        self.mask = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn inference_is_identity() {
        let d = Dropout::new(0.5);
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        assert!(d.forward(&x).approx_eq(&x, 0.0));
    }

    #[test]
    fn train_mask_preserves_expectation() {
        let mut d = Dropout::new(0.5);
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::ones(&[10_000]);
        let y = d.forward_train(&x, &mut rng);
        // E[y] = 1; allow 5% tolerance
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
    }

    #[test]
    fn backward_applies_same_mask() {
        let mut d = Dropout::new(0.5);
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::ones(&[64]);
        let y = d.forward_train(&x, &mut rng);
        let g = d.backward(&Tensor::ones(&[64]));
        // gradient is zero exactly where the output was zero
        for (yv, gv) in y.data().iter().zip(g.data()) {
            assert_eq!(*yv == 0.0, *gv == 0.0);
        }
    }

    #[test]
    fn p_zero_is_noop() {
        let mut d = Dropout::new(0.0);
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::from_slice(&[1.0, -2.0]);
        assert!(d.forward_train(&x, &mut rng).approx_eq(&x, 0.0));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_p_one() {
        Dropout::new(1.0);
    }
}
