//! Loss functions and classification metrics.

use ftclip_tensor::Tensor;

/// Numerically-stable softmax + cross-entropy over logits.
///
/// # Example
///
/// ```
/// use ftclip_nn::loss::SoftmaxCrossEntropy;
/// use ftclip_tensor::Tensor;
///
/// let logits = Tensor::from_vec(vec![2.0, 0.0, 0.0, 3.0], &[2, 2]).unwrap();
/// let loss = SoftmaxCrossEntropy::new().loss(&logits, &[0, 1]);
/// assert!(loss < 0.2); // confident and correct
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SoftmaxCrossEntropy {
    _private: (),
}

impl SoftmaxCrossEntropy {
    /// Creates the loss function.
    pub fn new() -> Self {
        SoftmaxCrossEntropy { _private: () }
    }

    /// Row-wise softmax with max subtraction for stability.
    ///
    /// # Panics
    ///
    /// Panics if `logits` is not rank 2.
    pub fn softmax(&self, logits: &Tensor) -> Tensor {
        let (n, c) = logits.shape().as_matrix();
        let mut out = logits.clone();
        let data = out.data_mut();
        for r in 0..n {
            let row = &mut data[r * c..(r + 1) * c];
            let m = row.iter().copied().filter(|x| !x.is_nan()).fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - m).exp();
                sum += *v;
            }
            if sum > 0.0 && sum.is_finite() {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            } else {
                // degenerate (all -inf / NaN) row — uniform fallback
                for v in row.iter_mut() {
                    *v = 1.0 / c as f32;
                }
            }
        }
        out
    }

    /// Mean cross-entropy of `logits` against integer labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the batch size or any label is
    /// out of range.
    pub fn loss(&self, logits: &Tensor, labels: &[usize]) -> f32 {
        let (n, c) = logits.shape().as_matrix();
        assert_eq!(labels.len(), n, "label count must match batch size");
        let probs = self.softmax(logits);
        let mut total = 0.0f32;
        for (r, &label) in labels.iter().enumerate() {
            assert!(label < c, "label {label} out of range for {c} classes");
            let p = probs.data()[r * c + label].max(1e-12);
            total += -p.ln();
        }
        total / n as f32
    }

    /// Loss value together with the gradient with respect to the logits
    /// (`(softmax − onehot) / n`), ready to feed into
    /// [`crate::Sequential::backward`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`SoftmaxCrossEntropy::loss`].
    pub fn loss_and_grad(&self, logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
        let (n, c) = logits.shape().as_matrix();
        assert_eq!(labels.len(), n, "label count must match batch size");
        let probs = self.softmax(logits);
        let mut grad = probs.clone();
        let mut total = 0.0f32;
        for (r, &label) in labels.iter().enumerate() {
            assert!(label < c, "label {label} out of range for {c} classes");
            let p = probs.data()[r * c + label].max(1e-12);
            total += -p.ln();
            grad.data_mut()[r * c + label] -= 1.0;
        }
        grad.scale(1.0 / n as f32);
        (total / n as f32, grad)
    }
}

/// Fraction of rows whose argmax equals the label.
///
/// This is the classification-accuracy metric used in every experiment of
/// the paper.
///
/// # Panics
///
/// Panics if `logits` is not rank 2 or `labels.len()` differs from the batch
/// size.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    let preds = logits.argmax_rows();
    assert_eq!(preds.len(), labels.len(), "label count must match batch size");
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let p = SoftmaxCrossEntropy::new().softmax(&logits);
        for r in 0..2 {
            let s: f32 = (0..3).map(|c| p.at2(r, c)).sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_stable_under_huge_faulty_logits() {
        let logits = Tensor::from_vec(vec![1e38, 0.0, -1e38, 0.0], &[2, 2]).unwrap();
        let p = SoftmaxCrossEntropy::new().softmax(&logits);
        assert!(p.iter().all(|x| x.is_finite()));
        assert!((p.at2(0, 0) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn softmax_handles_all_nan_row() {
        let logits = Tensor::from_vec(vec![f32::NAN, f32::NAN], &[1, 2]).unwrap();
        let p = SoftmaxCrossEntropy::new().softmax(&logits);
        assert!((p.at2(0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn loss_decreases_with_confidence() {
        let ce = SoftmaxCrossEntropy::new();
        let weak = Tensor::from_vec(vec![0.1, 0.0], &[1, 2]).unwrap();
        let strong = Tensor::from_vec(vec![5.0, 0.0], &[1, 2]).unwrap();
        assert!(ce.loss(&strong, &[0]) < ce.loss(&weak, &[0]));
    }

    #[test]
    fn uniform_logits_give_ln_c() {
        let ce = SoftmaxCrossEntropy::new();
        let logits = Tensor::zeros(&[1, 10]);
        assert!((ce.loss(&logits, &[3]) - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn grad_matches_finite_difference() {
        let ce = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![0.3, -0.2, 0.5, 0.1, 0.9, -0.4], &[2, 3]).unwrap();
        let labels = [2usize, 0];
        let (_, grad) = ce.loss_and_grad(&logits, &labels);
        let eps = 1e-3;
        let mut probe = logits.clone();
        for i in 0..logits.len() {
            let orig = probe.data()[i];
            probe.data_mut()[i] = orig + eps;
            let lp = ce.loss(&probe, &labels);
            probe.data_mut()[i] = orig - eps;
            let lm = ce.loss(&probe, &labels);
            probe.data_mut()[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - grad.data()[i]).abs() < 1e-3, "grad[{i}]: {num} vs {}", grad.data()[i]);
        }
    }

    #[test]
    fn grad_rows_sum_to_zero() {
        let ce = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![0.3, -0.2, 0.5, 0.1, 0.9, -0.4], &[2, 3]).unwrap();
        let (_, grad) = ce.loss_and_grad(&logits, &[1, 2]);
        for r in 0..2 {
            let s: f32 = (0..3).map(|c| grad.at2(r, c)).sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn accuracy_counts_correct() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0], &[3, 2]).unwrap();
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "label count")]
    fn accuracy_validates_lengths() {
        accuracy(&Tensor::zeros(&[2, 2]), &[0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn loss_validates_labels() {
        SoftmaxCrossEntropy::new().loss(&Tensor::zeros(&[1, 2]), &[5]);
    }
}
