//! Graph-IR execution engine: compile-once fused forward plans.
//!
//! [`Sequential`] stores the network as a flat layer list; this module
//! compiles that list into a small computation-graph IR and executes it
//! through **one** entry point, [`ForwardPlan::execute`], which subsumes the
//! legacy `forward*` family (full pass, prefix, suffix and arbitrary
//! `[from, to)` spans are all just [`Span`] values against the same plan).
//!
//! # Compilation
//!
//! [`ForwardPlan::compile`] walks the layer stack once and
//!
//! * **shape-checks** every op node against the declared input shape, so a
//!   mis-wired architecture fails at compile time with a layer-indexed
//!   message instead of deep inside a kernel;
//! * **fuses** `conv → activation` and `linear → activation` chains into
//!   single nodes whose kernels apply bias and activation in one in-place
//!   pass over the output;
//! * **elides im2col materialization**: the fused convolution gathers each
//!   image's column matrix into a small cache-resident buffer
//!   ([`ftclip_tensor::im2col_image_overwrite`]) and accumulates the blocked
//!   matmul directly into the batched NCHW output
//!   ([`ftclip_tensor::gemm_accumulate`]) — no batch-wide column matrix, no
//!   separate scatter or activation passes;
//! * **elides** inference no-ops (`Dropout`) and turns `Flatten` into a
//!   zero-copy reshape when the executor owns the buffer;
//! * **computes buffer liveness** ([`ForwardPlan::peak_scratch_floats`]):
//!   each node's consumed input is recycled into the [`Scratch`] arena the
//!   moment its output exists, so the arena's high-water mark is the largest
//!   adjacent (input + output + gather) working set, not the sum over the
//!   network.
//!
//! Plans are **pure structure**: nodes hold layer *indices*, never copies of
//! weights or thresholds. Every execution reads the live parameters from the
//! [`Sequential`] it is given, so fault injections and threshold tuning are
//! visible immediately and never invalidate a cached plan.
//!
//! # Bit-identity contract
//!
//! Fusion preserves the per-element accumulation order of the legacy layer
//! kernels exactly: convolutions accumulate ascending-`k` with zero weight
//! coefficients skipped (the [`ftclip_tensor::matmul_into`] contract, padding
//! taps multiplied as explicit zeros), linear layers keep their single
//! ascending-`k` dot-product chain, and bias + activation are applied as
//! `act(acc + b)` — the same value chain as the unfused
//! `scatter-bias-then-activate` sequence. Every output element is produced
//! by exactly one thread, so results are bitwise identical to the legacy
//! path at any thread count, for any span cut. The property tests in
//! `crates/nn/tests/properties.rs` pin this across random nets, shapes,
//! cuts and 1/2/4 threads.
//!
//! # Plan cache
//!
//! [`Sequential::plan`] memoizes compiled plans run-wide, keyed by the
//! network's structural fingerprint plus the (span-entry, input-shape) pair.
//! Set `FTCLIP_PLAN_CACHE=off` (or `0`/`false`) to compile fresh on every
//! lookup instead.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::ops::Range;
use std::sync::{Arc, Mutex, OnceLock};

use ftclip_tensor::{
    conv_output_size, gemm_accumulate, im2col_image_overwrite, matmul_nt_into, num_threads, par_row_bands,
    Tensor,
};

use crate::activation::Activation;
use crate::layer::Layer;
use crate::scratch::Scratch;
use crate::sequential::Sequential;

/// A half-open range `[from, to)` of layer indices to execute — the single
/// argument that replaces the legacy `forward` / `forward_prefix` /
/// `forward_suffix` method family.
///
/// `to == None` means "to the end of the network", so [`Span::full`] and
/// [`Span::suffix`] need no layer count at construction time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    from: usize,
    to: Option<usize>,
}

impl Span {
    /// The whole network: layers `[0, len)`.
    pub fn full() -> Self {
        Span { from: 0, to: None }
    }

    /// The clean prefix entering layer `cut`: layers `[0, cut)`.
    pub fn prefix(cut: usize) -> Self {
        Span { from: 0, to: Some(cut) }
    }

    /// The suffix resuming at layer `cut`: layers `[cut, len)`.
    pub fn suffix(cut: usize) -> Self {
        Span { from: cut, to: None }
    }

    /// An explicit `[from, to)` range of layers.
    pub fn range(from: usize, to: usize) -> Self {
        Span { from, to: Some(to) }
    }

    /// First layer index of the span.
    pub fn start(&self) -> usize {
        self.from
    }

    /// Resolves the half-open bounds against a network of `len` layers.
    pub fn resolve(&self, len: usize) -> (usize, usize) {
        (self.from, self.to.unwrap_or(len))
    }
}

/// One op node of the compiled plan. Nodes hold layer indices only; all
/// parameters are read live from the network at execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Node {
    /// Fused convolution (+ bias) with an optional trailing activation and
    /// an optional trailing max-pool, executed by the gather-direct
    /// (im2col-elided) kernel. A fused pool consumes each image's conv
    /// output while it is still cache-hot, so the full-resolution feature
    /// map never streams to memory.
    ConvAct { conv: usize, act: Option<usize>, pool: Option<usize> },
    /// Fused linear (+ bias) with an optional trailing activation.
    LinearAct { lin: usize, act: Option<usize> },
    /// `Flatten`: a pure reshape — zero-copy when the buffer is owned.
    Reshape { layer: usize },
    /// An inference no-op (`Dropout`), elided entirely.
    Elided { layer: usize },
    /// Any other layer, executed through its legacy kernel.
    Opaque { layer: usize },
}

impl Node {
    /// The half-open range of legacy layer indices this node covers.
    fn layers(&self) -> Range<usize> {
        match *self {
            Node::ConvAct { conv, act, pool } => conv..pool.or(act).map_or(conv + 1, |l| l + 1),
            Node::LinearAct { lin, act } => lin..act.map_or(lin + 1, |a| a + 1),
            Node::Reshape { layer } | Node::Elided { layer } | Node::Opaque { layer } => layer..layer + 1,
        }
    }
}

/// Public description of one compiled plan node — the fusion decisions of
/// [`ForwardPlan::compile`], exposed for passes that lower the plan into
/// another representation (the int8 quantizer consumes these instead of
/// re-deriving the fusion rules from the raw layer list).
///
/// Like the internal nodes, descriptions hold layer *indices* only; all
/// parameters are read live from the [`Sequential`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanNode {
    /// Fused convolution (+ bias), optional trailing activation, optional
    /// trailing max-pool.
    ConvAct {
        /// Layer index of the convolution.
        conv: usize,
        /// Layer index of the fused activation, if any.
        act: Option<usize>,
        /// Layer index of the fused max-pool, if any.
        pool: Option<usize>,
    },
    /// Fused linear (+ bias) with an optional trailing activation.
    LinearAct {
        /// Layer index of the linear layer.
        lin: usize,
        /// Layer index of the fused activation, if any.
        act: Option<usize>,
    },
    /// `Flatten`: a pure reshape.
    Reshape {
        /// Layer index of the flatten.
        layer: usize,
    },
    /// An inference no-op (`Dropout`), elided entirely.
    Elided {
        /// Layer index of the elided layer.
        layer: usize,
    },
    /// Any other layer, executed through its legacy kernel.
    Opaque {
        /// Layer index of the opaque layer.
        layer: usize,
    },
}

impl PlanNode {
    /// The half-open range of legacy layer indices this node covers.
    pub fn layers(&self) -> Range<usize> {
        match *self {
            PlanNode::ConvAct { conv, act, pool } => conv..pool.or(act).map_or(conv + 1, |l| l + 1),
            PlanNode::LinearAct { lin, act } => lin..act.map_or(lin + 1, |a| a + 1),
            PlanNode::Reshape { layer } | PlanNode::Elided { layer } | PlanNode::Opaque { layer } => {
                layer..layer + 1
            }
        }
    }
}

/// A compiled, shape-checked, fused forward plan over a [`Sequential`].
///
/// Compile once per (architecture, span-entry, input-shape) — or let
/// [`Sequential::plan`] / [`Sequential::execute`] do it through the run-wide
/// cache — then call [`ForwardPlan::execute`] for every batch. See the
/// [module docs](self) for the fusion rules and the bit-identity contract.
#[derive(Debug, Clone)]
pub struct ForwardPlan {
    nodes: Vec<Node>,
    len: usize,
    fingerprint: u64,
    /// `shapes[i]` = dims entering layer `i` (slot `len` = output dims);
    /// `None` for layers before the compile entry point.
    shapes: Vec<Option<Vec<usize>>>,
    /// Liveness bound computed at compile time; see
    /// [`ForwardPlan::peak_scratch_floats`].
    peak_scratch: Option<usize>,
}

impl ForwardPlan {
    /// Compiles a plan for the whole network given its input shape.
    ///
    /// # Panics
    ///
    /// Panics if `input_dims` is inconsistent with the layer stack (the
    /// shape check runs at compile time, with layer-indexed messages).
    pub fn compile(net: &Sequential, input_dims: &[usize]) -> Self {
        Self::compile_from(net, 0, input_dims)
    }

    /// Compiles a plan whose shape check starts at layer `entry` with
    /// `entry_dims` entering it — used when only a suffix activation shape
    /// is known. The node graph always covers the whole network.
    ///
    /// # Panics
    ///
    /// Panics if `entry` exceeds the layer count or the shapes are
    /// inconsistent from `entry` onward.
    pub fn compile_from(net: &Sequential, entry: usize, entry_dims: &[usize]) -> Self {
        let layers = net.layers();
        assert!(entry <= layers.len(), "plan entry {entry} outside network of {} layers", layers.len());
        let mut nodes = Vec::new();
        let mut i = 0;
        while i < layers.len() {
            let node = match &layers[i] {
                Layer::Conv2d(_) => {
                    let act = matches!(layers.get(i + 1), Some(Layer::Activation(_))).then_some(i + 1);
                    let next = act.map_or(i + 1, |a| a + 1);
                    let pool = matches!(layers.get(next), Some(Layer::MaxPool2d(_))).then_some(next);
                    Node::ConvAct { conv: i, act, pool }
                }
                Layer::Linear(_) => {
                    let act = matches!(layers.get(i + 1), Some(Layer::Activation(_))).then_some(i + 1);
                    Node::LinearAct { lin: i, act }
                }
                Layer::Flatten { .. } => Node::Reshape { layer: i },
                Layer::Dropout(_) => Node::Elided { layer: i },
                _ => Node::Opaque { layer: i },
            };
            i = node.layers().end;
            nodes.push(node);
        }
        let shapes = infer_shapes(layers, entry, entry_dims);
        let peak_scratch = liveness_peak(layers, &nodes, &shapes);
        ForwardPlan {
            nodes,
            len: layers.len(),
            fingerprint: structural_fingerprint(net),
            shapes,
            peak_scratch,
        }
    }

    /// Number of legacy layers the plan covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` for a plan over an empty network.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The structural fingerprint of the network this plan was compiled
    /// from — layer kinds and dimensions, never parameter values.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The dims entering layer `index` (`len` = the network output), when
    /// known to the compile-time shape check. The batch dimension is the one
    /// the plan was compiled for; executions may use any batch size.
    pub fn shape_at(&self, index: usize) -> Option<&[usize]> {
        self.shapes.get(index).and_then(|s| s.as_deref())
    }

    /// Compile-time liveness bound: the peak number of `f32`s the plan holds
    /// in [`Scratch`]-managed buffers at any point of a full-span execution
    /// (consumed inputs are recycled as soon as the next output exists, so
    /// this is a max over adjacent node working sets — input + output +
    /// per-image gather — not a sum over the network). `None` when the
    /// compile entry hid the shapes of some node.
    pub fn peak_scratch_floats(&self) -> Option<usize> {
        self.peak_scratch
    }

    /// The fusion decisions of this plan, as public [`PlanNode`]
    /// descriptions in execution order. Together the nodes cover layers
    /// `[0, len)` exactly once; [`PlanNode::layers`] gives each node's span
    /// for use with [`Sequential::execute`] + [`Span::range`].
    pub fn node_descs(&self) -> Vec<PlanNode> {
        self.nodes
            .iter()
            .map(|n| match *n {
                Node::ConvAct { conv, act, pool } => PlanNode::ConvAct { conv, act, pool },
                Node::LinearAct { lin, act } => PlanNode::LinearAct { lin, act },
                Node::Reshape { layer } => PlanNode::Reshape { layer },
                Node::Elided { layer } => PlanNode::Elided { layer },
                Node::Opaque { layer } => PlanNode::Opaque { layer },
            })
            .collect()
    }

    /// Executes the layers selected by `span` on `x`, drawing buffers from
    /// `scratch` and reading all parameters live from `net`.
    ///
    /// This is the **single forward entry point** of the workspace: the full
    /// pass is `Span::full()`, the PR 5 prefix/suffix reuse paths are
    /// `Span::prefix(cut)` / `Span::suffix(cut)`, and cache extensions are
    /// `Span::range(a, b)` — all against the same plan, all bit-identical to
    /// the legacy per-layer loop. An empty span returns `x` unchanged.
    ///
    /// A span boundary that cuts through a fused node falls back to
    /// executing that node's covered layers individually (bit-identical by
    /// the fusion contract).
    ///
    /// # Panics
    ///
    /// Panics if the span is outside the network, `net` is not structurally
    /// the network this plan was compiled from, or shapes mismatch.
    pub fn execute(&self, net: &Sequential, x: &Tensor, span: Span, scratch: &mut Scratch) -> Tensor {
        let (from, to) = span.resolve(self.len);
        assert!(from <= to && to <= self.len, "span {from}..{to} outside network of {} layers", self.len);
        assert_eq!(
            net.len(),
            self.len,
            "plan/network layer count mismatch: plan has {}, network has {}",
            self.len,
            net.len()
        );
        if let Some(Some(expected)) = self.shapes.get(from) {
            let got = x.shape().dims();
            assert!(
                got.len() == expected.len() && got[1..] == expected[1..],
                "span entry {from}: input shape {got:?} incompatible with planned {expected:?} \
                 (batch size may differ, trailing dims may not)"
            );
        }
        let layers = net.layers();
        let mut cur: Option<Tensor> = None;
        for node in &self.nodes {
            let r = node.layers();
            if r.end <= from {
                continue;
            }
            if r.start >= to {
                break;
            }
            let whole = from <= r.start && r.end <= to;
            if whole {
                match *node {
                    Node::Elided { .. } => {} // inference identity: skip
                    Node::Reshape { .. } => {
                        let src = cur.take();
                        cur = Some(reshape_flat(src, x, scratch));
                    }
                    Node::ConvAct { conv, act, pool } => {
                        let y = exec_conv(layers, conv, act, pool, cur.as_ref().unwrap_or(x), scratch);
                        recycle_into(&mut cur, y, scratch);
                    }
                    Node::LinearAct { lin, act } => {
                        let y = exec_linear(layers, lin, act, cur.as_ref().unwrap_or(x), scratch);
                        recycle_into(&mut cur, y, scratch);
                    }
                    Node::Opaque { layer } => {
                        let y = layers[layer].forward_scratch(cur.as_ref().unwrap_or(x), scratch);
                        recycle_into(&mut cur, y, scratch);
                    }
                }
            } else {
                // span boundary inside a fused node: run the covered layers
                // through their legacy kernels (bit-identical by contract)
                for li in r.start.max(from)..r.end.min(to) {
                    let y = layers[li].forward_scratch(cur.as_ref().unwrap_or(x), scratch);
                    recycle_into(&mut cur, y, scratch);
                }
            }
        }
        cur.unwrap_or_else(|| x.clone())
    }
}

/// Replaces `cur` with `y`, recycling the consumed owned input (if any) into
/// the arena — the liveness discipline that keeps the scratch high-water
/// mark at one adjacent working set.
fn recycle_into(cur: &mut Option<Tensor>, y: Tensor, scratch: &mut Scratch) {
    if let Some(prev) = cur.replace(y) {
        scratch.recycle(prev.into_vec());
    }
}

/// Executes a `Flatten` node: zero-copy reshape when the buffer is owned,
/// a scratch copy (the legacy kernel) when it is still the borrowed input.
fn reshape_flat(owned: Option<Tensor>, x: &Tensor, scratch: &mut Scratch) -> Tensor {
    match owned {
        Some(t) => {
            let n = t.shape()[0];
            let rest: usize = t.shape().dims()[1..].iter().product();
            Tensor::from_vec(t.into_vec(), &[n, rest]).expect("flatten preserves volume")
        }
        None => {
            let n = x.shape()[0];
            let rest: usize = x.shape().dims()[1..].iter().product();
            let mut buf = scratch.buffer(x.len());
            buf.copy_from_slice(x.data());
            Tensor::from_vec(buf, &[n, rest]).expect("flatten preserves volume")
        }
    }
}

/// The fused activation function of a node, read live from the network.
fn live_activation(layers: &[Layer], act: Option<usize>) -> Option<Activation> {
    act.map(|ai| match &layers[ai] {
        Layer::Activation(a) => a.func,
        other => panic!("plan node expects an activation at layer {ai}, found {}", other.kind()),
    })
}

/// Gather-direct fused convolution: per image, unroll the column matrix into
/// a cache-resident buffer, accumulate the blocked product straight into the
/// image's `[out_channels, oh·ow]` rows of the batched NCHW output, then
/// apply `act(out + bias)` in place. Value chains are identical to the
/// legacy im2col → matmul → scatter-bias → activate pipeline; images are
/// distributed over threads whole, so every element keeps a single producer.
fn exec_conv(
    layers: &[Layer],
    conv: usize,
    act: Option<usize>,
    pool: Option<usize>,
    src: &Tensor,
    scratch: &mut Scratch,
) -> Tensor {
    let Layer::Conv2d(c) = &layers[conv] else {
        panic!("plan node expects a convolution at layer {conv}, found {}", layers[conv].kind())
    };
    let act = live_activation(layers, act);
    let pool = pool.map(|pi| match &layers[pi] {
        Layer::MaxPool2d(p) => (p.kernel(), p.stride()),
        other => panic!("plan node expects a max-pool at layer {pi}, found {}", other.kind()),
    });
    let (n, ic, h, w) = src.shape().as_nchw();
    assert_eq!(ic, c.in_channels(), "conv input channel mismatch at layer {conv}");
    let geom = c.geometry();
    let (oh, ow) = geom.output_size(h, w);
    let l = oh * ow;
    let oc = c.out_channels();
    let kk = ic * geom.kernel * geom.kernel;
    let chw = ic * h * w;
    let w_data = c.weight().data();
    let b_data = c.bias().data();
    let src_data = src.data();
    // With a fused pool, each image's full-resolution conv output lives only
    // in a per-worker staging buffer that the pool consumes while cache-hot;
    // only the pooled planes land in the batch output.
    let (out_h, out_w) = match pool {
        Some((pk, ps)) => (conv_output_size(oh, pk, ps, 0), conv_output_size(ow, pk, ps, 0)),
        None => (oh, ow),
    };
    let out_l = out_h * out_w;
    // Uninitialized batch buffer: each image zeroes its own conv slice right
    // before accumulating into it (see `conv_image`), so the freshly zeroed
    // region is still cache-hot when the gemm reads it back — bitwise the
    // same accumulation chain as one up-front whole-buffer zero pass.
    let mut out_buf = scratch.buffer(n * oc * out_l);
    if num_threads().min(n) <= 1 {
        let mut cols = scratch.buffer(kk * l);
        let mut staging = scratch.buffer(if pool.is_some() { oc * l } else { 0 });
        for (i, img_out) in out_buf.chunks_mut(oc * out_l).enumerate() {
            let img = &src_data[i * chw..(i + 1) * chw];
            match pool {
                Some((pk, ps)) => {
                    conv_image(img, w_data, b_data, geom, ic, h, w, act, &mut cols, &mut staging);
                    max_pool_planes(&staging, oc, oh, ow, pk, ps, img_out);
                }
                None => conv_image(img, w_data, b_data, geom, ic, h, w, act, &mut cols, img_out),
            }
        }
        scratch.recycle(cols);
        scratch.recycle(staging);
    } else {
        par_row_bands(&mut out_buf, oc * out_l, |first_img, band| {
            let mut cols = vec![0.0f32; kk * l];
            let mut staging = vec![0.0f32; if pool.is_some() { oc * l } else { 0 }];
            for (bi, img_out) in band.chunks_mut(oc * out_l).enumerate() {
                let i = first_img + bi;
                let img = &src_data[i * chw..(i + 1) * chw];
                match pool {
                    Some((pk, ps)) => {
                        conv_image(img, w_data, b_data, geom, ic, h, w, act, &mut cols, &mut staging);
                        max_pool_planes(&staging, oc, oh, ow, pk, ps, img_out);
                    }
                    None => conv_image(img, w_data, b_data, geom, ic, h, w, act, &mut cols, img_out),
                }
            }
        });
    }
    Tensor::from_vec(out_buf, &[n, oc, out_h, out_w]).expect("conv output volume matches")
}

/// Max-pools `c` contiguous `h × w` planes into `dst`, replicating the exact
/// window scan of [`crate::MaxPool2d::forward`] (`ky`/`kx` ascending, strict
/// `>` so ties keep the first element, clipped at the plane edge) — the
/// pooled bits cannot differ from the unfused layer's.
fn max_pool_planes(src: &[f32], c: usize, h: usize, w: usize, kernel: usize, stride: usize, dst: &mut [f32]) {
    let oh = conv_output_size(h, kernel, stride, 0);
    let ow = conv_output_size(w, kernel, stride, 0);
    let mut o = 0usize;
    for ci in 0..c {
        let plane = ci * h * w;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                for ky in 0..kernel {
                    let iy = oy * stride + ky;
                    if iy >= h {
                        break;
                    }
                    for kx in 0..kernel {
                        let ix = ox * stride + kx;
                        if ix >= w {
                            break;
                        }
                        let v = src[plane + iy * w + ix];
                        if v > best {
                            best = v;
                        }
                    }
                }
                dst[o] = best;
                o += 1;
            }
        }
    }
}

/// One image of the fused convolution: gather, accumulate, bias + activate.
#[allow(clippy::too_many_arguments)]
fn conv_image(
    img: &[f32],
    w_data: &[f32],
    b_data: &[f32],
    geom: ftclip_tensor::Conv2dGeometry,
    ic: usize,
    h: usize,
    w: usize,
    act: Option<Activation>,
    cols: &mut [f32],
    img_out: &mut [f32],
) {
    let l = img_out.len() / b_data.len();
    img_out.fill(0.0);
    im2col_image_overwrite(img, ic, h, w, geom, cols);
    gemm_accumulate(w_data, cols, img_out, cols.len() / l, l);
    for (seg, &b) in img_out.chunks_mut(l).zip(b_data) {
        match act {
            Some(a) => {
                for v in seg {
                    *v = a.apply_scalar(*v + b);
                }
            }
            None => {
                for v in seg {
                    *v += b;
                }
            }
        }
    }
}

/// Fused linear: the legacy `matmul_nt` kernel (one ascending-`k` chain per
/// element) with bias and activation folded into a single in-place pass.
fn exec_linear(
    layers: &[Layer],
    lin: usize,
    act: Option<usize>,
    src: &Tensor,
    scratch: &mut Scratch,
) -> Tensor {
    let Layer::Linear(linear) = &layers[lin] else {
        panic!("plan node expects a linear at layer {lin}, found {}", layers[lin].kind())
    };
    let act = live_activation(layers, act);
    let (n, f) = src.shape().as_matrix();
    assert_eq!(f, linear.in_features(), "linear input feature mismatch");
    let out_f = linear.out_features();
    let mut y = Tensor::from_vec(scratch.buffer(n * out_f), &[n, out_f]).expect("output volume matches");
    matmul_nt_into(src, linear.weight(), &mut y);
    let bias = linear.bias().data();
    if let Some(a) = act {
        for row in y.data_mut().chunks_mut(out_f) {
            for (v, &b) in row.iter_mut().zip(bias) {
                *v = a.apply_scalar(*v + b);
            }
        }
    } else {
        for row in y.data_mut().chunks_mut(out_f) {
            for (v, &b) in row.iter_mut().zip(bias) {
                *v += b;
            }
        }
    }
    y
}

/// Shape inference from layer `entry` onward; `shapes[i]` = dims entering
/// layer `i`, slot `len` = output dims. Panics with layer-indexed messages
/// on any inconsistency — the compile-time shape check.
fn infer_shapes(layers: &[Layer], entry: usize, entry_dims: &[usize]) -> Vec<Option<Vec<usize>>> {
    let mut shapes: Vec<Option<Vec<usize>>> = vec![None; layers.len() + 1];
    let mut cur = entry_dims.to_vec();
    shapes[entry] = Some(cur.clone());
    for (i, layer) in layers.iter().enumerate().skip(entry) {
        cur = match layer {
            Layer::Conv2d(c) => {
                assert!(cur.len() == 4, "layer {i} ({}): expected rank-4 input, got {cur:?}", layer.kind());
                assert_eq!(
                    cur[1],
                    c.in_channels(),
                    "layer {i} ({}): input has {} channels, conv expects {}",
                    layer.kind(),
                    cur[1],
                    c.in_channels()
                );
                let (oh, ow) = c.geometry().output_size(cur[2], cur[3]);
                vec![cur[0], c.out_channels(), oh, ow]
            }
            Layer::Linear(l) => {
                assert!(
                    cur.len() == 2 && cur[1] == l.in_features(),
                    "layer {i} ({}): input {cur:?} incompatible with linear [{} → {}]",
                    layer.kind(),
                    l.in_features(),
                    l.out_features()
                );
                vec![cur[0], l.out_features()]
            }
            Layer::MaxPool2d(p) => pooled_dims(&cur, p.kernel(), p.stride(), i),
            Layer::AvgPool2d(p) => pooled_dims(&cur, p.kernel(), p.stride(), i),
            Layer::Flatten { .. } => {
                assert!(!cur.is_empty(), "layer {i} (FLATTEN): scalar input");
                vec![cur[0], cur[1..].iter().product()]
            }
            Layer::Activation(_) | Layer::Dropout(_) | Layer::BatchNorm2d(_) => cur,
        };
        shapes[i + 1] = Some(cur.clone());
    }
    shapes
}

/// Buffer-liveness analysis over the compiled nodes: the largest adjacent
/// working set (live input + produced output + any per-image gather buffer)
/// across the plan, in `f32`s. `None` if any node's shapes are unknown.
fn liveness_peak(layers: &[Layer], nodes: &[Node], shapes: &[Option<Vec<usize>>]) -> Option<usize> {
    let mut peak = 0usize;
    for node in nodes {
        let r = node.layers();
        let input: usize = shapes.get(r.start)?.as_ref()?.iter().product();
        let output: usize = shapes.get(r.end)?.as_ref()?.iter().product();
        let gather = match *node {
            Node::ConvAct { conv, pool, .. } => match &layers[conv] {
                Layer::Conv2d(c) => {
                    let conv_out = shapes.get(conv + 1)?.as_ref()?;
                    let k = c.geometry().kernel;
                    let l = conv_out[2] * conv_out[3];
                    // fused pooling adds a per-image conv staging buffer
                    let staging = if pool.is_some() { conv_out[1] * l } else { 0 };
                    c.in_channels() * k * k * l + staging
                }
                _ => 0,
            },
            _ => 0,
        };
        peak = peak.max(input + output + gather);
    }
    Some(peak)
}

/// Output dims of a `kernel × kernel` stride-`stride` pooling layer.
fn pooled_dims(cur: &[usize], kernel: usize, stride: usize, i: usize) -> Vec<usize> {
    assert!(cur.len() == 4, "layer {i} (pool): expected rank-4 input, got {cur:?}");
    vec![
        cur[0],
        cur[1],
        conv_output_size(cur[2], kernel, stride, 0),
        conv_output_size(cur[3], kernel, stride, 0),
    ]
}

/// Hashes the network's *structure* — layer kinds and dimensions, never
/// parameter values — so fault injections and threshold tuning hit the same
/// cached plan while any architectural change misses.
pub fn structural_fingerprint(net: &Sequential) -> u64 {
    let mut hasher = DefaultHasher::new();
    net.len().hash(&mut hasher);
    for layer in net.layers() {
        match layer {
            Layer::Conv2d(c) => {
                let g = c.geometry();
                (0u8, c.in_channels(), c.out_channels(), g.kernel, g.stride, g.pad).hash(&mut hasher);
            }
            Layer::Linear(l) => (1u8, l.in_features(), l.out_features()).hash(&mut hasher),
            Layer::Activation(_) => 2u8.hash(&mut hasher),
            Layer::MaxPool2d(p) => (3u8, p.kernel(), p.stride()).hash(&mut hasher),
            Layer::AvgPool2d(p) => (4u8, p.kernel(), p.stride()).hash(&mut hasher),
            Layer::Flatten { .. } => 5u8.hash(&mut hasher),
            Layer::Dropout(_) => 6u8.hash(&mut hasher),
            Layer::BatchNorm2d(_) => 7u8.hash(&mut hasher),
        }
    }
    hasher.finish()
}

/// Run-wide plan cache: (structural fingerprint, span entry, entry dims) →
/// compiled plan.
type PlanKey = (u64, usize, Vec<usize>);

static PLAN_CACHE: OnceLock<Mutex<HashMap<PlanKey, Arc<ForwardPlan>>>> = OnceLock::new();

/// Entry cap before the cache is wholesale cleared — far above any realistic
/// (arch × batch-shape × cut) population, present only to bound a pathological
/// workload that churns architectures.
const PLAN_CACHE_CAP: usize = 256;

fn plan_cache_enabled() -> bool {
    !matches!(std::env::var("FTCLIP_PLAN_CACHE").as_deref().map(str::trim), Ok("off" | "0" | "false"))
}

/// Number of plans currently memoized run-wide (diagnostics and tests).
pub fn plan_cache_len() -> usize {
    PLAN_CACHE.get().map_or(0, |m| match m.lock() {
        Ok(g) => g.len(),
        Err(e) => e.into_inner().len(),
    })
}

/// The cached compile behind [`Sequential::plan`]: returns the memoized plan
/// for this (structure, entry, shape) or compiles and inserts one. With
/// `FTCLIP_PLAN_CACHE=off` every call compiles fresh.
pub fn plan_for(net: &Sequential, entry: usize, entry_dims: &[usize]) -> Arc<ForwardPlan> {
    // chaos drill: an injected bypass recompiles this plan from scratch —
    // plans are pure functions of (structure, entry, shape), so execution
    // stays bit-identical, just slower
    if !plan_cache_enabled() || ftclip_tensor::failpoint::fires("nn.plan_cache") {
        return Arc::new(ForwardPlan::compile_from(net, entry, entry_dims));
    }
    let key = (structural_fingerprint(net), entry, entry_dims.to_vec());
    let cache = PLAN_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = match cache.lock() {
        Ok(g) => g,
        Err(e) => e.into_inner(),
    };
    if let Some(plan) = map.get(&key) {
        return Arc::clone(plan);
    }
    let plan = Arc::new(ForwardPlan::compile_from(net, entry, entry_dims));
    if map.len() >= PLAN_CACHE_CAP {
        map.clear();
    }
    map.insert(key, Arc::clone(&plan));
    plan
}
