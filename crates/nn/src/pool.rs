//! Spatial pooling layers.

use ftclip_tensor::{conv_output_size, Tensor};

/// Max pooling over NCHW feature maps.
///
/// # Example
///
/// ```
/// use ftclip_nn::MaxPool2d;
/// use ftclip_tensor::Tensor;
///
/// let pool = MaxPool2d::new(2, 2);
/// let y = pool.forward(&Tensor::zeros(&[1, 3, 8, 8]));
/// assert_eq!(y.shape().dims(), &[1, 3, 4, 4]);
/// ```
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    /// Per-output linear index of the winning input element, cached by
    /// `forward_train` for the backward scatter.
    cache: Option<(Vec<usize>, Vec<usize>)>, // (input shape as 4 dims flattened, argmax indices)
}

impl MaxPool2d {
    /// Creates a max-pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0` or `stride == 0`.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0 && stride > 0, "kernel and stride must be positive");
        MaxPool2d { kernel, stride, cache: None }
    }

    /// Pooling window size.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Pooling stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    fn pool(&self, x: &Tensor, record: bool) -> (Tensor, Vec<usize>) {
        let (n, c, h, w) = x.shape().as_nchw();
        let oh = conv_output_size(h, self.kernel, self.stride, 0);
        let ow = conv_output_size(w, self.kernel, self.stride, 0);
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let mut arg = if record { vec![0usize; n * c * oh * ow] } else { Vec::new() };
        let src = x.data();
        let dst = out.data_mut();
        let mut o = 0usize;
        for ni in 0..n {
            for ci in 0..c {
                let plane = (ni * c + ci) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = plane + oy * self.stride * w + ox * self.stride;
                        for ky in 0..self.kernel {
                            let iy = oy * self.stride + ky;
                            if iy >= h {
                                break;
                            }
                            for kx in 0..self.kernel {
                                let ix = ox * self.stride + kx;
                                if ix >= w {
                                    break;
                                }
                                let idx = plane + iy * w + ix;
                                let v = src[idx];
                                if v > best {
                                    best = v;
                                    best_idx = idx;
                                }
                            }
                        }
                        dst[o] = best;
                        if record {
                            arg[o] = best_idx;
                        }
                        o += 1;
                    }
                }
            }
        }
        (out, arg)
    }

    /// Inference forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank 4 or smaller than the pooling window.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.pool(x, false).0
    }

    /// Training forward pass; caches argmax indices for the backward scatter.
    pub fn forward_train(&mut self, x: &Tensor) -> Tensor {
        let (y, arg) = self.pool(x, true);
        self.cache = Some((x.shape().dims().to_vec(), arg));
        y
    }

    /// Backward pass: routes each output gradient to the input element that
    /// won the max.
    ///
    /// # Panics
    ///
    /// Panics if called before [`MaxPool2d::forward_train`].
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (in_dims, arg) = self.cache.take().expect("backward called before forward_train");
        assert_eq!(grad_out.len(), arg.len(), "grad shape mismatch");
        let mut grad_in = Tensor::zeros(&in_dims);
        let gi = grad_in.data_mut();
        for (o, &idx) in arg.iter().enumerate() {
            gi[idx] += grad_out.data()[o];
        }
        grad_in
    }

    /// Drops any cached training state.
    pub fn clear_cache(&mut self) {
        self.cache = None;
    }
}

/// Average pooling over NCHW feature maps.
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    kernel: usize,
    stride: usize,
    cache: Option<Vec<usize>>, // input dims
}

impl AvgPool2d {
    /// Creates an average-pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel == 0` or `stride == 0`.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0 && stride > 0, "kernel and stride must be positive");
        AvgPool2d { kernel, stride, cache: None }
    }

    /// Pooling window size.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Pooling stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Inference forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank 4 or smaller than the pooling window.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let (n, c, h, w) = x.shape().as_nchw();
        let oh = conv_output_size(h, self.kernel, self.stride, 0);
        let ow = conv_output_size(w, self.kernel, self.stride, 0);
        let norm = 1.0 / (self.kernel * self.kernel) as f32;
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let src = x.data();
        let dst = out.data_mut();
        let mut o = 0usize;
        for ni in 0..n {
            for ci in 0..c {
                let plane = (ni * c + ci) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f32;
                        for ky in 0..self.kernel {
                            let iy = oy * self.stride + ky;
                            if iy >= h {
                                continue;
                            }
                            for kx in 0..self.kernel {
                                let ix = ox * self.stride + kx;
                                if ix >= w {
                                    continue;
                                }
                                acc += src[plane + iy * w + ix];
                            }
                        }
                        dst[o] = acc * norm;
                        o += 1;
                    }
                }
            }
        }
        out
    }

    /// Training forward pass; caches the input shape.
    pub fn forward_train(&mut self, x: &Tensor) -> Tensor {
        self.cache = Some(x.shape().dims().to_vec());
        self.forward(x)
    }

    /// Backward pass: spreads each output gradient uniformly over its window.
    ///
    /// # Panics
    ///
    /// Panics if called before [`AvgPool2d::forward_train`].
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let in_dims = self.cache.take().expect("backward called before forward_train");
        let (n, c, h, w) = (in_dims[0], in_dims[1], in_dims[2], in_dims[3]);
        let (gn, gc, oh, ow) = grad_out.shape().as_nchw();
        assert_eq!((gn, gc), (n, c), "grad shape mismatch");
        let norm = 1.0 / (self.kernel * self.kernel) as f32;
        let mut grad_in = Tensor::zeros(&in_dims);
        let gi = grad_in.data_mut();
        let go = grad_out.data();
        let mut o = 0usize;
        for ni in 0..n {
            for ci in 0..c {
                let plane = (ni * c + ci) * h * w;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = go[o] * norm;
                        o += 1;
                        for ky in 0..self.kernel {
                            let iy = oy * self.stride + ky;
                            if iy >= h {
                                continue;
                            }
                            for kx in 0..self.kernel {
                                let ix = ox * self.stride + kx;
                                if ix >= w {
                                    continue;
                                }
                                gi[plane + iy * w + ix] += g;
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    /// Drops any cached training state.
    pub fn clear_cache(&mut self) {
        self.cache = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_known_values() {
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let pool = MaxPool2d::new(2, 2);
        let y = pool.forward(&x);
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let mut pool = MaxPool2d::new(2, 2);
        pool.forward_train(&x);
        let g = pool.backward(&Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]).unwrap());
        assert_eq!(g.data(), &[0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn maxpool_propagates_huge_faulty_values() {
        // A faulty high-intensity activation survives max pooling — part of
        // why faults propagate to the output (paper §III).
        let mut x = Tensor::ones(&[1, 1, 4, 4]);
        x.data_mut()[5] = 1e30;
        let y = MaxPool2d::new(2, 2).forward(&x);
        assert_eq!(y.max(), 1e30);
    }

    #[test]
    fn avgpool_known_values() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 1, 2, 2]).unwrap();
        let y = AvgPool2d::new(2, 2).forward(&x);
        assert_eq!(y.data(), &[4.0]);
    }

    #[test]
    fn avgpool_backward_uniform() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 1, 2, 2]).unwrap();
        let mut pool = AvgPool2d::new(2, 2);
        pool.forward_train(&x);
        let g = pool.backward(&Tensor::from_vec(vec![8.0], &[1, 1, 1, 1]).unwrap());
        assert_eq!(g.data(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn pool_shapes() {
        let x = Tensor::zeros(&[2, 3, 9, 9]);
        assert_eq!(MaxPool2d::new(3, 3).forward(&x).shape().dims(), &[2, 3, 3, 3]);
        assert_eq!(AvgPool2d::new(2, 2).forward(&x).shape().dims(), &[2, 3, 4, 4]);
    }

    #[test]
    fn maxpool_gradient_check() {
        // values separated by ≥ 0.05 so finite differences never flip the max
        let vals: Vec<f32> = (0..32).map(|i| ((i * 13) % 32) as f32 * 0.05).collect();
        let x = Tensor::from_vec(vals, &[1, 2, 4, 4]).unwrap();
        let mut pool = MaxPool2d::new(2, 2);
        let y = pool.forward_train(&x);
        let gx = pool.backward(&Tensor::ones(y.shape().dims()));
        let eps = 1e-3;
        let mut xp = x.clone();
        for i in 0..x.len() {
            let orig = x.data()[i];
            xp.data_mut()[i] = orig + eps;
            let lp = pool.forward(&xp).sum();
            xp.data_mut()[i] = orig - eps;
            let lm = pool.forward(&xp).sum();
            xp.data_mut()[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - gx.data()[i]).abs() < 1e-2, "dx[{i}]");
        }
    }
}
