//! Parameter descriptors shared by the optimizers and the fault injector.

use ftclip_tensor::Tensor;

/// Whether a parameter tensor holds weights or biases.
///
/// The paper's fault model corrupts the **weight memory**; biases can be
/// included via `ftclip-fault`'s injection-target configuration as an
/// ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamKind {
    /// Multiplicative parameters (conv filters, FC matrices).
    Weight,
    /// Additive parameters.
    Bias,
}

impl std::fmt::Display for ParamKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamKind::Weight => write!(f, "weight"),
            ParamKind::Bias => write!(f, "bias"),
        }
    }
}

/// A mutable view of one parameter tensor and its gradient accumulator.
///
/// Produced by [`crate::Sequential::params_mut`]; consumed by the optimizers.
/// The `layer` index and `kind` identify the parameter stably across calls,
/// which is what lets optimizers key their per-parameter state by position.
#[derive(Debug)]
pub struct ParamRef<'a> {
    /// Index of the owning layer within the network.
    pub layer: usize,
    /// Weight or bias.
    pub kind: ParamKind,
    /// The parameter values.
    pub values: &'a mut Tensor,
    /// The gradient accumulated by the latest backward pass.
    pub grad: &'a mut Tensor,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_display() {
        assert_eq!(ParamKind::Weight.to_string(), "weight");
        assert_eq!(ParamKind::Bias.to_string(), "bias");
    }

    #[test]
    fn param_ref_is_constructible() {
        let mut v = Tensor::zeros(&[2]);
        let mut g = Tensor::zeros(&[2]);
        let p = ParamRef {
            layer: 0,
            kind: ParamKind::Weight,
            values: &mut v,
            grad: &mut g,
        };
        assert_eq!(p.values.len(), p.grad.len());
    }
}
