//! Activation functions, including the paper's clipped variants.
//!
//! The FT-ClipAct mitigation (paper §IV-A) replaces unbounded activations
//! with clipped versions that map **high-intensity (possibly faulty) values
//! to zero**:
//!
//! ```text
//! f(x) = x   if 0 ≤ x ≤ T
//!        0   otherwise
//! ```
//!
//! [`Activation::SaturatedRelu`] (clip *to* the threshold, ReLU6-style) is
//! also provided as an ablation: the paper argues mapping to zero is the
//! right choice because a saturated faulty value still carries maximal
//! (wrong) intensity, while zero is neutral.

use ftclip_tensor::Tensor;

/// An elementwise activation function.
///
/// # Example
///
/// ```
/// use ftclip_nn::Activation;
///
/// let clipped = Activation::ClippedRelu { threshold: 2.0 };
/// assert_eq!(clipped.apply_scalar(1.5), 1.5);
/// assert_eq!(clipped.apply_scalar(2.5), 0.0); // faulty high-intensity → 0
/// assert_eq!(clipped.apply_scalar(-1.0), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Activation {
    /// The identity function (used where a computational layer should be
    /// followed by no non-linearity but the site must still exist).
    Identity,
    /// Standard rectified linear unit: `max(0, x)`.
    Relu,
    /// The paper's clipped ReLU: `x` on `[0, threshold]`, `0` elsewhere.
    ClippedRelu {
        /// The clipping threshold `T` (strictly positive, finite).
        threshold: f32,
    },
    /// Saturated ("ReLU6-style") variant: `min(max(0, x), threshold)`.
    /// Ablation only — not the paper's proposal.
    SaturatedRelu {
        /// The saturation threshold.
        threshold: f32,
    },
    /// Leaky ReLU: `x` for `x ≥ 0`, `slope·x` otherwise.
    LeakyRelu {
        /// Negative-side slope (typically 0.01).
        slope: f32,
    },
    /// Clipped Leaky ReLU (the generalization mentioned in paper §IV-A):
    /// `slope·x` for `x < 0`, `x` on `[0, threshold]`, `0` above.
    ClippedLeakyRelu {
        /// Negative-side slope.
        slope: f32,
        /// The clipping threshold `T`.
        threshold: f32,
    },
}

impl Activation {
    /// Applies the activation to a single value.
    pub fn apply_scalar(&self, x: f32) -> f32 {
        match *self {
            Activation::Identity => x,
            Activation::Relu => {
                if x > 0.0 {
                    x
                } else {
                    0.0
                }
            }
            Activation::ClippedRelu { threshold } => {
                if x >= 0.0 && x <= threshold {
                    x
                } else {
                    0.0
                }
            }
            Activation::SaturatedRelu { threshold } => x.clamp(0.0, threshold),
            Activation::LeakyRelu { slope } => {
                if x >= 0.0 {
                    x
                } else {
                    slope * x
                }
            }
            Activation::ClippedLeakyRelu { slope, threshold } => {
                if x < 0.0 {
                    slope * x
                } else if x <= threshold {
                    x
                } else {
                    0.0
                }
            }
        }
    }

    /// Derivative with respect to the input, evaluated at pre-activation `x`.
    ///
    /// At the (measure-zero) kink points the subgradient `0` is used, matching
    /// common deep-learning practice.
    pub fn derivative(&self, x: f32) -> f32 {
        match *self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::ClippedRelu { threshold } => {
                if x > 0.0 && x < threshold {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::SaturatedRelu { threshold } => {
                if x > 0.0 && x < threshold {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu { slope } => {
                if x > 0.0 {
                    1.0
                } else {
                    slope
                }
            }
            Activation::ClippedLeakyRelu { slope, threshold } => {
                if x < 0.0 {
                    slope
                } else if x < threshold {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Applies the activation elementwise to a tensor.
    pub fn apply(&self, x: &Tensor) -> Tensor {
        x.map(|v| self.apply_scalar(v))
    }

    /// The clipping threshold, when this is a clipped/saturated variant.
    pub fn threshold(&self) -> Option<f32> {
        match *self {
            Activation::ClippedRelu { threshold }
            | Activation::SaturatedRelu { threshold }
            | Activation::ClippedLeakyRelu { threshold, .. } => Some(threshold),
            _ => None,
        }
    }

    /// Returns a copy of `self` with the threshold replaced, when this is a
    /// clipped/saturated variant; `None` otherwise.
    pub fn with_threshold(&self, threshold: f32) -> Option<Activation> {
        match *self {
            Activation::ClippedRelu { .. } => Some(Activation::ClippedRelu { threshold }),
            Activation::SaturatedRelu { .. } => Some(Activation::SaturatedRelu { threshold }),
            Activation::ClippedLeakyRelu { slope, .. } => {
                Some(Activation::ClippedLeakyRelu { slope, threshold })
            }
            _ => None,
        }
    }

    /// The clipped counterpart of an unbounded activation (paper Step 2).
    ///
    /// `Relu` becomes `ClippedRelu`, `LeakyRelu` becomes `ClippedLeakyRelu`;
    /// already-clipped variants get the new threshold; `Identity` is returned
    /// unchanged (it is bounded by construction of its surrounding layers and
    /// the paper never clips it).
    pub fn clipped(&self, threshold: f32) -> Activation {
        match *self {
            Activation::Identity => Activation::Identity,
            Activation::Relu | Activation::ClippedRelu { .. } => Activation::ClippedRelu { threshold },
            Activation::SaturatedRelu { .. } => Activation::SaturatedRelu { threshold },
            Activation::LeakyRelu { slope } | Activation::ClippedLeakyRelu { slope, .. } => {
                Activation::ClippedLeakyRelu { slope, threshold }
            }
        }
    }

    /// `true` for variants that bound their output range.
    pub fn is_clipped(&self) -> bool {
        self.threshold().is_some()
    }
}

impl Default for Activation {
    /// Defaults to [`Activation::Relu`], the paper's baseline activation.
    fn default() -> Self {
        Activation::Relu
    }
}

impl std::fmt::Display for Activation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Activation::Identity => write!(f, "identity"),
            Activation::Relu => write!(f, "relu"),
            Activation::ClippedRelu { threshold } => write!(f, "clipped-relu(T={threshold})"),
            Activation::SaturatedRelu { threshold } => write!(f, "saturated-relu(T={threshold})"),
            Activation::LeakyRelu { slope } => write!(f, "leaky-relu({slope})"),
            Activation::ClippedLeakyRelu { slope, threshold } => {
                write!(f, "clipped-leaky-relu({slope},T={threshold})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_basic() {
        assert_eq!(Activation::Relu.apply_scalar(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply_scalar(3.0), 3.0);
    }

    #[test]
    fn clipped_relu_maps_high_values_to_zero() {
        let a = Activation::ClippedRelu { threshold: 4.0 };
        assert_eq!(a.apply_scalar(4.0), 4.0);
        assert_eq!(a.apply_scalar(4.0001), 0.0);
        assert_eq!(a.apply_scalar(1e30), 0.0);
        assert_eq!(a.apply_scalar(f32::INFINITY), 0.0);
    }

    #[test]
    fn clipped_relu_handles_nan_as_faulty() {
        // NaN fails both comparisons, so a NaN activation (produced by
        // inf − inf in a faulted dot product) is squashed to zero.
        let a = Activation::ClippedRelu { threshold: 4.0 };
        assert_eq!(a.apply_scalar(f32::NAN), 0.0);
    }

    #[test]
    fn saturated_relu_clamps_instead() {
        let a = Activation::SaturatedRelu { threshold: 4.0 };
        assert_eq!(a.apply_scalar(1e30), 4.0);
        assert_eq!(a.apply_scalar(-2.0), 0.0);
    }

    #[test]
    fn leaky_and_clipped_leaky() {
        let l = Activation::LeakyRelu { slope: 0.1 };
        assert!((l.apply_scalar(-2.0) + 0.2).abs() < 1e-6);
        let cl = Activation::ClippedLeakyRelu { slope: 0.1, threshold: 1.0 };
        assert!((cl.apply_scalar(-2.0) + 0.2).abs() < 1e-6);
        assert_eq!(cl.apply_scalar(0.5), 0.5);
        assert_eq!(cl.apply_scalar(2.0), 0.0);
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let acts = [
            Activation::Relu,
            Activation::ClippedRelu { threshold: 2.0 },
            Activation::SaturatedRelu { threshold: 2.0 },
            Activation::LeakyRelu { slope: 0.05 },
            Activation::ClippedLeakyRelu { slope: 0.05, threshold: 2.0 },
            Activation::Identity,
        ];
        let eps = 1e-3f32;
        for a in acts {
            // probe away from kinks
            for &x in &[-1.5f32, -0.7, 0.3, 1.1, 1.7, 2.5, 3.5] {
                let num = (a.apply_scalar(x + eps) - a.apply_scalar(x - eps)) / (2.0 * eps);
                let ana = a.derivative(x);
                assert!(
                    (num - ana).abs() < 1e-2,
                    "{a}: derivative mismatch at {x}: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn clipped_constructor_maps_families() {
        assert_eq!(Activation::Relu.clipped(3.0), Activation::ClippedRelu { threshold: 3.0 });
        assert_eq!(
            Activation::LeakyRelu { slope: 0.1 }.clipped(3.0),
            Activation::ClippedLeakyRelu { slope: 0.1, threshold: 3.0 }
        );
        assert_eq!(Activation::Identity.clipped(3.0), Activation::Identity);
    }

    #[test]
    fn with_threshold_updates_only_clipped() {
        assert_eq!(
            Activation::ClippedRelu { threshold: 1.0 }.with_threshold(9.0),
            Some(Activation::ClippedRelu { threshold: 9.0 })
        );
        assert_eq!(Activation::Relu.with_threshold(9.0), None);
    }

    #[test]
    fn apply_tensor_elementwise() {
        let a = Activation::ClippedRelu { threshold: 1.0 };
        let x = Tensor::from_slice(&[-1.0, 0.5, 2.0]);
        assert_eq!(a.apply(&x).data(), &[0.0, 0.5, 0.0]);
    }

    #[test]
    fn display_nonempty() {
        for a in [Activation::Relu, Activation::ClippedRelu { threshold: 1.0 }] {
            assert!(!a.to_string().is_empty());
        }
    }
}
