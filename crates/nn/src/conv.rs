//! 2-D convolution layer (im2col + matmul lowering).

use ftclip_tensor::{
    col2im, im2col_batch, im2col_batch_into, matmul_into, matmul_nt, matmul_tn, Conv2dGeometry, Tensor,
};
use rand::Rng;

use crate::Scratch;

/// A 2-D convolution over NCHW feature maps.
///
/// The filter bank is stored as a `[out_channels, in_channels·k·k]` matrix so
/// that the forward pass is a single matrix product per batch item, and so
/// that the fault injector sees one contiguous weight memory per layer —
/// exactly the paper's model of parameters "mapped to memory" (Fig. 1a of the
/// paper).
///
/// # Example
///
/// ```
/// use ftclip_nn::Conv2d;
/// use ftclip_tensor::Tensor;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng); // 3→8 channels, 3×3 "same"
/// let x = Tensor::zeros(&[2, 3, 16, 16]);
/// let y = conv.forward(&x);
/// assert_eq!(y.shape().dims(), &[2, 8, 16, 16]);
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    geom: Conv2dGeometry,
    pub(crate) weight: Tensor,
    pub(crate) bias: Tensor,
    pub(crate) grad_weight: Tensor,
    pub(crate) grad_bias: Tensor,
    /// Cached by `forward_train` for the backward pass.
    cache: Option<TrainCache>,
}

#[derive(Debug, Clone)]
struct TrainCache {
    /// The input batch.
    input: Tensor,
    /// Batched im2col matrix `[c·k·k, n·oh·ow]`.
    cols: Tensor,
}

impl Conv2d {
    /// Creates a convolution with He-normal weights and zero biases.
    ///
    /// # Panics
    ///
    /// Panics if any of `in_channels`, `out_channels`, `kernel`, `stride`
    /// is zero.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut R,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0, "channel counts must be positive");
        let geom = Conv2dGeometry::new(kernel, stride, pad);
        let fan_in = in_channels * kernel * kernel;
        let weight = ftclip_tensor::he_normal(&[out_channels, fan_in], fan_in, rng);
        Conv2d {
            in_channels,
            out_channels,
            geom,
            grad_weight: Tensor::zeros(&[out_channels, fan_in]),
            grad_bias: Tensor::zeros(&[out_channels]),
            bias: Tensor::zeros(&[out_channels]),
            weight,
            cache: None,
        }
    }

    /// Rebuilds a convolution from stored parameters (deserialization).
    ///
    /// # Panics
    ///
    /// Panics if the parameter shapes are inconsistent with the geometry.
    pub fn from_parts(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        weight: Tensor,
        bias: Tensor,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        assert_eq!(weight.shape().dims(), &[out_channels, fan_in], "conv weight shape mismatch");
        assert_eq!(bias.shape().dims(), &[out_channels], "conv bias shape mismatch");
        Conv2d {
            in_channels,
            out_channels,
            geom: Conv2dGeometry::new(kernel, stride, pad),
            grad_weight: Tensor::zeros(&[out_channels, fan_in]),
            grad_bias: Tensor::zeros(&[out_channels]),
            weight,
            bias,
            cache: None,
        }
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Kernel/stride/padding geometry.
    pub fn geometry(&self) -> Conv2dGeometry {
        self.geom
    }

    /// The filter bank as a `[out_channels, in_channels·k·k]` matrix.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The per-output-channel biases.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    /// Computes the batched product `W · col_all` and scatters it into NCHW
    /// layout with bias applied.
    fn forward_from_cols(&self, cols: &Tensor, n: usize, oh: usize, ow: usize) -> Tensor {
        let mut out_mat = Tensor::zeros(&[self.out_channels, n * oh * ow]);
        matmul_into(&self.weight, cols, &mut out_mat);
        let mut out = Tensor::zeros(&[n, self.out_channels, oh, ow]);
        self.scatter_with_bias(out_mat.data(), n, oh * ow, out.data_mut());
        out
    }

    /// Scatters the `[oc, n·L]` product matrix into n-major NCHW layout,
    /// adding the per-channel bias. Writes every element of `dst`.
    fn scatter_with_bias(&self, src: &[f32], n: usize, l: usize, dst: &mut [f32]) {
        let total_cols = n * l;
        for i in 0..n {
            for oc in 0..self.out_channels {
                let b = self.bias.data()[oc];
                let src_base = oc * total_cols + i * l;
                let dst_base = (i * self.out_channels + oc) * l;
                for j in 0..l {
                    dst[dst_base + j] = src[src_base + j] + b;
                }
            }
        }
    }

    /// Inference forward pass (batched im2col + one matrix product).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank 4 or its channel count differs from
    /// `in_channels`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.forward_scratch(x, &mut Scratch::new())
    }

    /// [`Conv2d::forward`] drawing the im2col column matrix, the product
    /// matrix and the output from a reusable [`Scratch`] arena — the
    /// allocation-free kernel of the batched evaluation loop. Bit-identical
    /// to the allocating path.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank 4 or its channel count differs from
    /// `in_channels`.
    pub fn forward_scratch(&self, x: &Tensor, scratch: &mut Scratch) -> Tensor {
        let (n, c, h, w) = x.shape().as_nchw();
        assert_eq!(c, self.in_channels, "conv input channel mismatch");
        let (oh, ow) = self.geom.output_size(h, w);
        let k = self.geom.kernel;
        let rows = self.in_channels * k * k;
        let l = oh * ow;
        let total_cols = n * l;

        // cols and out_mat live only within this call; their storage cycles
        // back into the arena for the next layer or batch
        let mut cols_buf = scratch.zeroed(rows * total_cols);
        im2col_batch_into(x, self.geom, &mut cols_buf);
        let cols = Tensor::from_vec(cols_buf, &[rows, total_cols]).expect("im2col volume matches");
        let mut out_mat = Tensor::from_vec(
            scratch.zeroed(self.out_channels * total_cols),
            &[self.out_channels, total_cols],
        )
        .expect("product volume matches");
        matmul_into(&self.weight, &cols, &mut out_mat);
        scratch.recycle(cols.into_vec());

        let mut out_buf = scratch.buffer(n * self.out_channels * l);
        self.scatter_with_bias(out_mat.data(), n, l, &mut out_buf);
        scratch.recycle(out_mat.into_vec());
        Tensor::from_vec(out_buf, &[n, self.out_channels, oh, ow]).expect("output volume matches")
    }

    /// Training forward pass: same as [`Conv2d::forward`] but caches the
    /// input and the unrolled patch matrix for [`Conv2d::backward`].
    pub fn forward_train(&mut self, x: &Tensor) -> Tensor {
        let (n, c, h, w) = x.shape().as_nchw();
        assert_eq!(c, self.in_channels, "conv input channel mismatch");
        let (oh, ow) = self.geom.output_size(h, w);
        let cols = im2col_batch(x, self.geom);
        let out = self.forward_from_cols(&cols, n, oh, ow);
        self.cache = Some(TrainCache { input: x.clone(), cols });
        out
    }

    /// Backward pass: accumulates weight/bias gradients and returns the
    /// gradient with respect to the input.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Conv2d::forward_train`] or with a gradient
    /// whose shape does not match that forward output.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("backward called before forward_train");
        let (n, c, h, w) = cache.input.shape().as_nchw();
        let (gn, goc, goh, gow) = grad_out.shape().as_nchw();
        let (oh, ow) = self.geom.output_size(h, w);
        assert_eq!((gn, goc, goh, gow), (n, self.out_channels, oh, ow), "grad shape mismatch");
        let l = oh * ow;
        let total_cols = n * l;
        // assemble g_all: [oc, n·L] from the n-major grad layout
        let mut g_all = Tensor::zeros(&[self.out_channels, total_cols]);
        {
            let src = grad_out.data();
            let dst = g_all.data_mut();
            for i in 0..n {
                for oc in 0..self.out_channels {
                    let src_base = (i * self.out_channels + oc) * l;
                    let dst_base = oc * total_cols + i * l;
                    dst[dst_base..dst_base + l].copy_from_slice(&src[src_base..src_base + l]);
                }
            }
        }
        // dW += g_all · col_allᵀ
        let dw = matmul_nt(&g_all, &cache.cols);
        self.grad_weight.axpy(1.0, &dw);
        // db += row sums of g_all
        for oc in 0..self.out_channels {
            let s: f32 = g_all.data()[oc * total_cols..(oc + 1) * total_cols].iter().sum();
            self.grad_bias.data_mut()[oc] += s;
        }
        // dcol_all = Wᵀ · g_all, then per-image col2im on contiguous gathers
        let dcol_all = matmul_tn(&self.weight, &g_all);
        let rows = self.in_channels * self.geom.kernel * self.geom.kernel;
        let mut grad_in = Tensor::zeros(&[n, c, h, w]);
        let per_in = c * h * w;
        let mut dcol_i = Tensor::zeros(&[rows, l]);
        for i in 0..n {
            {
                let src = dcol_all.data();
                let dst = dcol_i.data_mut();
                for r in 0..rows {
                    let src_base = r * total_cols + i * l;
                    dst[r * l..(r + 1) * l].copy_from_slice(&src[src_base..src_base + l]);
                }
            }
            let dx = col2im(&dcol_i, c, h, w, self.geom);
            grad_in.data_mut()[i * per_in..(i + 1) * per_in].copy_from_slice(dx.data());
        }
        grad_in
    }

    /// Drops any cached training state.
    pub fn clear_cache(&mut self) {
        self.cache = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    #[test]
    fn output_shape_same_padding() {
        let conv = Conv2d::new(3, 4, 3, 1, 1, &mut rng());
        let y = conv.forward(&Tensor::zeros(&[2, 3, 8, 8]));
        assert_eq!(y.shape().dims(), &[2, 4, 8, 8]);
    }

    #[test]
    fn output_shape_stride2() {
        let conv = Conv2d::new(1, 2, 3, 2, 1, &mut rng());
        let y = conv.forward(&Tensor::zeros(&[1, 1, 8, 8]));
        assert_eq!(y.shape().dims(), &[1, 2, 4, 4]);
    }

    #[test]
    fn known_convolution_value() {
        // 1×1 input channel, 2×2 kernel of ones, no pad: output = patch sums.
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, &mut rng());
        conv.weight.fill(1.0);
        conv.bias.fill(0.5);
        let x = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 1, 3, 3]).unwrap();
        let y = conv.forward(&x);
        // patches: [1,2,4,5]=12, [2,3,5,6]=16, [4,5,7,8]=24, [5,6,8,9]=28; +bias
        assert_eq!(y.data(), &[12.5, 16.5, 24.5, 28.5]);
    }

    #[test]
    fn bias_applied_per_channel() {
        let mut conv = Conv2d::new(1, 2, 1, 1, 0, &mut rng());
        conv.weight.fill(0.0);
        conv.bias.data_mut()[0] = 1.0;
        conv.bias.data_mut()[1] = -1.0;
        let y = conv.forward(&Tensor::zeros(&[1, 1, 2, 2]));
        assert_eq!(y.at4(0, 0, 0, 0), 1.0);
        assert_eq!(y.at4(0, 1, 1, 1), -1.0);
    }

    #[test]
    fn forward_and_forward_train_agree() {
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng());
        let x = ftclip_tensor::uniform_init(&[2, 2, 5, 5], -1.0, 1.0, &mut rng());
        let a = conv.forward(&x);
        let b = conv.forward_train(&x);
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn gradient_check_weights() {
        // numerical vs analytic gradient on a tiny conv
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, &mut rng());
        let x = ftclip_tensor::uniform_init(&[1, 1, 3, 3], -1.0, 1.0, &mut rng());
        // loss = sum(conv(x)); dL/dy = ones
        let y = conv.forward_train(&x);
        let ones = Tensor::ones(y.shape().dims());
        conv.backward(&ones);
        let eps = 1e-3;
        for wi in 0..conv.weight.len() {
            let orig = conv.weight.data()[wi];
            conv.weight.data_mut()[wi] = orig + eps;
            let lp = conv.forward(&x).sum();
            conv.weight.data_mut()[wi] = orig - eps;
            let lm = conv.forward(&x).sum();
            conv.weight.data_mut()[wi] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = conv.grad_weight.data()[wi];
            assert!((num - ana).abs() < 1e-2, "dW[{wi}]: numeric {num} vs analytic {ana}");
        }
    }

    #[test]
    fn gradient_check_input() {
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, &mut rng());
        let x = ftclip_tensor::uniform_init(&[1, 1, 4, 4], -1.0, 1.0, &mut rng());
        let y = conv.forward_train(&x);
        let ones = Tensor::ones(y.shape().dims());
        let gx = conv.backward(&ones);
        let eps = 1e-3;
        let mut xp = x.clone();
        for xi in 0..x.len() {
            let orig = x.data()[xi];
            xp.data_mut()[xi] = orig + eps;
            let lp = conv.forward(&xp).sum();
            xp.data_mut()[xi] = orig - eps;
            let lm = conv.forward(&xp).sum();
            xp.data_mut()[xi] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = gx.data()[xi];
            assert!((num - ana).abs() < 1e-2, "dx[{xi}]: numeric {num} vs analytic {ana}");
        }
    }

    #[test]
    fn gradient_check_bias() {
        let mut conv = Conv2d::new(1, 2, 2, 1, 0, &mut rng());
        let x = ftclip_tensor::uniform_init(&[2, 1, 3, 3], -1.0, 1.0, &mut rng());
        let y = conv.forward_train(&x);
        conv.backward(&Tensor::ones(y.shape().dims()));
        // dL/db_oc = number of output pixels × batch, since dL/dy = 1
        let (_, _, oh, ow) = y.shape().as_nchw();
        let expect = (2 * oh * ow) as f32;
        for oc in 0..2 {
            assert!((conv.grad_bias.data()[oc] - expect).abs() < 1e-3);
        }
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn rejects_wrong_channel_count() {
        let conv = Conv2d::new(3, 4, 3, 1, 1, &mut rng());
        conv.forward(&Tensor::zeros(&[1, 2, 8, 8]));
    }

    #[test]
    fn from_parts_roundtrip() {
        let conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng());
        let rebuilt = Conv2d::from_parts(2, 3, 3, 1, 1, conv.weight.clone(), conv.bias.clone());
        let x = ftclip_tensor::uniform_init(&[1, 2, 4, 4], -1.0, 1.0, &mut rng());
        assert!(conv.forward(&x).approx_eq(&rebuilt.forward(&x), 0.0));
    }

    #[test]
    fn faulted_weight_produces_huge_activation() {
        // The paper's key observation: flipping the MSB exponent bit of a
        // small weight produces an astronomically large activation.
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, &mut rng());
        conv.weight.fill(0.01);
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let clean_max = conv.forward(&x).max();
        assert!(clean_max < 1.0);
        // flip bit 30 (MSB of exponent) of the weight word
        let w = conv.weight.data()[0];
        conv.weight.data_mut()[0] = f32::from_bits(w.to_bits() ^ (1 << 30));
        let faulty_max = conv.forward(&x).max();
        assert!(faulty_max > 1e30, "exponent-bit flip should explode the activation, got {faulty_max}");
    }
}
