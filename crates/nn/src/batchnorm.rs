//! 2-D batch normalization.
//!
//! Batch norm is not part of the paper's base models (its "base VGG-16"
//! predates BN-VGG), but it is part of any credible CNN substrate and it
//! materially stabilizes the training of the narrow width-scaled models
//! this reproduction uses. Its scale/shift parameters (γ, β) live in the
//! same parameter memory as weights and biases, so the fault injector can
//! corrupt them too (γ maps to [`crate::ParamKind::Weight`], β to
//! [`crate::ParamKind::Bias`]).

use ftclip_tensor::Tensor;

/// Per-channel batch normalization over NCHW feature maps:
/// `y = γ·(x − μ)/√(σ² + ε) + β`.
///
/// Training mode normalizes with batch statistics and maintains running
/// estimates (momentum update); inference mode uses the running estimates.
///
/// # Example
///
/// ```
/// use ftclip_nn::BatchNorm2d;
/// use ftclip_tensor::Tensor;
///
/// let bn = BatchNorm2d::new(3);
/// let y = bn.forward(&Tensor::ones(&[2, 3, 4, 4]));
/// assert_eq!(y.shape().dims(), &[2, 3, 4, 4]);
/// ```
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    channels: usize,
    eps: f32,
    momentum: f32,
    pub(crate) gamma: Tensor,
    pub(crate) beta: Tensor,
    pub(crate) grad_gamma: Tensor,
    pub(crate) grad_beta: Tensor,
    running_mean: Tensor,
    running_var: Tensor,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer with γ = 1, β = 0, ε = 1e-5 and running
    /// statistics initialized to the standard normal.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn new(channels: usize) -> Self {
        Self::with_hyper(channels, 1e-5, 0.1)
    }

    /// Creates a batch-norm layer with explicit ε and running-stats
    /// momentum.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`, `eps <= 0`, or `momentum` is outside
    /// `(0, 1]`.
    pub fn with_hyper(channels: usize, eps: f32, momentum: f32) -> Self {
        assert!(channels > 0, "channel count must be positive");
        assert!(eps > 0.0, "eps must be positive");
        assert!(momentum > 0.0 && momentum <= 1.0, "momentum must be in (0, 1]");
        BatchNorm2d {
            channels,
            eps,
            momentum,
            gamma: Tensor::ones(&[channels]),
            beta: Tensor::zeros(&[channels]),
            grad_gamma: Tensor::zeros(&[channels]),
            grad_beta: Tensor::zeros(&[channels]),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            cache: None,
        }
    }

    /// Rebuilds a layer from stored parameters and running statistics
    /// (deserialization).
    ///
    /// # Panics
    ///
    /// Panics if any tensor's shape differs from `[channels]`.
    pub fn from_parts(
        channels: usize,
        eps: f32,
        momentum: f32,
        gamma: Tensor,
        beta: Tensor,
        running_mean: Tensor,
        running_var: Tensor,
    ) -> Self {
        for (name, t) in [
            ("gamma", &gamma),
            ("beta", &beta),
            ("running_mean", &running_mean),
            ("running_var", &running_var),
        ] {
            assert_eq!(t.shape().dims(), &[channels], "batchnorm {name} shape mismatch");
        }
        BatchNorm2d {
            channels,
            eps,
            momentum,
            grad_gamma: Tensor::zeros(&[channels]),
            grad_beta: Tensor::zeros(&[channels]),
            gamma,
            beta,
            running_mean,
            running_var,
            cache: None,
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Numerical-stability epsilon.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Running-statistics momentum.
    pub fn momentum(&self) -> f32 {
        self.momentum
    }

    /// The scale parameters γ.
    pub fn gamma(&self) -> &Tensor {
        &self.gamma
    }

    /// The shift parameters β.
    pub fn beta(&self) -> &Tensor {
        &self.beta
    }

    /// The running mean estimate.
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// The running variance estimate.
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }

    /// Number of trainable parameters (γ and β; running stats are buffers).
    pub fn param_count(&self) -> usize {
        2 * self.channels
    }

    /// Inference forward pass using the running statistics.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not rank 4 or its channel count differs.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let (n, c, h, w) = x.shape().as_nchw();
        assert_eq!(c, self.channels, "batchnorm channel mismatch");
        let mut y = x.clone();
        let spatial = h * w;
        for ci in 0..c {
            let mean = self.running_mean.data()[ci];
            let inv_std = 1.0 / (self.running_var.data()[ci] + self.eps).sqrt();
            let g = self.gamma.data()[ci];
            let b = self.beta.data()[ci];
            for ni in 0..n {
                let base = (ni * c + ci) * spatial;
                for v in &mut y.data_mut()[base..base + spatial] {
                    *v = g * (*v - mean) * inv_std + b;
                }
            }
        }
        y
    }

    /// Training forward pass: batch statistics + running-stat update, with
    /// the normalized activations cached for [`BatchNorm2d::backward`].
    pub fn forward_train(&mut self, x: &Tensor) -> Tensor {
        let (n, c, h, w) = x.shape().as_nchw();
        assert_eq!(c, self.channels, "batchnorm channel mismatch");
        let spatial = h * w;
        let m = (n * spatial) as f32;
        let mut y = x.clone();
        let mut x_hat = x.clone();
        let mut inv_stds = Vec::with_capacity(c);
        for ci in 0..c {
            // batch mean / var over N×H×W
            let mut sum = 0.0f64;
            let mut sq = 0.0f64;
            for ni in 0..n {
                let base = (ni * c + ci) * spatial;
                for &v in &x.data()[base..base + spatial] {
                    sum += v as f64;
                    sq += (v as f64) * (v as f64);
                }
            }
            let mean = (sum / m as f64) as f32;
            let var = ((sq / m as f64) - (sum / m as f64) * (sum / m as f64)).max(0.0) as f32;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds.push(inv_std);
            // running stats (unbiased variance correction like PyTorch)
            let unbiased = if m > 1.0 { var * m / (m - 1.0) } else { var };
            let rm = &mut self.running_mean.data_mut()[ci];
            *rm = (1.0 - self.momentum) * *rm + self.momentum * mean;
            let rv = &mut self.running_var.data_mut()[ci];
            *rv = (1.0 - self.momentum) * *rv + self.momentum * unbiased;
            let g = self.gamma.data()[ci];
            let b = self.beta.data()[ci];
            for ni in 0..n {
                let base = (ni * c + ci) * spatial;
                for i in base..base + spatial {
                    let xh = (x.data()[i] - mean) * inv_std;
                    x_hat.data_mut()[i] = xh;
                    y.data_mut()[i] = g * xh + b;
                }
            }
        }
        self.cache = Some(BnCache { x_hat, inv_std: inv_stds });
        y
    }

    /// Backward pass: accumulates γ/β gradients and returns `dL/dx`.
    ///
    /// # Panics
    ///
    /// Panics if called before [`BatchNorm2d::forward_train`] or with a
    /// mismatched gradient shape.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("backward called before forward_train");
        let (n, c, h, w) = grad_out.shape().as_nchw();
        assert_eq!(c, self.channels, "grad channel mismatch");
        assert_eq!(cache.x_hat.len(), grad_out.len(), "grad shape mismatch");
        let spatial = h * w;
        let m = (n * spatial) as f32;
        let mut grad_in = grad_out.clone();
        for ci in 0..c {
            let mut sum_g = 0.0f64;
            let mut sum_gx = 0.0f64;
            for ni in 0..n {
                let base = (ni * c + ci) * spatial;
                for i in base..base + spatial {
                    let g = grad_out.data()[i] as f64;
                    sum_g += g;
                    sum_gx += g * cache.x_hat.data()[i] as f64;
                }
            }
            self.grad_gamma.data_mut()[ci] += sum_gx as f32;
            self.grad_beta.data_mut()[ci] += sum_g as f32;
            let gamma = self.gamma.data()[ci];
            let inv_std = cache.inv_std[ci];
            let k = gamma * inv_std / m;
            for ni in 0..n {
                let base = (ni * c + ci) * spatial;
                for i in base..base + spatial {
                    let g = grad_out.data()[i];
                    let xh = cache.x_hat.data()[i];
                    grad_in.data_mut()[i] = k * (m * g - sum_g as f32 - xh * sum_gx as f32);
                }
            }
        }
        grad_in
    }

    /// Drops any cached training state.
    pub fn clear_cache(&mut self) {
        self.cache = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_input() -> Tensor {
        let mut rng = StdRng::seed_from_u64(3);
        ftclip_tensor::uniform_init(&[4, 2, 3, 3], -2.0, 2.0, &mut rng)
    }

    #[test]
    fn train_output_is_normalized() {
        let mut bn = BatchNorm2d::new(2);
        let x = sample_input();
        let y = bn.forward_train(&x);
        let (n, c, h, w) = y.shape().as_nchw();
        for ci in 0..c {
            let mut vals = Vec::new();
            for ni in 0..n {
                for yy in 0..h {
                    for xx in 0..w {
                        vals.push(y.at4(ni, ci, yy, xx));
                    }
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {ci} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {ci} var {var}");
        }
    }

    #[test]
    fn gamma_beta_scale_and_shift() {
        let mut bn = BatchNorm2d::new(1);
        bn.gamma.fill(2.0);
        bn.beta.fill(5.0);
        let x = Tensor::from_vec(vec![-1.0, 1.0, -1.0, 1.0], &[1, 1, 2, 2]).unwrap();
        let y = bn.forward_train(&x);
        let mean = y.mean();
        assert!((mean - 5.0).abs() < 1e-4, "mean shifted to beta, got {mean}");
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm2d::with_hyper(1, 1e-5, 1.0); // momentum 1: adopt batch stats fully
        let x = Tensor::from_vec(vec![9.0, 11.0, 9.0, 11.0], &[1, 1, 2, 2]).unwrap();
        bn.forward_train(&x);
        // running mean now 10; eval on a constant-10 input gives ~0
        let y = bn.forward(&Tensor::filled(&[1, 1, 2, 2], 10.0));
        assert!(y.iter().all(|v| v.abs() < 1e-2), "{y:?}");
    }

    #[test]
    fn gradient_check_input_gamma_beta() {
        let mut bn = BatchNorm2d::new(2);
        let mut rng = StdRng::seed_from_u64(5);
        bn.gamma = ftclip_tensor::uniform_init(&[2], 0.5, 1.5, &mut rng);
        bn.beta = ftclip_tensor::uniform_init(&[2], -0.5, 0.5, &mut rng);
        let x = ftclip_tensor::uniform_init(&[2, 2, 2, 2], -1.0, 1.0, &mut rng);
        // weight the output so the loss isn't invariant to normalization
        let weights = ftclip_tensor::uniform_init(&[16], -1.0, 1.0, &mut rng);
        let loss_of = |bn: &mut BatchNorm2d, x: &Tensor| -> f32 {
            let y = bn.forward_train(x);
            bn.clear_cache();
            y.data().iter().zip(weights.data()).map(|(&a, &b)| a * b).sum()
        };
        let y = bn.forward_train(&x);
        assert_eq!(y.len(), 16);
        let grad_out = Tensor::from_vec(weights.data().to_vec(), &[2, 2, 2, 2]).unwrap();
        let gx = bn.backward(&grad_out);
        let eps = 1e-2;
        // input gradient
        let mut xp = x.clone();
        for i in 0..x.len() {
            let orig = x.data()[i];
            xp.data_mut()[i] = orig + eps;
            let lp = loss_of(&mut bn, &xp);
            xp.data_mut()[i] = orig - eps;
            let lm = loss_of(&mut bn, &xp);
            xp.data_mut()[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - gx.data()[i]).abs() < 2e-2, "dx[{i}]: num {num} vs ana {}", gx.data()[i]);
        }
        // gamma / beta gradients
        for ci in 0..2 {
            let orig = bn.gamma.data()[ci];
            bn.gamma.data_mut()[ci] = orig + eps;
            let lp = loss_of(&mut bn, &x);
            bn.gamma.data_mut()[ci] = orig - eps;
            let lm = loss_of(&mut bn, &x);
            bn.gamma.data_mut()[ci] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - bn.grad_gamma.data()[ci]).abs() < 2e-2, "dgamma[{ci}]");
            let orig_b = bn.beta.data()[ci];
            bn.beta.data_mut()[ci] = orig_b + eps;
            let lp = loss_of(&mut bn, &x);
            bn.beta.data_mut()[ci] = orig_b - eps;
            let lm = loss_of(&mut bn, &x);
            bn.beta.data_mut()[ci] = orig_b;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - bn.grad_beta.data()[ci]).abs() < 2e-2, "dbeta[{ci}]");
        }
    }

    #[test]
    fn from_parts_roundtrip() {
        let mut bn = BatchNorm2d::new(3);
        let x = ftclip_tensor::uniform_init(&[2, 3, 2, 2], -1.0, 1.0, &mut StdRng::seed_from_u64(9));
        bn.forward_train(&x);
        bn.clear_cache();
        let rebuilt = BatchNorm2d::from_parts(
            3,
            bn.eps(),
            bn.momentum(),
            bn.gamma.clone(),
            bn.beta.clone(),
            bn.running_mean.clone(),
            bn.running_var.clone(),
        );
        assert!(bn.forward(&x).approx_eq(&rebuilt.forward(&x), 0.0));
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn rejects_wrong_channels() {
        BatchNorm2d::new(2).forward(&Tensor::zeros(&[1, 3, 2, 2]));
    }
}
