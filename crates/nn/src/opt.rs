//! First-order optimizers.
//!
//! Both optimizers key their per-parameter state by the *position* of the
//! parameter in the [`crate::Sequential::params_mut`] list, which is stable
//! for the lifetime of a network.

use ftclip_tensor::Tensor;

use crate::ParamRef;

/// An optimizer that consumes accumulated gradients and updates parameters.
///
/// The trait is object-safe so trainers can hold a `Box<dyn Optimizer>`.
pub trait Optimizer: Send {
    /// Applies one update step using the gradients currently stored in
    /// `params` and the given learning rate.
    fn step(&mut self, params: &mut [ParamRef<'_>], lr: f32);
}

/// Stochastic gradient descent with momentum and decoupled weight decay.
///
/// # Example
///
/// ```
/// use ftclip_nn::opt::{Optimizer, Sgd};
/// use ftclip_nn::{Layer, Sequential};
///
/// let mut net = Sequential::new(vec![Layer::linear(2, 2, 0)]);
/// let mut opt = Sgd::new(0.9, 5e-4);
/// opt.step(&mut net.params_mut(), 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ momentum < 1` and `weight_decay ≥ 0`.
    pub fn new(momentum: f32, weight_decay: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        Sgd { momentum, weight_decay, velocity: Vec::new() }
    }

    /// Plain SGD without momentum or weight decay.
    pub fn plain() -> Self {
        Sgd::new(0.0, 0.0)
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [ParamRef<'_>], lr: f32) {
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|p| Tensor::zeros(p.values.shape().dims())).collect();
        }
        for (p, v) in params.iter_mut().zip(&mut self.velocity) {
            // decoupled weight decay on weights only (biases are exempt,
            // standard practice)
            if self.weight_decay > 0.0 && p.kind == crate::ParamKind::Weight {
                let w = p.values.clone();
                p.grad.axpy(self.weight_decay, &w);
            }
            if self.momentum > 0.0 {
                v.scale(self.momentum);
                v.axpy(1.0, p.grad);
                p.values.axpy(-lr, v);
            } else {
                let g = p.grad.clone();
                p.values.axpy(-lr, &g);
            }
        }
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with the canonical defaults `β₁=0.9, β₂=0.999, ε=1e-8`.
    pub fn new() -> Self {
        Adam::with_betas(0.9, 0.999, 1e-8)
    }

    /// Creates Adam with explicit hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ β < 1` for both betas and `eps > 0`.
    pub fn with_betas(beta1: f32, beta2: f32, eps: f32) -> Self {
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2), "betas must be in [0, 1)");
        assert!(eps > 0.0, "eps must be positive");
        Adam { beta1, beta2, eps, t: 0, m: Vec::new(), v: Vec::new() }
    }
}

impl Default for Adam {
    fn default() -> Self {
        Adam::new()
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [ParamRef<'_>], lr: f32) {
        if self.m.len() != params.len() {
            self.m = params.iter().map(|p| Tensor::zeros(p.values.shape().dims())).collect();
            self.v = params.iter().map(|p| Tensor::zeros(p.values.shape().dims())).collect();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            for i in 0..p.values.len() {
                let g = p.grad.data()[i];
                let mi = self.beta1 * m.data()[i] + (1.0 - self.beta1) * g;
                let vi = self.beta2 * v.data()[i] + (1.0 - self.beta2) * g * g;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                p.values.data_mut()[i] -= lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Layer, Sequential};

    fn quadratic_grad(params: &mut [ParamRef<'_>]) {
        // d/dw (w²/2) = w
        for p in params.iter_mut() {
            let w = p.values.clone();
            p.grad.fill(0.0);
            p.grad.axpy(1.0, &w);
        }
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let mut net = Sequential::new(vec![Layer::linear(4, 4, 3)]);
        let mut opt = Sgd::plain();
        for _ in 0..200 {
            let mut params = net.params_mut();
            quadratic_grad(&mut params);
            opt.step(&mut params, 0.1);
        }
        let norm: f32 = net.params_mut().iter().map(|p| p.values.norm_sq()).sum();
        assert!(norm < 1e-6, "sgd should converge to zero, norm {norm}");
    }

    #[test]
    fn sgd_momentum_converges_faster_on_quadratic() {
        let run = |mut opt: Sgd, steps: usize| {
            let mut net = Sequential::new(vec![Layer::linear(4, 4, 3)]);
            for _ in 0..steps {
                let mut params = net.params_mut();
                quadratic_grad(&mut params);
                opt.step(&mut params, 0.02);
            }
            net.params_mut().iter().map(|p| p.values.norm_sq()).sum::<f32>()
        };
        let plain = run(Sgd::plain(), 60);
        let momentum = run(Sgd::new(0.9, 0.0), 60);
        assert!(momentum < plain, "momentum {momentum} should beat plain {plain}");
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let mut net = Sequential::new(vec![Layer::linear(4, 4, 3)]);
        let mut opt = Adam::new();
        for _ in 0..500 {
            let mut params = net.params_mut();
            quadratic_grad(&mut params);
            opt.step(&mut params, 0.05);
        }
        let norm: f32 = net.params_mut().iter().map(|p| p.values.norm_sq()).sum();
        assert!(norm < 1e-4, "adam should converge, norm {norm}");
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut net = Sequential::new(vec![Layer::linear(4, 4, 3)]);
        let before: f32 = net.params_mut().iter().map(|p| p.values.norm_sq()).sum();
        let mut opt = Sgd::new(0.0, 0.1);
        for _ in 0..10 {
            let mut params = net.params_mut();
            for p in params.iter_mut() {
                p.grad.fill(0.0);
            }
            opt.step(&mut params, 0.5);
        }
        let after: f32 = net.params_mut().iter().map(|p| p.values.norm_sq()).sum();
        assert!(after < before, "decay should shrink weights");
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn sgd_validates_momentum() {
        Sgd::new(1.5, 0.0);
    }
}
