//! Property-based tests for the CNN engine: activation invariants,
//! serialization roundtrips and loss-function laws.

use ftclip_nn::{
    read_network, write_network, Activation, AvgPool2d, BatchNorm2d, Dropout, Layer, MaxPool2d, Sequential,
};
use ftclip_tensor::Tensor;
use proptest::prelude::*;

fn activation_strategy() -> impl Strategy<Value = Activation> {
    prop_oneof![
        Just(Activation::Identity),
        Just(Activation::Relu),
        (0.1f32..100.0).prop_map(|threshold| Activation::ClippedRelu { threshold }),
        (0.1f32..100.0).prop_map(|threshold| Activation::SaturatedRelu { threshold }),
        (0.001f32..0.5).prop_map(|slope| Activation::LeakyRelu { slope }),
        (0.001f32..0.5, 0.1f32..100.0)
            .prop_map(|(slope, threshold)| Activation::ClippedLeakyRelu { slope, threshold }),
    ]
}

proptest! {
    #[test]
    fn clipped_relu_output_always_in_range(threshold in 0.1f32..50.0, x in -1e9f32..1e9) {
        let a = Activation::ClippedRelu { threshold };
        let y = a.apply_scalar(x);
        prop_assert!((0.0..=threshold).contains(&y), "f({x}) = {y} outside [0, {threshold}]");
    }

    #[test]
    fn clipped_relu_squashes_everything_above_threshold(threshold in 0.1f32..50.0, excess in 0.001f32..1e6) {
        let a = Activation::ClippedRelu { threshold };
        prop_assert_eq!(a.apply_scalar(threshold + excess), 0.0);
    }

    #[test]
    fn saturated_relu_output_always_in_range(threshold in 0.1f32..50.0, x in -1e9f32..1e9) {
        let a = Activation::SaturatedRelu { threshold };
        let y = a.apply_scalar(x);
        prop_assert!((0.0..=threshold).contains(&y));
    }

    #[test]
    fn relu_family_is_idempotent(act in activation_strategy(), x in -100.0f32..100.0) {
        // applying any of these activations twice equals applying once
        // (their ranges are fixed points), except leaky variants on
        // negative values — restrict to the non-negative case there.
        let once = act.apply_scalar(x);
        let twice = act.apply_scalar(once);
        match act {
            Activation::LeakyRelu { .. } | Activation::ClippedLeakyRelu { .. } if once < 0.0 => {}
            _ => prop_assert_eq!(once, twice, "activation {} not idempotent at {}", act, x),
        }
    }

    #[test]
    fn derivative_is_zero_where_clipped(threshold in 0.5f32..50.0, excess in 0.01f32..1e3) {
        let a = Activation::ClippedRelu { threshold };
        prop_assert_eq!(a.derivative(threshold + excess), 0.0);
        prop_assert_eq!(a.derivative(-excess), 0.0);
    }

    #[test]
    fn threshold_update_roundtrip(act in activation_strategy(), t in 0.1f32..100.0) {
        if let Some(updated) = act.with_threshold(t) {
            prop_assert_eq!(updated.threshold(), Some(t));
        } else {
            prop_assert!(act.threshold().is_none());
        }
    }

    #[test]
    fn softmax_rows_sum_to_one(
        rows in 1usize..5,
        cols in 2usize..8,
        seed in 0u64..1000,
    ) {
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i as u64 * 2654435761 + seed) % 2000) as f32 / 100.0 - 10.0)
            .collect();
        let logits = Tensor::from_vec(data, &[rows, cols]).unwrap();
        let probs = ftclip_nn::loss::SoftmaxCrossEntropy::new().softmax(&logits);
        for r in 0..rows {
            let s: f32 = (0..cols).map(|c| probs.at2(r, c)).sum();
            prop_assert!((s - 1.0).abs() < 1e-4, "row {} sums to {}", r, s);
        }
    }

    #[test]
    fn loss_grad_rows_sum_to_zero(
        rows in 1usize..5,
        cols in 2usize..6,
        seed in 0u64..1000,
    ) {
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i as u64 * 1099511628211 + seed) % 600) as f32 / 100.0 - 3.0)
            .collect();
        let logits = Tensor::from_vec(data, &[rows, cols]).unwrap();
        let labels: Vec<usize> = (0..rows).map(|r| (r + seed as usize) % cols).collect();
        let (_, grad) = ftclip_nn::loss::SoftmaxCrossEntropy::new().loss_and_grad(&logits, &labels);
        for r in 0..rows {
            let s: f32 = (0..cols).map(|c| grad.at2(r, c)).sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }
}

fn layer_strategy(seed: u64) -> impl Strategy<Value = Layer> {
    prop_oneof![
        (1usize..4, 1usize..4).prop_map(move |(i, o)| Layer::conv2d(i, o, 3, 1, 1, seed)),
        activation_strategy().prop_map(Layer::activation),
        Just(Layer::MaxPool2d(MaxPool2d::new(2, 2))),
        Just(Layer::AvgPool2d(AvgPool2d::new(2, 2))),
        Just(Layer::flatten()),
        (1usize..8).prop_map(|c| Layer::BatchNorm2d(BatchNorm2d::new(c))),
        (0.0f32..0.9).prop_map(|p| Layer::Dropout(Dropout::new(p))),
        (1usize..20, 1usize..20).prop_map(move |(i, o)| Layer::linear(i, o, seed)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn arbitrary_networks_roundtrip_through_serialization(
        layers in proptest::collection::vec(layer_strategy(99), 1..6)
    ) {
        let net = Sequential::new(layers);
        let mut buf = Vec::new();
        write_network(&net, &mut buf).unwrap();
        let loaded = read_network(buf.as_slice()).unwrap();
        prop_assert_eq!(loaded.len(), net.len());
        prop_assert_eq!(loaded.param_count(), net.param_count());
        prop_assert_eq!(loaded.clip_thresholds(), net.clip_thresholds());
        // parameter data is bit-identical
        let mut a = Vec::new();
        net.visit_params(&mut |_, _, t, _| a.extend(t.data().iter().map(|x| x.to_bits())));
        let mut b = Vec::new();
        loaded.visit_params(&mut |_, _, t, _| b.extend(t.data().iter().map(|x| x.to_bits())));
        prop_assert_eq!(a, b);
    }

    // The deprecated `Sequential` forward shims must keep delegating to the
    // plan engine bit-for-bit until they are removed — this test pins them.
    #[test]
    #[allow(deprecated)]
    fn prefix_suffix_split_is_bitwise_forward_at_every_cut(
        seed in 0u64..1000,
        c1 in 1usize..4,
        c2 in 1usize..4,
        hidden in 1usize..12,
        batch in 1usize..4,
        act in activation_strategy(),
    ) {
        use ftclip_nn::Scratch;
        use rand::SeedableRng;
        let net = Sequential::new(vec![
            Layer::conv2d(1, c1, 3, 1, 1, seed),
            Layer::activation(act),
            Layer::MaxPool2d(MaxPool2d::new(2, 2)),
            Layer::conv2d(c1, c2, 3, 1, 1, seed ^ 1),
            Layer::relu(),
            Layer::flatten(),
            Layer::linear(c2 * 4 * 4, hidden, seed ^ 2),
            Layer::relu(),
            Layer::linear(hidden, 3, seed ^ 3),
        ]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xABCD);
        let x = ftclip_tensor::uniform_init(&[batch, 1, 8, 8], -2.0, 2.0, &mut rng);
        let mut scratch = Scratch::new();
        let full = net.forward_scratch(&x, &mut scratch);
        let full_bits: Vec<u32> = full.data().iter().map(|v| v.to_bits()).collect();
        for cut in 0..=net.len() {
            let prefix = net.forward_prefix(&x, cut);
            let resumed = net.forward_suffix_scratch(&prefix, cut, &mut scratch);
            let bits: Vec<u32> = resumed.data().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(bits, full_bits.clone(), "cut {}", cut);
            prop_assert_eq!(resumed.shape().dims(), full.shape().dims());
        }
        // a three-way span composition (prefix → middle span → suffix)
        // at two derived cuts is bitwise identical too
        let a = (seed as usize) % (net.len() + 1);
        let b = a + (seed as usize / 7) % (net.len() + 1 - a);
        let first = net.forward_prefix(&x, a);
        let middle = net.forward_span_scratch(&first, a, b, &mut scratch);
        let tail = net.forward_suffix_scratch(&middle, b, &mut scratch);
        let bits: Vec<u32> = tail.data().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(bits, full_bits, "spans {}..{}..{}", a, b, net.len());
    }

    #[test]
    fn plan_execute_is_bitwise_identical_to_the_per_layer_engine(
        seed in 0u64..1000,
        c1 in 1usize..4,
        c2 in 1usize..4,
        hidden in 1usize..12,
        batch in 1usize..4,
        act in activation_strategy(),
        with_pool in any::<bool>(),
        threads in prop_oneof![Just(1usize), Just(2usize), Just(4usize)],
    ) {
        use ftclip_nn::{Scratch, Span};
        use ftclip_tensor::with_thread_limit;
        use rand::SeedableRng;
        // random-but-shape-valid stack: fused conv→act(→pool) chains plus
        // the straight-line tail, so the plan exercises fusion, im2col
        // elision and buffer reuse on every case
        let mut layers = vec![Layer::conv2d(1, c1, 3, 1, 1, seed), Layer::activation(act)];
        if with_pool {
            layers.push(Layer::MaxPool2d(MaxPool2d::new(2, 2)));
        }
        layers.extend([
            Layer::conv2d(c1, c2, 3, 1, 1, seed ^ 1),
            Layer::relu(),
            Layer::flatten(),
            Layer::linear(c2 * if with_pool { 16 } else { 64 }, hidden, seed ^ 2),
            Layer::relu(),
            Layer::linear(hidden, 3, seed ^ 3),
        ]);
        let net = Sequential::new(layers);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xABCD);
        let x = ftclip_tensor::uniform_init(&[batch, 1, 8, 8], -2.0, 2.0, &mut rng);

        // the pre-plan reference: every layer standalone, no fusion
        let mut scratch = Scratch::new();
        let mut cur = x.clone();
        for layer in net.layers() {
            let next = layer.forward_scratch(&cur, &mut scratch);
            scratch.recycle(cur.into_vec());
            cur = next;
        }
        let full_bits: Vec<u32> = cur.data().iter().map(|v| v.to_bits()).collect();

        let plan = net.plan(x.shape().dims());
        with_thread_limit(threads, || -> Result<(), TestCaseError> {
            let y = plan.execute(&net, &x, Span::full(), &mut scratch);
            let bits: Vec<u32> = y.data().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(&bits, &full_bits, "full pass, {} threads", threads);
            prop_assert_eq!(y.shape().dims(), cur.shape().dims());
            // every cut: prefix span then suffix span against the SAME plan
            for cut in 0..=net.len() {
                let mid = plan.execute(&net, &x, Span::prefix(cut), &mut scratch);
                let out = plan.execute(&net, &mid, Span::suffix(cut), &mut scratch);
                let bits: Vec<u32> = out.data().iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(&bits, &full_bits, "cut {}, {} threads", cut, threads);
            }
            Ok(())
        })?;
    }

    #[test]
    fn convert_to_clipped_preserves_behaviour_below_thresholds(
        threshold in 1.0f32..10.0,
        seed in 0u64..100,
    ) {
        // inputs small enough that no activation exceeds the threshold →
        // the clipped network computes exactly the same function
        let mut net = Sequential::new(vec![
            Layer::linear(4, 4, seed),
            Layer::relu(),
            Layer::linear(4, 2, seed ^ 1),
        ]);
        let x = Tensor::from_vec(
            (0..8).map(|i| ((i as f32) * 0.01) - 0.04).collect(),
            &[2, 4],
        ).unwrap();
        use ftclip_nn::{Scratch, Span};
        let mut scratch = Scratch::new();
        let before = net.execute(&x, Span::full(), &mut scratch);
        // weights are He-initialized (|w| < 1.5 with overwhelming margin),
        // inputs tiny, so pre-activations stay well below threshold ≥ 1.0
        net.convert_to_clipped(&[threshold]);
        let after = net.execute(&x, Span::full(), &mut scratch);
        prop_assert!(before.approx_eq(&after, 1e-6));
    }
}
