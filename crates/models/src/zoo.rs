//! Disk-cached training of zoo models.

use std::path::{Path, PathBuf};

use ftclip_data::SynthCifar;
use ftclip_nn::sched::LrSchedule;
use ftclip_nn::{evaluate, load_network, save_network, NnError, OptimizerKind, Sequential, Trainer};

use crate::{alexnet_cifar, lenet5, vgg16_bn_cifar, vgg16_cifar};

/// Which zoo architecture a [`ModelSpec`] trains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ZooArch {
    /// CIFAR-input AlexNet (5 conv + 3 FC).
    AlexNet,
    /// CIFAR-input VGG-16 (13 conv + 1 FC).
    Vgg16,
    /// CIFAR-input VGG-16 with batch normalization after every conv.
    /// Width-scaled plain VGG-16 fails to train on hard tasks (vanishing
    /// signal through 13 narrow layers); the BN variant is the trainable
    /// stand-in, as in virtually all CIFAR VGG reproductions.
    Vgg16Bn,
    /// LeNet-5 (single-channel input).
    LeNet5,
}

impl std::fmt::Display for ZooArch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZooArch::AlexNet => write!(f, "alexnet"),
            ZooArch::Vgg16 => write!(f, "vgg16"),
            ZooArch::Vgg16Bn => write!(f, "vgg16bn"),
            ZooArch::LeNet5 => write!(f, "lenet5"),
        }
    }
}

impl std::str::FromStr for ZooArch {
    type Err = String;

    /// Parses the [`Display`](std::fmt::Display) names back — the encoding
    /// experiment spec files use.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "alexnet" => Ok(ZooArch::AlexNet),
            "vgg16" => Ok(ZooArch::Vgg16),
            "vgg16bn" => Ok(ZooArch::Vgg16Bn),
            "lenet5" => Ok(ZooArch::LeNet5),
            other => Err(format!("unknown architecture '{other}' (expected alexnet|vgg16|vgg16bn|lenet5)")),
        }
    }
}

/// Complete specification of a trained model: architecture, width, data
/// seed and training hyper-parameters. The cache key is derived from all of
/// it, so changing any field retrains rather than reusing a stale network.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// Architecture to build.
    pub arch: ZooArch,
    /// Width multiplier (see [`crate::scale_dim`]).
    pub width_mult: f64,
    /// Number of classes.
    pub classes: usize,
    /// Weight-initialization / training seed.
    pub seed: u64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Peak learning rate (cosine-annealed to 1/100th).
    pub lr: f32,
    /// Enable flip/translate augmentation.
    pub augment: bool,
}

impl ModelSpec {
    /// A sensible default spec for the given architecture at the
    /// experiment-scale widths from DESIGN.md §3.
    pub fn default_for(arch: ZooArch) -> Self {
        let (width_mult, epochs, lr) = match arch {
            ZooArch::AlexNet => (0.25, 12, 0.02),
            ZooArch::Vgg16 | ZooArch::Vgg16Bn => (0.125, 12, 0.02),
            ZooArch::LeNet5 => (1.0, 8, 0.05),
        };
        ModelSpec {
            arch,
            width_mult,
            classes: 10,
            seed: 42,
            epochs,
            batch_size: 64,
            lr,
            augment: true,
        }
    }

    /// Builds the untrained network for this spec.
    pub fn build(&self) -> Sequential {
        match self.arch {
            ZooArch::AlexNet => alexnet_cifar(self.width_mult, self.classes, self.seed),
            ZooArch::Vgg16 => vgg16_cifar(self.width_mult, self.classes, self.seed),
            ZooArch::Vgg16Bn => vgg16_bn_cifar(self.width_mult, self.classes, self.seed),
            ZooArch::LeNet5 => lenet5(self.classes, self.seed),
        }
    }

    /// Deterministic cache-file stem encoding every field.
    pub fn cache_key(&self) -> String {
        format!(
            "{}-w{:.4}-c{}-s{}-e{}-b{}-lr{:.4}-a{}",
            self.arch,
            self.width_mult,
            self.classes,
            self.seed,
            self.epochs,
            self.batch_size,
            self.lr,
            u8::from(self.augment)
        )
    }
}

/// A model returned by [`Zoo::train_or_load`].
#[derive(Debug, Clone)]
pub struct TrainedModel {
    /// The trained network.
    pub network: Sequential,
    /// Accuracy on the dataset's test split, measured after load/train.
    pub test_accuracy: f64,
    /// `true` when the network came from the on-disk cache.
    pub from_cache: bool,
}

/// Disk cache of trained zoo models.
///
/// # Example
///
/// ```no_run
/// use ftclip_data::SynthCifar;
/// use ftclip_models::{ModelSpec, Zoo, ZooArch};
///
/// let data = SynthCifar::builder().seed(1).build();
/// let zoo = Zoo::new("assets");
/// let model = zoo.train_or_load(&ModelSpec::default_for(ZooArch::AlexNet), &data).unwrap();
/// println!("test accuracy {:.3}", model.test_accuracy);
/// ```
#[derive(Debug, Clone)]
pub struct Zoo {
    cache_dir: PathBuf,
}

impl Zoo {
    /// Creates a zoo rooted at `cache_dir` (created lazily on first save).
    pub fn new<P: AsRef<Path>>(cache_dir: P) -> Self {
        Zoo { cache_dir: cache_dir.as_ref().to_path_buf() }
    }

    /// The path a spec caches to.
    pub fn cache_path(&self, spec: &ModelSpec) -> PathBuf {
        self.cache_dir.join(format!("{}.ftcw", spec.cache_key()))
    }

    /// Loads the cached network for `spec`, or trains it on `data` and
    /// caches the result.
    ///
    /// Training uses SGD with momentum 0.9, weight decay 5e-4 and a cosine
    /// schedule from `spec.lr` to `spec.lr / 100`. A spec with
    /// `epochs == 0` skips training and returns the (deterministic, seeded)
    /// untrained initialization — harness tests use this for fast,
    /// model-shaped workloads.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if the cache file exists but cannot be parsed,
    /// or the trained network cannot be written back.
    pub fn train_or_load(&self, spec: &ModelSpec, data: &SynthCifar) -> Result<TrainedModel, NnError> {
        let path = self.cache_path(spec);
        if path.exists() {
            let network = load_network(&path)?;
            let test_accuracy = evaluate(&network, data.test().images(), data.test().labels(), 64);
            return Ok(TrainedModel { network, test_accuracy, from_cache: true });
        }
        let mut network = spec.build();
        if spec.epochs == 0 {
            let test_accuracy = evaluate(&network, data.test().images(), data.test().labels(), 64);
            return Ok(TrainedModel { network, test_accuracy, from_cache: false });
        }
        let trainer = Trainer::builder()
            .epochs(spec.epochs)
            .batch_size(spec.batch_size)
            .schedule(LrSchedule::Cosine {
                lr: spec.lr,
                min_lr: spec.lr / 100.0,
                total_epochs: spec.epochs,
            })
            .optimizer(OptimizerKind::Sgd { momentum: 0.9, weight_decay: 5e-4 })
            .seed(spec.seed)
            .augment(spec.augment)
            .verbose(std::env::var_os("FTCLIP_VERBOSE").is_some())
            .build();
        trainer.fit(
            &mut network,
            data.train().images(),
            data.train().labels(),
            Some((data.val().images(), data.val().labels())),
        );
        save_network(&network, &path)?;
        let test_accuracy = evaluate(&network, data.test().images(), data.test().labels(), 64);
        Ok(TrainedModel { network, test_accuracy, from_cache: false })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_data() -> SynthCifar {
        SynthCifar::builder()
            .seed(100)
            .train_size(80)
            .val_size(20)
            .test_size(40)
            .noise_std(0.15)
            .build()
    }

    fn tiny_spec() -> ModelSpec {
        ModelSpec {
            arch: ZooArch::AlexNet,
            width_mult: 0.05,
            classes: 10,
            seed: 9,
            epochs: 1,
            batch_size: 16,
            lr: 0.02,
            augment: false,
        }
    }

    #[test]
    fn zero_epoch_spec_returns_the_untrained_initialization() {
        let dir = std::env::temp_dir().join(format!("ftclip-zoo-e0-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut spec = tiny_spec();
        spec.epochs = 0;
        let zoo = Zoo::new(&dir);
        let a = zoo.train_or_load(&spec, &tiny_data()).unwrap();
        let b = zoo.train_or_load(&spec, &tiny_data()).unwrap();
        assert!(!a.from_cache && !b.from_cache, "nothing is persisted for an untrained net");
        let bits = |n: &Sequential| {
            let mut v = Vec::new();
            n.visit_params(&mut |_, _, t, _| v.extend(t.data().iter().map(|x| x.to_bits())));
            v
        };
        assert_eq!(bits(&a.network), bits(&spec.build()), "seeded init is deterministic");
        assert_eq!(a.test_accuracy.to_bits(), b.test_accuracy.to_bits());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn arch_names_round_trip() {
        for arch in [ZooArch::AlexNet, ZooArch::Vgg16, ZooArch::Vgg16Bn, ZooArch::LeNet5] {
            assert_eq!(arch.to_string().parse::<ZooArch>(), Ok(arch));
        }
        assert!("resnet".parse::<ZooArch>().is_err());
    }

    #[test]
    fn cache_key_distinguishes_specs() {
        let a = tiny_spec();
        let mut b = tiny_spec();
        b.epochs = 2;
        assert_ne!(a.cache_key(), b.cache_key());
        let mut c = tiny_spec();
        c.width_mult = 0.06;
        assert_ne!(a.cache_key(), c.cache_key());
    }

    #[test]
    fn train_then_reload_round_trips() {
        let dir = std::env::temp_dir().join("ftclip-zoo-test");
        std::fs::remove_dir_all(&dir).ok();
        let zoo = Zoo::new(&dir);
        let data = tiny_data();
        let spec = tiny_spec();
        let first = zoo.train_or_load(&spec, &data).unwrap();
        assert!(!first.from_cache);
        assert!(zoo.cache_path(&spec).exists());
        let second = zoo.train_or_load(&spec, &data).unwrap();
        assert!(second.from_cache);
        assert!((first.test_accuracy - second.test_accuracy).abs() < 1e-12);
        let x = data.test().images().slice_batch(0..2);
        let mut sc = ftclip_nn::Scratch::new();
        let ya = first.network.execute(&x, ftclip_nn::Span::full(), &mut sc);
        let yb = second.network.execute(&x, ftclip_nn::Span::full(), &mut sc);
        assert!(ya.approx_eq(&yb, 0.0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn default_specs_build() {
        for arch in [ZooArch::AlexNet, ZooArch::Vgg16, ZooArch::Vgg16Bn, ZooArch::LeNet5] {
            let spec = ModelSpec::default_for(arch);
            let net = spec.build();
            assert!(net.param_count() > 0);
        }
    }

    #[test]
    fn lenet_trains_on_grayscale_synth_data() {
        // LeNet-5 takes single-channel input; the generator's channels(1)
        // option exists exactly for this pairing.
        let dir = std::env::temp_dir().join("ftclip-zoo-lenet");
        std::fs::remove_dir_all(&dir).ok();
        let data = SynthCifar::builder()
            .seed(200)
            .channels(1)
            .train_size(80)
            .val_size(20)
            .test_size(40)
            .noise_std(0.15)
            .build();
        let spec = ModelSpec {
            arch: ZooArch::LeNet5,
            width_mult: 1.0,
            classes: 10,
            seed: 3,
            epochs: 1,
            batch_size: 16,
            lr: 0.05,
            augment: false,
        };
        let model = Zoo::new(&dir).train_or_load(&spec, &data).unwrap();
        assert!((0.0..=1.0).contains(&model.test_accuracy));
        std::fs::remove_dir_all(&dir).ok();
    }
}
