//! Model zoo for the FT-ClipAct reproduction.
//!
//! Provides the three architectures the paper uses:
//!
//! * [`alexnet_cifar`] — the CIFAR-input AlexNet evaluated in §V
//!   (5 convolutional + 3 fully-connected layers, baseline 72.8 %);
//! * [`vgg16_cifar`] — the CIFAR-input VGG-16 evaluated in §V
//!   (13 convolutional + 1 fully-connected layer, baseline 82.8 %);
//! * [`lenet5`] — the LeNet-5 shown as background in Fig. 2.
//!
//! All constructors take a **width multiplier** that scales channel and
//! feature counts while preserving depth, layer kinds and weight
//! distributions. Experiments use scaled variants (AlexNet ×0.25,
//! VGG-16 ×0.125 by default) so CPU training fits the time budget; `1.0`
//! builds the full-size networks (see DESIGN.md §3).
//!
//! [`Zoo`] caches trained networks on disk keyed by their full
//! specification, so experiment binaries train once and reload thereafter.
//!
//! # Example
//!
//! ```
//! use ftclip_models::alexnet_cifar;
//!
//! let net = alexnet_cifar(0.25, 10, 42);
//! // 5 conv + 3 fc, as the paper describes
//! let names = net.computational_names();
//! assert_eq!(names.first().unwrap(), "CONV-1");
//! assert_eq!(names.last().unwrap(), "FC-3");
//! assert_eq!(names.len(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod archs;
mod zoo;

pub use archs::{
    alexnet_cifar, alexnet_cifar_with_activation, lenet5, model_size_report, scale_dim, vgg16_bn_cifar,
    vgg16_cifar, ModelSizeRow,
};
pub use zoo::{ModelSpec, TrainedModel, Zoo, ZooArch};
